//! Fleet-wide observability core for the SLIDE reproduction.
//!
//! The source paper's optimization program was measurement-driven: per-phase
//! profiling of hash/retrieval/kernel time is what justified its
//! vectorization and quantization work. This crate is the serving fleet's
//! equivalent substrate — dependency-light (nothing but the workspace
//! `parking_lot` shim) so every tier can afford to link it:
//!
//! * [`Counter`] / [`Gauge`] — lock-free sharded counters and gauges whose
//!   hot path is one relaxed atomic add on a thread-owned cache line.
//! * [`Histogram`] — a log-linear bucketed latency histogram (HDR-style):
//!   bounded memory whatever the sample count, mergeable across shards, and
//!   a nearest-rank quantile estimator with a proven relative error bound
//!   ([`Histogram::RELATIVE_ERROR_BOUND`], 1/32 ≈ 3.1%).
//! * [`Registry`] — named families of the above, rendered as
//!   Prometheus-style exposition text ([`Registry::render`]).
//! * [`TraceRing`] + [`Stage`] — a fixed-size per-process ring of
//!   per-request stage spans (router queue, admission, batch wait, LSH
//!   retrieval, kernel compute, shard merge, encode), keyed by a
//!   splitmix64-derived trace id ([`derive_trace_id`]) that the wire
//!   protocol carries hop to hop.
//! * [`ObsHub`] — one registry + one trace ring, the per-process handle a
//!   server threads through its tiers and serves over the wire.
//!
//! # Quickstart
//!
//! ```
//! use slide_obs::{ObsHub, Stage};
//!
//! let hub = ObsHub::new();
//! let served = hub.registry().counter("demo_requests_total");
//! let latency = hub.registry().histogram("demo_latency_us");
//! served.inc();
//! latency.record(250);
//! let trace = slide_obs::derive_trace_id(0xC0FFEE, 1);
//! hub.ring().record(trace, Stage::Kernel, hub.ring().now_us(), 250);
//! let text = hub.render();
//! assert!(text.contains("demo_requests_total 1"));
//! assert!(text.contains("stage=kernel"));
//! ```

mod metrics;
mod registry;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use trace::{derive_trace_id, splitmix64, SpanRecord, Stage, StageSample, TraceRing};

use std::sync::Arc;

/// Default capacity of a hub's trace ring (spans, not requests).
pub const DEFAULT_TRACE_RING_CAP: usize = 4096;

/// One process's observability handle: a metrics [`Registry`] plus a
/// [`TraceRing`], created once per serving process (the batching server
/// builds one; the TCP front-end and every stage hook share it).
#[derive(Debug)]
pub struct ObsHub {
    registry: Registry,
    ring: TraceRing,
}

impl Default for ObsHub {
    fn default() -> Self {
        ObsHub {
            registry: Registry::new(),
            ring: TraceRing::new(DEFAULT_TRACE_RING_CAP),
        }
    }
}

impl ObsHub {
    /// A fresh hub with the default trace-ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh shared hub (the shape every server holds).
    pub fn shared() -> Arc<ObsHub> {
        Arc::new(Self::new())
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-process trace ring.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Render the whole hub as Prometheus-style exposition text: every
    /// metric family, then the recent trace spans as `# trace` comment
    /// lines (comments per the text format, so standard scrapers ignore
    /// them while humans and tests read the stage breakdowns).
    pub fn render(&self) -> String {
        let mut out = self.registry.render();
        self.ring.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_render_combines_metrics_and_traces() {
        let hub = ObsHub::new();
        hub.registry().counter("x_total").add(3);
        hub.ring().record(7, Stage::Admission, 10, 5);
        let text = hub.render();
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("x_total 3"));
        assert!(text.contains("# trace"));
        assert!(text.contains("stage=admission"));
    }

    #[test]
    fn empty_hub_renders_empty_exposition() {
        let hub = ObsHub::new();
        assert_eq!(hub.render(), "");
    }
}
