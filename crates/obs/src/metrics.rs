//! Lock-free instruments: sharded [`Counter`], [`Gauge`], and the
//! log-linear bucketed [`Histogram`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of cache-line-padded shards per counter. Eight covers the worker
/// counts this workspace runs (thread pools size to cores) without letting
/// a counter outgrow half a page.
const COUNTER_SHARDS: usize = 8;

/// A single cache line holding one atomic, so two shards never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedAtomicU64(AtomicU64);

/// Round-robin source for thread shard assignment: each thread grabs the
/// next index once and keeps it for life, so steady-state increments from
/// distinct threads land on distinct cache lines.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

fn my_shard() -> usize {
    MY_SHARD.with(|s| *s)
}

/// A monotonically increasing counter. The hot path is one relaxed
/// `fetch_add` on a thread-owned cache line; reads sum the shards.
///
/// ```
/// let c = slide_obs::Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedAtomicU64; COUNTER_SHARDS],
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset to zero (stats-reset paths; not atomic with concurrent adds).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A gauge: a value that can go up or down (queue depth, breaker state).
/// Single atomic — gauges are set/loaded, not contended-incremented.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of two.
const SUB_BUCKET_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Largest representable exponent: values clamp to `2^MAX_EXP - 1`
/// (~1.1e12 µs ≈ 12.7 days — far beyond any latency this fleet records).
const MAX_EXP: u32 = 40;
/// Total bucket count: values `< SUB_BUCKETS` get exact unit buckets, then
/// each octave from 2^5 to 2^40 contributes SUB_BUCKETS log-linear buckets.
const BUCKETS: usize =
    (SUB_BUCKETS + (MAX_EXP as u64 - SUB_BUCKET_BITS as u64) * SUB_BUCKETS) as usize;

/// A log-linear bucketed histogram of `u64` values (microseconds, counts —
/// any nonnegative magnitude), HDR-style:
///
/// * **Bounded memory**: [`BUCKETS`](Self::BUCKETS) (= 1152) atomic `u64`
///   buckets ≈ 9 KiB, regardless of how many samples are recorded — unlike
///   the capped sample vectors it replaces, whose tail estimates silently
///   degrade once the cap is hit.
/// * **Log-linear buckets**: values below 32 get exact unit buckets; each
///   octave `[2^k, 2^{k+1})` above that is split into 32 equal sub-buckets,
///   so bucket width is always ≤ value/32.
/// * **Bounded quantile error**: [`quantile`](Self::quantile) returns the
///   upper bound of the bucket holding the nearest-rank sample, so for the
///   exact nearest-rank value `x`:
///   `x ≤ quantile(q) ≤ x + x/32 + 1` — a relative error of at most
///   [`RELATIVE_ERROR_BOUND`](Self::RELATIVE_ERROR_BOUND) = 1/32, plus one
///   integer unit of slack (tested against `percentile_us` ground truth in
///   `slide-serve`).
/// * **Exact moments**: `sum`, `count`, and `max` are tracked exactly, so
///   mean and max in JSON views stay bit-accurate.
/// * **Mergeable**: [`merge_from`](Self::merge_from) folds one histogram
///   into another bucket-wise (per-worker → process rollups).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// An owned, non-atomic copy of a histogram's state, for rendering and
/// cross-process aggregation without holding the live buckets.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total number of recorded samples.
    pub count: u64,
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// Number of buckets (compile-time constant; ~9 KiB of `u64`s).
    pub const BUCKETS: usize = BUCKETS;

    /// Worst-case relative quantile error: bucket width / bucket lower
    /// bound = 1/32 (plus one integer unit for the sub-32 unit buckets'
    /// upper-bound convention).
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB_BUCKETS as f64;

    /// Bucket index for a value. Values ≥ `2^MAX_EXP` clamp into the top
    /// bucket.
    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let v = v.min((1u64 << MAX_EXP) - 1);
        let msb = 63 - v.leading_zeros();
        let g = msb - SUB_BUCKET_BITS;
        let sub = (v >> g) - SUB_BUCKETS;
        (SUB_BUCKETS + g as u64 * SUB_BUCKETS + sub) as usize
    }

    /// Inclusive upper bound of bucket `i` — what [`quantile`](Self::quantile)
    /// reports for samples landing in it.
    #[inline]
    fn bucket_upper(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB_BUCKETS {
            return i;
        }
        let g = (i - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
        let lower = (SUB_BUCKETS + sub) << g;
        lower + (1u64 << g) - 1
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated `q`-th percentile (`q` in (0, 100]): the upper bound of
    /// the bucket containing the nearest-rank sample, clamped to the exact
    /// recorded max — matching the nearest-rank convention of
    /// `slide_serve::percentile_us` to within the bucket error bound, and
    /// never exceeding the true maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Fold another histogram's buckets and moments into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset all buckets and moments to zero (stats-reset paths; not
    /// atomic with concurrent records).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// An owned copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl HistogramSnapshot {
    /// Same estimator as [`Histogram::quantile`], over the frozen copy.
    pub fn quantile(&self, q: f64) -> u64 {
        // count from the buckets, not the moment counter: a snapshot taken
        // mid-record can see the bucket without the count (or vice versa),
        // and the walk below must terminate inside the bucket array.
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as u64;
        let rank = rank.min(total);
        let mut seen = 0u64;
        let mut upper = Histogram::bucket_upper(self.buckets.len() - 1);
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                upper = Histogram::bucket_upper(i);
                break;
            }
        }
        // The exact max bounds every quantile: clamping keeps q=100 (and a
        // p99 that lands in the max's bucket) from overshooting the largest
        // value actually recorded, and can only shrink the error. (Skip
        // when max lags the bucket under a mid-record snapshot race.)
        if self.max > 0 {
            upper = upper.min(self.max);
        }
        upper
    }

    /// Exact mean from the tracked moments (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_get() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0);
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_count_matches_constant() {
        assert_eq!(BUCKETS, 32 + 35 * 32);
        assert_eq!(Histogram::BUCKETS, BUCKETS);
    }

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        // Every representable value must land in a bucket whose range
        // contains it, and bucket widths must respect the error bound.
        let probes: Vec<u64> = (0..64)
            .chain((5..40).flat_map(|e| {
                let base = 1u64 << e;
                [base - 1, base, base + 1, base + base / 3, 2 * base - 1]
            }))
            .collect();
        for v in probes {
            let i = Histogram::bucket_index(v);
            let upper = Histogram::bucket_upper(i);
            assert!(upper >= v, "upper {upper} < v {v} (bucket {i})");
            // Relative error: (upper - v) / v ≤ 1/32 for v ≥ 32.
            if v >= 32 {
                let err = (upper - v) as f64 / v as f64;
                assert!(
                    err <= Histogram::RELATIVE_ERROR_BOUND + 1e-12,
                    "v={v} bucket={i} upper={upper} err={err}"
                );
            }
            if i > 0 {
                assert!(
                    Histogram::bucket_upper(i - 1) < v,
                    "v={v} fits earlier bucket"
                );
            }
        }
    }

    #[test]
    fn bucket_uppers_strictly_increase() {
        for i in 1..BUCKETS {
            assert!(
                Histogram::bucket_upper(i) > Histogram::bucket_upper(i - 1),
                "bucket {i} upper not increasing"
            );
        }
    }

    #[test]
    fn huge_values_clamp_into_top_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(50.0), Histogram::bucket_upper(BUCKETS - 1));
        // max is exact even when the bucket clamps.
        assert_eq!(h.max(), u64::MAX);
    }

    /// Nearest-rank percentile on a sorted slice — mirrors
    /// `slide_serve::percentile_us`, duplicated locally because obs sits
    /// below serve in the crate DAG.
    fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn quantile_matches_exact_within_error_bound() {
        // Deterministic heavy-tailed workload via splitmix64.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let h = Histogram::default();
        let mut samples = Vec::new();
        for _ in 0..50_000 {
            let r = next();
            // ~1% of samples out in a long tail, rest in [0, 4096).
            let v = if r % 100 == 0 {
                4096 + (r >> 32) % 1_000_000
            } else {
                r % 4096
            };
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&samples, q);
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            let allowed = (exact as f64 * Histogram::RELATIVE_ERROR_BOUND).ceil() as u64 + 1;
            assert!(
                est - exact <= allowed,
                "q={q}: est {est} exceeds exact {exact} by more than {allowed}"
            );
        }
        assert_eq!(h.count(), 50_000);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [1, 10, 100, 1000] {
            a.record(v);
        }
        for v in [5, 50, 500, 5000, 50_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 9);
        assert_eq!(a.sum(), 1111 + 55_555);
        assert_eq!(a.max(), 50_000);
        // p100 must come from b's tail.
        assert!(a.quantile(100.0) >= 50_000);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::default();
        for v in 0..1000 {
            h.record(v);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(99.0), 0);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = Arc::new(Histogram::default());
        let mut handles = Vec::new();
        for t in 0..4 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..25_000u64 {
                    h.record(t * 1000 + (i % 777));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(h.count(), 100_000);
    }
}
