//! Per-request trace spans: stage taxonomy, trace-id derivation, and the
//! fixed-size per-process span ring.

use parking_lot::Mutex;
use std::time::Instant;

/// The per-hop stages a traced predict request passes through. One request
/// produces at most one span per stage per process: the router records
/// `RouterQueue`/`HedgeWait`, each replica records the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Router: receipt of the frame until the first replica attempt is
    /// dispatched (shed checks, replica pick, connection checkout).
    RouterQueue,
    /// Router: primary dispatch until the hedge attempt launches (recorded
    /// only when a hedge actually fires).
    HedgeWait,
    /// Replica: TCP frame decode/validation until the request is accepted
    /// into the batching queue.
    Admission,
    /// Replica: time spent queued waiting for batch assembly/dispatch.
    BatchWait,
    /// Replica: LSH bucket probe and active-set selection.
    Retrieval,
    /// Replica: dense trunk forward plus active-neuron scoring kernels.
    Kernel,
    /// Replica: cross-shard dedup/merge and final top-k gather.
    Merge,
    /// Replica: reply frame encode and socket write/flush.
    Encode,
}

impl Stage {
    /// Stable lowercase name used in exposition text and JSON keys.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::RouterQueue => "router_queue",
            Stage::HedgeWait => "hedge_wait",
            Stage::Admission => "admission",
            Stage::BatchWait => "batch_wait",
            Stage::Retrieval => "retrieval",
            Stage::Kernel => "kernel",
            Stage::Merge => "merge",
            Stage::Encode => "encode",
        }
    }

    /// All stages in canonical pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::RouterQueue,
        Stage::HedgeWait,
        Stage::Admission,
        Stage::BatchWait,
        Stage::Retrieval,
        Stage::Kernel,
        Stage::Merge,
        Stage::Encode,
    ];
}

/// splitmix64 — the same mixer the router's jitter and the serve tier's
/// `query_salt` use. Full-period, cheap, and statistically strong enough
/// that ids derived from sequential request counters don't collide in
/// practice.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a nonzero trace id from a per-process seed and a request
/// counter. Zero is the wire sentinel for "untraced" (a v3 Predict frame
/// with trace id 0 encodes byte-identical to v2), so the derivation maps
/// the rare zero output to 1.
#[inline]
pub fn derive_trace_id(seed: u64, req_id: u64) -> u64 {
    let id = splitmix64(seed ^ splitmix64(req_id));
    if id == 0 {
        1
    } else {
        id
    }
}

/// One recorded stage span. Timestamps are microseconds since the owning
/// ring's epoch (process start), so spans from one process compare
/// directly; cross-process alignment is by stage order, not clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Nonzero trace id this span belongs to.
    pub trace_id: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Start, µs since the ring's epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// A fixed-capacity ring of [`SpanRecord`]s. Bounded memory: once full,
/// new spans overwrite the oldest — recent slow requests stay inspectable,
/// ancient history ages out. Recording an untraced span (`trace_id == 0`)
/// is a no-op, so the hot path costs nothing for the untraced majority.
#[derive(Debug)]
pub struct TraceRing {
    epoch: Instant,
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    spans: Vec<SpanRecord>,
    /// Next write slot once `spans` has reached capacity.
    head: usize,
    cap: usize,
}

impl TraceRing {
    /// A ring holding up to `cap` spans (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            epoch: Instant::now(),
            inner: Mutex::new(RingInner {
                spans: Vec::new(),
                head: 0,
                cap: cap.max(1),
            }),
        }
    }

    /// Microseconds since this ring's epoch — the timebase every span's
    /// `start_us` uses.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a span. No-op when `trace_id` is 0 (untraced request).
    pub fn record(&self, trace_id: u64, stage: Stage, start_us: u64, dur_us: u64) {
        if trace_id == 0 {
            return;
        }
        let rec = SpanRecord {
            trace_id,
            stage,
            start_us,
            dur_us,
        };
        let mut inner = self.inner.lock();
        if inner.spans.len() < inner.cap {
            inner.spans.push(rec);
        } else {
            let h = inner.head;
            inner.spans[h] = rec;
            inner.head = (h + 1) % inner.cap;
        }
    }

    /// All retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.spans.len());
        if inner.spans.len() < inner.cap {
            out.extend_from_slice(&inner.spans);
        } else {
            out.extend_from_slice(&inner.spans[inner.head..]);
            out.extend_from_slice(&inner.spans[..inner.head]);
        }
        out
    }

    /// Retained spans for one trace id, oldest first.
    pub fn spans_for(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// Append the retained spans to `out` as `# trace` comment lines —
    /// legal Prometheus-text comments that ride along with a scrape.
    pub fn render_into(&self, out: &mut String) {
        for s in self.snapshot() {
            out.push_str(&format!(
                "# trace id={:016x} stage={} start_us={} dur_us={}\n",
                s.trace_id,
                s.stage.as_str(),
                s.start_us,
                s.dur_us
            ));
        }
    }
}

/// Per-call stage timing sample filled in by a model's timed predict path:
/// the three in-kernel stages a `FrozenModel` implementation can attribute
/// (queueing/admission/encode are the caller's to time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSample {
    /// LSH bucket probe / active-set selection time, µs.
    pub retrieval_us: u64,
    /// Dense forward + scoring kernel time, µs.
    pub kernel_us: u64,
    /// Cross-shard merge / top-k gather time, µs.
    pub merge_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_trace_id_is_nonzero_and_spreads() {
        let mut seen = HashSet::new();
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            for req in 0..1000u64 {
                let id = derive_trace_id(seed, req);
                assert_ne!(id, 0);
                seen.insert(id);
            }
        }
        // 3000 derivations, no collisions expected from a 64-bit mixer.
        assert_eq!(seen.len(), 3000);
    }

    #[test]
    fn zero_trace_id_is_not_recorded() {
        let ring = TraceRing::new(8);
        ring.record(0, Stage::Kernel, 1, 1);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let ring = TraceRing::new(4);
        for i in 1..=10u64 {
            ring.record(i, Stage::Kernel, i * 10, 1);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let ids: Vec<u64> = snap.iter().map(|s| s.trace_id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
        // Oldest-first ordering preserved across the wrap point.
        assert!(snap.windows(2).all(|w| w[0].start_us < w[1].start_us));
    }

    #[test]
    fn spans_for_filters_by_id() {
        let ring = TraceRing::new(16);
        ring.record(1, Stage::Admission, 0, 5);
        ring.record(2, Stage::Admission, 1, 5);
        ring.record(1, Stage::Kernel, 10, 20);
        let spans = ring.spans_for(1);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Admission);
        assert_eq!(spans[1].stage, Stage::Kernel);
    }

    #[test]
    fn render_lines_are_comments() {
        let ring = TraceRing::new(4);
        ring.record(0xABCD, Stage::Retrieval, 100, 42);
        let mut out = String::new();
        ring.render_into(&mut out);
        assert!(out.starts_with("# trace id=000000000000abcd"));
        assert!(out.contains("stage=retrieval"));
        assert!(out.contains("start_us=100"));
        assert!(out.contains("dur_us=42"));
    }

    #[test]
    fn stage_names_are_stable_and_distinct() {
        let names: HashSet<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(names.len(), Stage::ALL.len());
        assert!(names.contains("router_queue"));
        assert!(names.contains("encode"));
    }

    #[test]
    fn now_us_is_monotone() {
        let ring = TraceRing::new(1);
        let a = ring.now_us();
        let b = ring.now_us();
        assert!(b >= a);
    }
}
