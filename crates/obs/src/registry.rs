//! Named instrument families with Prometheus-style text rendering.

use crate::metrics::{Counter, Gauge, Histogram};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Quantiles rendered for every histogram family.
const RENDERED_QUANTILES: [(f64, &str); 3] = [(50.0, "0.5"), (90.0, "0.9"), (99.0, "0.99")];

#[derive(Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_str(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            // Histograms render as Prometheus summaries (precomputed
            // quantiles + _sum/_count) — the bucket layout is an internal
            // representation, not the exposition format.
            Instrument::Histogram(_) => "summary",
        }
    }
}

/// Canonical key: family name plus a rendered `{label="value",...}` suffix
/// (empty for unlabeled series). BTreeMap keeps render order deterministic.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // Escape per the Prometheus text format.
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splice extra content before a series' label suffix (or append when
/// unlabeled): `name{a="b"}` + `quantile="0.5"` → `name{a="b",quantile="0.5"}`.
fn with_extra_label(series: &str, extra: &str) -> String {
    match series.strip_suffix('}') {
        Some(head) => format!("{head},{extra}}}"),
        None => format!("{series}{{{extra}}}"),
    }
}

/// A registry of named metric families. Get-or-create is mutex-guarded
/// (cold path: instruments are fetched once and cached as `Arc`s by their
/// owners); the instruments themselves are lock-free.
///
/// ```
/// let r = slide_obs::Registry::new();
/// let ok = r.counter_with("req_total", &[("code", "ok")]);
/// ok.add(2);
/// r.gauge("queue_depth").set(7);
/// let text = r.render();
/// assert!(text.contains("req_total{code=\"ok\"} 2"));
/// assert!(text.contains("queue_depth 7"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    // name → (type line emitted once per family) is derived at render time;
    // the map is keyed by full series (name + labels).
    series: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or create a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = series_key(name, labels);
        let mut map = self.series.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!("series {name} already registered as {}", other.type_str()),
        }
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get or create a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = series_key(name, labels);
        let mut map = self.series.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            other => panic!("series {name} already registered as {}", other.type_str()),
        }
    }

    /// Get or create an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get or create a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = series_key(name, labels);
        let mut map = self.series.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::default())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            other => panic!("series {name} already registered as {}", other.type_str()),
        }
    }

    /// Render every family as Prometheus text-format exposition: one
    /// `# TYPE` line per family, then its series. Histograms render as
    /// summaries: `{quantile="0.5"|"0.9"|"0.99"}`, `_sum`, `_count`.
    pub fn render(&self) -> String {
        let map = self.series.lock();
        let mut out = String::new();
        let mut last_family = String::new();
        for (series, inst) in map.iter() {
            let family = series.split('{').next().unwrap_or(series);
            if family != last_family {
                out.push_str("# TYPE ");
                out.push_str(family);
                out.push(' ');
                out.push_str(inst.type_str());
                out.push('\n');
                last_family = family.to_string();
            }
            match inst {
                Instrument::Counter(c) => {
                    out.push_str(series);
                    out.push(' ');
                    out.push_str(&c.get().to_string());
                    out.push('\n');
                }
                Instrument::Gauge(g) => {
                    out.push_str(series);
                    out.push(' ');
                    out.push_str(&g.get().to_string());
                    out.push('\n');
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    for (q, qlabel) in RENDERED_QUANTILES {
                        let labeled = with_extra_label(series, &format!("quantile=\"{qlabel}\""));
                        out.push_str(&labeled);
                        out.push(' ');
                        out.push_str(&snap.quantile(q).to_string());
                        out.push('\n');
                    }
                    let (fam, suffix) = match series.find('{') {
                        Some(i) => (&series[..i], &series[i..]),
                        None => (series.as_str(), ""),
                    };
                    out.push_str(&format!("{fam}_sum{suffix} {}\n", snap.sum));
                    out.push_str(&format!("{fam}_count{suffix} {}\n", snap.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("c_total");
        let b = r.counter("c_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_create_distinct_series() {
        let r = Registry::new();
        let ok = r.counter_with("req_total", &[("code", "ok")]);
        let err = r.counter_with("req_total", &[("code", "err")]);
        ok.add(5);
        err.add(2);
        let text = r.render();
        assert!(text.contains("req_total{code=\"err\"} 2"));
        assert!(text.contains("req_total{code=\"ok\"} 5"));
        // One TYPE line per family even with multiple series.
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
    }

    #[test]
    fn histogram_renders_summary_quantiles_sum_count() {
        let r = Registry::new();
        let h = r.histogram_with("lat_us", &[("tier", "serve")]);
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = r.render();
        assert!(text.contains("# TYPE lat_us summary"));
        assert!(text.contains("lat_us{tier=\"serve\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_us{tier=\"serve\",quantile=\"0.99\"}"));
        assert!(text.contains("lat_us_sum{tier=\"serve\"} 5050"));
        assert!(text.contains("lat_us_count{tier=\"serve\"} 100"));
    }

    #[test]
    fn unlabeled_histogram_renders_bare_suffixes() {
        let r = Registry::new();
        r.histogram("h_us").record(10);
        let text = r.render();
        assert!(text.contains("h_us{quantile=\"0.5\"} 10"));
        assert!(text.contains("h_us_sum 10"));
        assert!(text.contains("h_us_count 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c_total", &[("peer", "a\"b\\c")]).inc();
        let text = r.render();
        assert!(text.contains("c_total{peer=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn render_order_is_deterministic() {
        let r = Registry::new();
        r.counter("zzz_total").inc();
        r.gauge("aaa_depth").set(1);
        let text = r.render();
        let a = text.find("aaa_depth").unwrap();
        let z = text.find("zzz_total").unwrap();
        assert!(a < z);
        assert_eq!(text, r.render());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("same_name");
        r.gauge("same_name");
    }
}
