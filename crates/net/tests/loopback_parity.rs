//! Socket-vs-in-process equivalence (ISSUE satellite: loopback parity)
//! plus the `ThreadPool` try-lock contention regression (ISSUE satellite:
//! nested-pool determinism under the daemon).
//!
//! The serving salt is content-derived (`slide_serve::query_salt`), so the
//! answer to a query must be **bit-identical** whether it is computed
//! in-process on the model, through the batching server, or across a TCP
//! socket — for every engine precision, and no matter how many connection
//! threads are hammering the server at once (the sharded engine's fan-out
//! pool falls back to sequential scoring when its `try_lock` loses a race;
//! both paths must agree).

use slide_mem::SparseVecRef;
use slide_net::{FleetPrecision, FleetSpec, NetClient, NetConfig, NetServer, Router, RouterConfig};
use slide_serve::{query_salt, BatchConfig, BatchingServer, FrozenModel};
use std::sync::Arc;
use std::time::Duration;

const K: usize = 5;

type QueryBattery = Vec<(Vec<u32>, Vec<f32>)>;

/// In-process ground truth for a query battery.
fn expected_topk(model: &Arc<dyn FrozenModel>, queries: &[(Vec<u32>, Vec<f32>)]) -> Vec<Vec<u32>> {
    let mut scratch = model.make_scratch_any();
    queries
        .iter()
        .map(|(idx, val)| {
            let salt = query_salt(idx, val, K);
            model.predict_any(SparseVecRef::new(idx, val), K, &mut *scratch, salt)
        })
        .collect()
}

fn battery(spec: &FleetSpec, n: usize) -> (Arc<dyn FrozenModel>, QueryBattery) {
    let (model, test) = spec.build();
    let queries = slide_net::query_battery(&test, n);
    (model, queries)
}

fn serve(model: Arc<dyn FrozenModel>, threads: usize) -> (Arc<BatchingServer>, NetServer) {
    let batching = Arc::new(
        BatchingServer::start(
            model,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_cap: 256,
                threads,
            },
        )
        .expect("batch config"),
    );
    let net = NetServer::start(Arc::clone(&batching), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    (batching, net)
}

/// One parity pass: every socket answer must equal the in-process answer.
fn assert_socket_parity(spec: FleetSpec) {
    let (model, queries) = battery(&spec, 24);
    let expected = expected_topk(&model, &queries);
    let (_batching, net) = serve(model, 2);
    let mut client = NetClient::connect(net.local_addr(), Duration::from_secs(5)).expect("connect");
    for (i, ((idx, val), want)) in queries.iter().zip(&expected).enumerate() {
        let got = client.predict(idx, val, K).expect("socket predict");
        assert_eq!(
            &got, want,
            "query {i} differs between socket and in-process"
        );
    }
}

#[test]
fn socket_topk_is_bit_equal_to_in_process_f32() {
    assert_socket_parity(FleetSpec {
        precision: FleetPrecision::F32,
        shards: 0,
        ..Default::default()
    });
}

#[test]
fn socket_topk_is_bit_equal_to_in_process_i8() {
    assert_socket_parity(FleetSpec {
        precision: FleetPrecision::I8,
        shards: 0,
        ..Default::default()
    });
}

#[test]
fn socket_topk_is_bit_equal_to_in_process_sharded() {
    assert_socket_parity(FleetSpec {
        precision: FleetPrecision::F32,
        shards: 3,
        ..Default::default()
    });
}

/// Regression for the PR 5 fan-out fallback: `ShardedFrozenModel` grabs its
/// fan-out `ThreadPool` with `try_lock` and scores shards sequentially when
/// another worker holds it. Inside the daemon that contention is the steady
/// state — several batching workers score concurrently while connection
/// threads keep the queue full — and both code paths must produce
/// bit-identical answers. Eight connection threads × many requests against
/// a 4-worker server over a 3-shard engine exercise the race; any
/// divergence between fan-out and sequential scoring fails the assert.
#[test]
fn sharded_answers_stay_bit_identical_under_connection_contention() {
    let spec = FleetSpec {
        precision: FleetPrecision::F32,
        shards: 3,
        ..Default::default()
    };
    let (model, queries) = battery(&spec, 16);
    let expected = expected_topk(&model, &queries);
    let (_batching, net) = serve(model, 4);
    let addr = net.local_addr();
    std::thread::scope(|scope| {
        for conn in 0..8 {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let mut client =
                    NetClient::connect(addr, Duration::from_secs(10)).expect("connect");
                // Interleave differently per connection so batches mix
                // queries in every order.
                for round in 0..6 {
                    for i in 0..queries.len() {
                        let i = (i * 3 + conn + round) % queries.len();
                        let (idx, val) = &queries[i];
                        let got = client.predict(idx, val, K).expect("socket predict");
                        assert_eq!(
                            &got, &expected[i],
                            "conn {conn} round {round} query {i}: answer diverged under contention"
                        );
                    }
                }
            });
        }
    });
    let stats = net.stats();
    let total_ok: u64 = stats.per_client.iter().map(|(_, c)| c.ok).sum();
    assert_eq!(total_ok, 8 * 6 * 16, "every request must be answered");
}

/// An in-process two-replica fleet behind a router: answers through the
/// router are bit-identical too (content-derived salt makes replicas
/// interchangeable), and draining one replica only ever soft-sheds.
#[test]
fn router_parity_over_two_in_process_replicas() {
    let spec = FleetSpec {
        precision: FleetPrecision::F32,
        shards: 0,
        ..Default::default()
    };
    let (model, queries) = battery(&spec, 16);
    let expected = expected_topk(&model, &queries);
    let (_b1, net1) = serve(Arc::clone(&model), 2);
    let (_b2, mut net2) = serve(model, 2);
    let router = Router::start(
        "127.0.0.1:0",
        &[net1.local_addr(), net2.local_addr()],
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("bind router");
    let mut client =
        NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("connect");
    for ((idx, val), want) in queries.iter().zip(&expected) {
        let got = client.predict(idx, val, K).expect("routed predict");
        assert_eq!(&got, want, "routed answer differs from in-process");
    }
    // Drain replica 2; after the health thread notices, every query must
    // still get the same bit-identical answer from replica 1.
    net2.drain();
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(router.healthy_replicas(), 1);
    for ((idx, val), want) in queries.iter().zip(&expected) {
        let got = client.predict(idx, val, K).expect("failover predict");
        assert_eq!(&got, want, "failover answer differs from in-process");
    }
    let stats = router.stats_json();
    assert!(stats.contains("\"healthy\":1"), "stats: {stats}");
}
