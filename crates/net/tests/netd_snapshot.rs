//! `slide_netd --snapshot` cold start (ISSUE satellite: registry-driven
//! restart): a replica process that never trains — it mmap-loads the
//! registry's current version at startup — must serve answers
//! **bit-identical** to the in-process engine the snapshot was built from,
//! for every precision × sharding cell, and must refuse to start from a
//! registry with nothing published in it.

mod daemon;

use daemon::spawn_replica_from_registry;
use slide_mem::SparseVecRef;
use slide_net::{FleetPrecision, FleetSpec, NetClient};
use slide_serve::{query_salt, ModelRegistry};
use std::time::Duration;

const K: usize = 5;

fn registry_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("slide_netd_snapshot_{tag}_{}", std::process::id()))
}

/// Train the fixture, publish its snapshot, cold-start a daemon from the
/// registry, and check every socket answer against the in-process engine.
fn assert_cold_start_parity(tag: &str, precision: FleetPrecision, shards: usize) {
    let spec = FleetSpec {
        seed: 42,
        epochs: 0,
        precision,
        shards,
    };
    let (net, test) = spec.train();
    let snapshot = spec.snapshot(&net);
    let model = snapshot.model().expect("instantiate snapshot in-process");
    let queries = slide_net::query_battery(&test, 24);
    let expected: Vec<Vec<u32>> = {
        let mut scratch = model.make_scratch_any();
        queries
            .iter()
            .map(|(idx, val)| {
                let salt = query_salt(idx, val, K);
                model.predict_any(SparseVecRef::new(idx, val), K, &mut *scratch, salt)
            })
            .collect()
    };

    let root = registry_root(tag);
    let _ = std::fs::remove_dir_all(&root);
    let registry = ModelRegistry::open(&root).expect("open registry");
    registry
        .publish(snapshot.bytes())
        .expect("publish snapshot");

    let mut replica = spawn_replica_from_registry("127.0.0.1:0", &root);
    let addr: std::net::SocketAddr = replica.addr.parse().expect("replica addr");
    let mut client = NetClient::connect(addr, Duration::from_secs(5)).expect("connect");
    for (i, ((idx, val), want)) in queries.iter().zip(&expected).enumerate() {
        let got = client.predict(idx, val, K).expect("socket predict");
        assert_eq!(
            &got, want,
            "{tag}: query {i} differs between the cold-started daemon and in-process"
        );
    }
    drop(client);
    replica.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn netd_cold_start_is_bit_equal_f32() {
    assert_cold_start_parity("f32", FleetPrecision::F32, 0);
}

#[test]
fn netd_cold_start_is_bit_equal_i8_sharded() {
    assert_cold_start_parity("i8x3", FleetPrecision::I8, 3);
}

/// An empty registry is a startup error, not a silent retrain: the daemon
/// must exit non-zero and say why.
#[test]
fn netd_refuses_a_registry_with_nothing_published() {
    let root = registry_root("empty");
    let _ = std::fs::remove_dir_all(&root);
    // `open` creates the directory skeleton but publishes nothing.
    ModelRegistry::open(&root).expect("open empty registry");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_slide_netd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--snapshot",
            root.to_str().expect("utf-8 path"),
        ])
        .stdin(std::process::Stdio::null())
        .output()
        .expect("run slide_netd");
    assert!(
        !out.status.success(),
        "daemon started from an empty registry"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no published version"),
        "unhelpful startup error: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
