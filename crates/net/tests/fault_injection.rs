//! The ISSUE's chaos acceptance run: a three-replica fleet where one
//! replica stalls every third reply frame mid-write and another silently
//! drops 10% of incoming request frames — both behind deterministic,
//! seeded [`FaultProxy`]s — while an open-loop, deadline-bearing load runs
//! through a hedging router with per-replica circuit breakers.
//!
//! The contract under fire:
//! * **zero hard client errors** — every injected fault surfaces as a
//!   hedged answer, an explicit `RetryLater`, or a typed
//!   `DeadlineExceeded`; never a broken reply, never a hang;
//! * **full accounting** — `sent == ok + retry_later + deadline_exceeded
//!   + hard_errors + reconnects`, nothing lost;
//! * **bit-equality** — every `Ok` answer equals the in-process engine's
//!   answer for that query (the content-derived `query_salt` makes which
//!   replica answered, primary or hedge, unobservable);
//! * the breakers **walk their whole state machine** under fire: opens,
//!   half-open probes, and recoveries are all observed, and the fleet
//!   converges back to all-healthy once the faults stop biting.

use slide_mem::SparseVecRef;
use slide_net::{
    ClientError, FaultAction, FaultPlan, FaultProxy, FaultRule, FleetSpec, LoadgenConfig,
    NetClient, NetConfig, NetServer, Router, RouterConfig, SubmitOutcome, Trigger,
};
use slide_serve::{query_salt, BatchConfig, BatchingServer, FrozenModel};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: usize = 5;

/// Ground-truth answers keyed by query content (indices, value bits).
type ExpectedAnswers = HashMap<(Vec<u32>, Vec<u32>), Vec<u32>>;

fn serve(model: Arc<dyn FrozenModel>) -> (Arc<BatchingServer>, NetServer) {
    let batching = Arc::new(
        BatchingServer::start(
            model,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_cap: 256,
                threads: 2,
            },
        )
        .expect("batch config"),
    );
    let net = NetServer::start(Arc::clone(&batching), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    (batching, net)
}

/// Sum every occurrence of `"key":<n>` in a stats JSON string (the
/// per-replica counters appear once per replica).
fn sum_counter(stats: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    stats
        .split(&needle)
        .skip(1)
        .filter_map(|tail| {
            tail.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse::<u64>()
                .ok()
        })
        .sum()
}

#[test]
fn seeded_fault_plan_chaos_run_full_accounting_and_bit_equality() {
    let spec = FleetSpec {
        seed: 42,
        epochs: 0,
        ..Default::default()
    };
    let (model, test) = spec.build();
    let queries = slide_net::query_battery(&test, 48);

    // In-process ground truth, keyed by query content so each submitter
    // thread can check its answers without knowing query indices.
    let expected: Arc<ExpectedAnswers> = {
        let mut scratch = model.make_scratch_any();
        Arc::new(
            queries
                .iter()
                .map(|(idx, val)| {
                    let salt = query_salt(idx, val, K);
                    let ids =
                        model.predict_any(SparseVecRef::new(idx, val), K, &mut *scratch, salt);
                    let bits = val.iter().map(|v| v.to_bits()).collect();
                    ((idx.clone(), bits), ids)
                })
                .collect(),
        )
    };

    let (_ba, net_a) = serve(Arc::clone(&model));
    let (_bb, net_b) = serve(Arc::clone(&model));
    let (_bc, net_c) = serve(model);

    // Replica A: every third server→client frame stalls mid-write for
    // longer than the router's per-attempt timeout — a slow-loris replica.
    let proxy_a = FaultProxy::start(
        net_a.local_addr(),
        FaultPlan {
            seed: 0xC4A05,
            client_to_server: Vec::new(),
            server_to_client: vec![FaultRule {
                trigger: Trigger::EveryNth(3),
                action: FaultAction::Stall(Duration::from_millis(400)),
            }],
        },
    )
    .expect("stalling proxy");
    // Replica B: drops 10% of client→server frames — a lossy path where
    // requests vanish and the router only learns via timeout.
    let proxy_b = FaultProxy::start(
        net_b.local_addr(),
        FaultPlan {
            seed: 0xD20B,
            client_to_server: vec![FaultRule {
                trigger: Trigger::Probability(0.10),
                action: FaultAction::Drop,
            }],
            server_to_client: Vec::new(),
        },
    )
    .expect("dropping proxy");
    // Replica C is clean: the fleet always has one fast path, so hedges
    // routinely win and no request is doomed.

    let router = Router::start(
        "127.0.0.1:0",
        &[
            proxy_a.local_addr(),
            proxy_b.local_addr(),
            net_c.local_addr(),
        ],
        RouterConfig {
            health_interval: Duration::from_millis(50),
            request_timeout: Duration::from_millis(250),
            eject_after: 1,
            breaker_backoff: Duration::from_millis(100),
            breaker_max_backoff: Duration::from_secs(1),
            ..Default::default()
        },
    )
    .expect("bind router");
    let router_addr = router.local_addr();

    let cfg = LoadgenConfig {
        offered_qps: 200.0,
        duration: Duration::from_millis(2500),
        clients: 4,
        k: K,
        ..Default::default()
    };
    let load = slide_net::run_open_loop(&queries, &cfg, |_client_id| {
        let mut client =
            NetClient::connect(router_addr, Duration::from_secs(5)).expect("connect to router");
        let expected = Arc::clone(&expected);
        move |idx: &[u32], val: &[f32], k: usize| {
            // 100 ms budget: enough for a healthy replica (sub-ms), short
            // enough that a stalled primary + stalled hedge is shed well
            // before the router's 250 ms per-attempt timeout.
            match client.predict_within(idx, val, k, 100_000) {
                Ok(ids) => {
                    let key = (idx.to_vec(), val.iter().map(|v| v.to_bits()).collect());
                    match expected.get(&key) {
                        Some(want) if *want == ids => SubmitOutcome::Ok(ids),
                        Some(want) => SubmitOutcome::HardError(format!(
                            "answer not bit-equal to in-process engine: got {ids:?}, want {want:?}"
                        )),
                        None => SubmitOutcome::HardError("unknown query key".into()),
                    }
                }
                Err(ClientError::RetryLater { .. }) => SubmitOutcome::RetryLater,
                Err(ClientError::DeadlineExceeded) => SubmitOutcome::DeadlineExceeded,
                Err(e) => {
                    // The router absorbs replica faults; losing *this*
                    // connection would mean the router itself died.
                    match NetClient::connect(router_addr, Duration::from_secs(5)) {
                        Ok(c) => {
                            client = c;
                            SubmitOutcome::Reconnected
                        }
                        Err(_) => SubmitOutcome::HardError(e.to_string()),
                    }
                }
            }
        }
    });

    // Full accounting: every submission has exactly one outcome.
    assert_eq!(
        load.sent,
        load.ok + load.retry_later + load.deadline_exceeded + load.hard_errors + load.reconnects,
        "lost responses: {load:?}"
    );
    assert_eq!(
        load.hard_errors, 0,
        "hard client errors under injected faults: {load:?}"
    );
    assert_eq!(load.reconnects, 0, "router connection dropped: {load:?}");
    assert!(
        load.ok > load.sent / 2,
        "fleet should still answer most requests (one replica is clean \
         and hedging covers the faulty ones): {load:?}"
    );

    // The faults actually bit and the machinery actually engaged: the
    // breakers opened and the router hedged. (Every third reply from A
    // stalls past the attempt timeout, so with eject_after=1 this is
    // deterministic in aggregate, not a lucky draw.)
    let during = router.stats_json();
    assert!(
        sum_counter(&during, "ejections") >= 1,
        "no breaker ever opened: {during}"
    );
    assert!(
        sum_counter(&during, "hedges") >= 1,
        "no hedge ever fired: {during}"
    );

    // Recovery: once load stops, the only s→c traffic is health pings;
    // probes succeed between stall episodes, so every breaker must walk
    // Open → HalfOpen → Closed and the fleet converges to all-healthy.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stats = during;
    let recovered = loop {
        if stats.contains("\"role\":\"router\",")
            && stats.contains(&format!("\"replicas\":3,\"healthy\":{}", 3))
            && sum_counter(&stats, "half_opens") >= 1
            && sum_counter(&stats, "readmissions") >= 1
        {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(100));
        stats = router.stats_json();
    };
    assert!(
        recovered,
        "breakers never completed open → half-open → closed, or the fleet \
         did not converge to healthy: {stats}"
    );

    // The proxies really injected what the plan said (seeded, so these are
    // stable across runs): A stalled frames, B dropped frames.
    let a_stats = proxy_a.stats();
    let b_stats = proxy_b.stats();
    assert!(a_stats.stalled >= 1, "proxy A never stalled: {a_stats:?}");
    assert!(b_stats.dropped >= 1, "proxy B never dropped: {b_stats:?}");
}
