//! Fault-injection battery against a **live** [`NetServer`] (ISSUE
//! satellite: wire faults).
//!
//! Every malformed-peer scenario — truncated frames, oversized length
//! prefixes, bad magic/version, corrupted checksums, mid-frame
//! disconnects, slow-loris partial writes — must end in a typed protocol
//! error or a clean close, **never** a server panic or hang. Each case
//! runs under a watchdog, and after each fault the same server must still
//! answer a well-formed request (no poisoned state).

use slide_net::wire::{crc32, frame_bytes, Frame, MAGIC, VERSION};
use slide_net::{FleetSpec, NetClient, NetConfig, NetServer};
use slide_serve::{BatchConfig, BatchingServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Run `f` on a helper thread; panic if it does not finish in 10 s. The
/// server lives inside the closure so a hang cannot outlive the test
/// either.
fn watchdog<F: FnOnce() + Send + 'static>(name: &str, f: F) {
    let (tx, rx) = std::sync::mpsc::channel();
    let t = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            f();
            let _ = tx.send(());
        })
        .expect("spawn watchdog thread");
    rx.recv_timeout(Duration::from_secs(10))
        .unwrap_or_else(|_| panic!("scenario '{name}' hung past the watchdog"));
    t.join().expect("scenario thread panicked");
}

/// A live server over an untrained (epochs: 0, still deterministic) model,
/// with a short frame deadline so slow-loris cases resolve quickly.
fn live_server() -> NetServer {
    let (model, _) = FleetSpec {
        epochs: 0,
        ..Default::default()
    }
    .build();
    let batching = Arc::new(
        BatchingServer::start(
            model,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                queue_cap: 32,
                threads: 1,
            },
        )
        .expect("batch config"),
    );
    NetServer::start(
        batching,
        "127.0.0.1:0",
        NetConfig {
            poll_interval: Duration::from_millis(20),
            frame_deadline: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .expect("bind loopback")
}

/// A raw attacker socket (no protocol smarts).
fn raw_conn(server: &NetServer) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

/// Drain whatever the server sends until it closes our socket; proves the
/// server actively hung up (vs. leaving the connection dangling).
fn read_until_close(s: &mut TcpStream) -> Vec<u8> {
    let mut all = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return all,
            Ok(n) => all.extend_from_slice(&buf[..n]),
            Err(_) => return all, // timeout/reset: connection is dead either way
        }
    }
}

/// After a fault, the server must still serve: one good request, checked.
fn assert_still_serving(server: &NetServer) {
    let mut client =
        NetClient::connect(server.local_addr(), Duration::from_secs(5)).expect("reconnect");
    let topk = client
        .predict(&[1, 5, 9], &[1.0, 0.5, 0.25], 3)
        .expect("healthy request after fault");
    assert_eq!(topk.len(), 3);
}

fn total_protocol_errors(server: &NetServer) -> u64 {
    server
        .stats()
        .per_client
        .iter()
        .map(|(_, c)| c.protocol_errors)
        .sum()
}

/// A Frame::Error on the wire starts with type byte 3 at header offset 5
/// (magic 4 + version 1).
fn server_sent_error_frame(reply: &[u8]) -> bool {
    reply.len() >= 16 && reply[5] == 3
}

#[test]
fn truncated_frame_is_rejected_without_hanging() {
    watchdog("truncated-frame", || {
        let server = live_server();
        let mut s = raw_conn(&server);
        let good = frame_bytes(&Frame::Ping { nonce: 1 });
        // Claim the full frame, deliver half, shut down the write side:
        // mid-frame disconnect.
        s.write_all(&good[..good.len() / 2]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        read_until_close(&mut s);
        assert!(total_protocol_errors(&server) >= 1);
        assert_still_serving(&server);
    });
}

#[test]
fn oversized_length_prefix_is_rejected_at_the_header() {
    watchdog("oversized-prefix", || {
        let server = live_server();
        let mut s = raw_conn(&server);
        // A header promising a 64 MiB payload: rejected before any payload
        // bytes are read (we never send any).
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.push(VERSION);
        header.push(5); // Ping
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&(64u32 << 20).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        s.write_all(&header).unwrap();
        let reply = read_until_close(&mut s);
        assert!(
            server_sent_error_frame(&reply),
            "want a typed protocol error"
        );
        assert!(total_protocol_errors(&server) >= 1);
        assert_still_serving(&server);
    });
}

#[test]
fn bad_magic_and_bad_version_are_typed_rejections() {
    watchdog("bad-magic-version", || {
        let server = live_server();
        for (label, mutate) in [
            ("magic", 0usize),   // first magic byte
            ("version", 4usize), // the version byte
        ] {
            let mut s = raw_conn(&server);
            let mut bytes = frame_bytes(&Frame::Ping { nonce: 2 });
            bytes[mutate] ^= 0xFF;
            s.write_all(&bytes).unwrap();
            let reply = read_until_close(&mut s);
            assert!(
                server_sent_error_frame(&reply),
                "bad {label}: want a typed protocol error"
            );
        }
        assert!(total_protocol_errors(&server) >= 2);
        assert_still_serving(&server);
    });
}

#[test]
fn corrupted_checksum_is_detected() {
    watchdog("corrupt-checksum", || {
        let server = live_server();
        let mut s = raw_conn(&server);
        let mut bytes = frame_bytes(&Frame::Ping { nonce: 3 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload bit; header CRC now lies
        assert_ne!(
            crc32(&bytes[16..]),
            crc32(&frame_bytes(&Frame::Ping { nonce: 3 })[16..])
        );
        s.write_all(&bytes).unwrap();
        let reply = read_until_close(&mut s);
        assert!(server_sent_error_frame(&reply), "want checksum rejection");
        assert!(total_protocol_errors(&server) >= 1);
        assert_still_serving(&server);
    });
}

#[test]
fn slow_loris_partial_write_is_cut_off_at_the_deadline() {
    watchdog("slow-loris", || {
        let server = live_server();
        let mut s = raw_conn(&server);
        let bytes = frame_bytes(&Frame::Ping { nonce: 4 });
        // Drip two bytes, then stall well past the 300 ms frame deadline
        // while keeping the socket open — the classic slow-loris posture.
        s.write_all(&bytes[..2]).unwrap();
        std::thread::sleep(Duration::from_millis(700));
        // The server must have hung up on us by now.
        let reply = read_until_close(&mut s);
        // Stalls get no courtesy reply — just the close.
        assert!(
            reply.is_empty(),
            "stall should close silently, got {reply:?}"
        );
        assert!(total_protocol_errors(&server) >= 1);
        assert_still_serving(&server);
    });
}

#[test]
fn client_sending_a_server_only_frame_is_rejected() {
    watchdog("server-only-frame", || {
        let server = live_server();
        let mut s = raw_conn(&server);
        s.write_all(&frame_bytes(&Frame::TopK {
            req_id: 9,
            ids: vec![1, 2],
        }))
        .unwrap();
        let reply = read_until_close(&mut s);
        assert!(server_sent_error_frame(&reply), "want a protocol error");
        assert!(total_protocol_errors(&server) >= 1);
        assert_still_serving(&server);
    });
}

#[test]
fn idle_connection_survives_until_drain_then_closes_cleanly() {
    watchdog("idle-then-drain", || {
        let mut server = live_server();
        let mut s = raw_conn(&server);
        // Idle well past several poll intervals: the connection must stay
        // open (idleness is not a fault).
        std::thread::sleep(Duration::from_millis(200));
        s.write_all(&frame_bytes(&Frame::Ping { nonce: 5 }))
            .unwrap();
        let mut first = [0u8; 1];
        s.read_exact(&mut first).expect("pong after idling");
        // Now drain the server: the idle connection closes at its next
        // frame boundary, with zero protocol errors charged to it.
        server.drain();
        assert!(server.is_draining());
        read_until_close(&mut s);
    });
}
