//! Deadline semantics at every hop (ISSUE satellite: deadline tests).
//!
//! The deadline is a *relative budget* in microseconds: each hop anchors
//! it to its own receive clock, so cross-process clock skew never matters.
//! These tests pin the contract at each anchor point:
//!
//! * a budget that cannot be met is shed with a typed `DeadlineExceeded`
//!   — never an error, never a hang, and never compute;
//! * a generous budget changes nothing: the answer is bit-identical to
//!   the deadline-free answer (v2 framing is a no-op semantically);
//! * when the budget dies mid-hedge, *both* attempts die with it — the
//!   forwarded decremented budgets make the replicas shed the stragglers;
//! * a v1 client (no deadline field at all) still gets served.

use slide_net::{
    ClientError, FaultAction, FaultPlan, FaultProxy, FaultRule, FleetSpec, Frame, NetClient,
    NetConfig, NetServer, Router, RouterConfig, Trigger,
};
use slide_serve::{BatchConfig, BatchingServer, FrozenModel};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: usize = 5;

type QueryBattery = Vec<(Vec<u32>, Vec<f32>)>;

fn fixture() -> (Arc<dyn FrozenModel>, QueryBattery) {
    let spec = FleetSpec {
        seed: 42,
        epochs: 0,
        ..Default::default()
    };
    let (model, test) = spec.build();
    let queries = slide_net::query_battery(&test, 8);
    (model, queries)
}

fn serve(model: Arc<dyn FrozenModel>) -> (Arc<BatchingServer>, NetServer) {
    let batching = Arc::new(
        BatchingServer::start(
            model,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_cap: 256,
                threads: 2,
            },
        )
        .expect("batch config"),
    );
    let net = NetServer::start(Arc::clone(&batching), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    (batching, net)
}

/// A generous budget is semantically invisible: the v2-framed answer is
/// bit-identical to the v1 (deadline-free) answer, end to end through
/// the router.
#[test]
fn generous_deadline_answers_bit_equal_to_no_deadline() {
    let (model, queries) = fixture();
    let (_b1, net1) = serve(Arc::clone(&model));
    let (_b2, net2) = serve(model);
    let router = Router::start(
        "127.0.0.1:0",
        &[net1.local_addr(), net2.local_addr()],
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("bind router");
    let mut plain = NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("c1");
    let mut budgeted = NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("c2");
    for (idx, val) in &queries {
        let want = plain.predict(idx, val, K).expect("deadline-free predict");
        let got = budgeted
            .predict_within(idx, val, K, 5_000_000)
            .expect("budgeted predict");
        assert_eq!(got, want, "a 5s budget must not change the answer");
    }
}

/// A 1 µs budget is gone by the time any hop can act on it: the client
/// gets a typed `DeadlineExceeded` promptly — not an error, not a
/// request_timeout-long hang.
#[test]
fn microscopic_deadline_is_shed_with_typed_frame() {
    let (model, queries) = fixture();
    let (batching, net) = serve(model);
    let router = Router::start(
        "127.0.0.1:0",
        &[net.local_addr()],
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("bind router");
    // Through the router...
    let mut via_router =
        NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("router client");
    let (idx, val) = &queries[0];
    let t0 = Instant::now();
    match via_router.predict_within(idx, val, K, 1) {
        Err(ClientError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded via router, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "shed must be prompt, took {:?}",
        t0.elapsed()
    );
    // ...and straight at the daemon.
    let mut direct =
        NetClient::connect(net.local_addr(), Duration::from_secs(5)).expect("direct client");
    match direct.predict_within(idx, val, K, 1) {
        Err(ClientError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded direct, got {other:?}"),
    }
    // The daemon's batching stats account the shed explicitly.
    let stats = batching.stats();
    assert!(
        stats.deadline_exceeded >= 1,
        "replica must count its shed: {stats:?}"
    );
}

/// Both replicas sit behind always-stalling proxies. The budget expires
/// while the primary *and* the hedge are in flight: the client gets one
/// `DeadlineExceeded` near the deadline — not after the 2 s request
/// timeout, and not two replies.
#[test]
fn deadline_expiring_mid_hedge_cancels_both_attempts() {
    let (model, queries) = fixture();
    let (_b1, net1) = serve(Arc::clone(&model));
    let (_b2, net2) = serve(model);
    let stall_plan = || FaultPlan {
        seed: 11,
        client_to_server: Vec::new(),
        server_to_client: vec![FaultRule {
            trigger: Trigger::Always,
            action: FaultAction::Stall(Duration::from_secs(1)),
        }],
    };
    let p1 = FaultProxy::start(net1.local_addr(), stall_plan()).expect("proxy 1");
    let p2 = FaultProxy::start(net2.local_addr(), stall_plan()).expect("proxy 2");
    let router = Router::start(
        "127.0.0.1:0",
        &[p1.local_addr(), p2.local_addr()],
        RouterConfig {
            health_interval: Duration::from_millis(500),
            hedge_fraction: 0.25,
            ..Default::default()
        },
    )
    .expect("bind router");
    let mut client =
        NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("client");
    let (idx, val) = &queries[0];
    let t0 = Instant::now();
    match client.predict_within(idx, val, K, 120_000) {
        Err(ClientError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded mid-hedge, got {other:?}"),
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100),
        "shed cannot precede the deadline: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_millis(600),
        "client must be answered near the 120ms deadline, not the 2s \
         request timeout: {elapsed:?}"
    );
    // The hedge fired (and died with the primary).
    let stats = router.stats_json();
    assert!(
        !stats.contains("\"hedges\":0,"),
        "expected a hedge attempt: {stats}"
    );
    assert!(
        stats.contains("\"deadline_exceeded\":1"),
        "router must count the shed: {stats}"
    );
}

/// A pre-deadline (v1) client: hand-written v1 Predict bytes on a raw
/// socket are served identically to a current client's answer.
#[test]
fn v1_wire_client_is_still_served() {
    let (model, queries) = fixture();
    let (_batching, net) = serve(model);
    let (idx, val) = &queries[0];
    let mut modern =
        NetClient::connect(net.local_addr(), Duration::from_secs(5)).expect("modern client");
    let want = modern.predict(idx, val, K).expect("modern predict");

    // The exact byte layout a v1 client emits: no deadline field.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes()); // req_id
    payload.extend_from_slice(&(K as u32).to_le_bytes());
    payload.extend_from_slice(&(idx.len() as u32).to_le_bytes());
    for &i in idx {
        payload.extend_from_slice(&i.to_le_bytes());
    }
    for &v in val {
        payload.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&slide_net::MAGIC.to_le_bytes());
    bytes.push(slide_net::VERSION);
    bytes.push(1); // Predict
    bytes.extend_from_slice(&[0, 0]);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&slide_net::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let mut raw = TcpStream::connect(net.local_addr()).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    std::io::Write::write_all(&mut raw, &bytes).expect("send v1 frame");
    let reply = slide_net::read_frame_timeout(
        &mut raw,
        slide_net::DEFAULT_MAX_PAYLOAD,
        Duration::from_secs(5),
    )
    .expect("v1 client must get a reply");
    match reply {
        Frame::TopK { req_id, ids } => {
            assert_eq!(req_id, 7);
            assert_eq!(ids, want, "v1 client's answer must match the modern one");
        }
        other => panic!("expected TopK for v1 predict, got {other:?}"),
    }
}
