//! Property battery for the wire codec (ISSUE satellite: proptest
//! round-trip + fuzz).
//!
//! Two families:
//!
//! 1. **Round-trip**: arbitrary frames of every kind encode → decode →
//!    re-encode **bit-identically** (byte-level comparison, so NaN/inf
//!    value payloads are covered without touching float equality).
//! 2. **Totality**: the decoder never panics — not on arbitrary garbage,
//!    not on single-byte mutations of valid frames, not on truncations.
//!    Every outcome is `Ok` or a typed [`WireError`].
//!
//! Explicit edges ride along: the empty sparse vector and a max-k response
//! that nearly fills the payload cap.

use proptest::prelude::*;
use slide_net::wire::{
    decode_frame, frame_bytes, ErrorCode, Frame, PongInfo, PredictRequest, WireError,
    DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};

/// Exercise a frame: encode, decode, re-encode, demand identical bytes.
fn assert_roundtrip_bits(frame: &Frame) {
    let bytes = frame_bytes(frame);
    let (decoded, consumed) =
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("valid frame must decode");
    assert_eq!(consumed, bytes.len(), "decode must consume the whole frame");
    assert_eq!(
        frame_bytes(&decoded),
        bytes,
        "re-encode must be bit-identical"
    );
}

/// Printable-ASCII strings (the codec requires UTF-8; content is free).
fn ascii_string(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|b| String::from_utf8(b).expect("ascii is utf8"))
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    (1u8..5).prop_map(|b| ErrorCode::from_u8(b).expect("1..5 are valid codes"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn predict_roundtrips_bit_identically(
        req_id in any::<u64>(),
        k in any::<u32>(),
        deadline_us in any::<u64>(),
        trace_id in any::<u64>(),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..64),
    ) {
        // Values straight from arbitrary bit patterns: NaN, inf, subnormals
        // all must survive the wire bit-for-bit. deadline_us and trace_id
        // range over all of u64, so the v1 (no deadline), v2 (deadline),
        // and v3 (trace id) encodings are all exercised.
        let (indices, values): (Vec<u32>, Vec<u32>) = pairs.into_iter().unzip();
        let values: Vec<f32> = values.into_iter().map(f32::from_bits).collect();
        assert_roundtrip_bits(&Frame::Predict(PredictRequest {
            req_id, k, deadline_us, trace_id, indices, values,
        }));
        assert_roundtrip_bits(&Frame::DeadlineExceeded { req_id });
    }

    #[test]
    fn zero_trace_id_encodes_byte_identically_to_v2_and_v1(
        req_id in any::<u64>(),
        k in any::<u32>(),
        deadline_us in any::<u64>(),
        trace_id in any::<u64>().prop_map(|x| x.max(1)),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..64),
    ) {
        // The compatibility contract of the v3 field: an *untraced* request
        // must be indistinguishable on the wire from one sent by a pre-v3
        // client — v2 bytes when it carries a deadline, v1 bytes otherwise.
        // And a traced request is exactly the untraced frame plus the
        // version bump and the 8-byte id.
        let (indices, values): (Vec<u32>, Vec<u32>) = pairs.into_iter().unzip();
        let values: Vec<f32> = values.into_iter().map(f32::from_bits).collect();
        let untraced = frame_bytes(&Frame::Predict(PredictRequest {
            req_id, k, deadline_us, trace_id: 0,
            indices: indices.clone(), values: values.clone(),
        }));
        let expected_version =
            if deadline_us > 0 { slide_net::wire::VERSION2 } else { slide_net::wire::VERSION };
        prop_assert_eq!(untraced[4], expected_version);
        let traced = frame_bytes(&Frame::Predict(PredictRequest {
            req_id, k, deadline_us, trace_id, indices, values,
        }));
        prop_assert_eq!(traced[4], slide_net::wire::VERSION3);
        prop_assert_eq!(traced.len(), untraced.len() + if deadline_us > 0 { 8 } else { 16 });
        // Decoding the traced frame recovers the exact id.
        let (decoded, _) = decode_frame(&traced, DEFAULT_MAX_PAYLOAD).expect("v3 decodes");
        match decoded {
            Frame::Predict(p) => prop_assert_eq!(p.trace_id, trace_id),
            other => prop_assert!(false, "decoded wrong frame kind: {:?}", other),
        }
    }

    #[test]
    fn v1_predict_frames_still_roundtrip_and_decode(
        req_id in any::<u64>(),
        k in any::<u32>(),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..64),
    ) {
        // Hand-encode the exact byte layout a pre-deadline (v1) client
        // emits and demand (a) it decodes, (b) the deadline reads as "none",
        // (c) re-encoding reproduces the v1 bytes — i.e. v1 *is* the
        // canonical encoding of a deadline-free Predict, so old captures
        // and old clients stay byte-compatible forever.
        let (indices, values): (Vec<u32>, Vec<u32>) = pairs.into_iter().unzip();
        let values: Vec<f32> = values.into_iter().map(f32::from_bits).collect();
        let mut payload = Vec::new();
        payload.extend_from_slice(&req_id.to_le_bytes());
        payload.extend_from_slice(&k.to_le_bytes());
        payload.extend_from_slice(&(indices.len() as u32).to_le_bytes());
        for &i in &indices {
            payload.extend_from_slice(&i.to_le_bytes());
        }
        for &v in &values {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&slide_net::wire::MAGIC.to_le_bytes());
        bytes.push(slide_net::wire::VERSION);
        bytes.push(1); // Predict
        bytes.extend_from_slice(&[0, 0]);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&slide_net::wire::crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let (decoded, consumed) =
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("v1 frame must decode");
        prop_assert_eq!(consumed, bytes.len());
        // Byte-level comparison (as everywhere in this file) so NaN values
        // don't trip derived float equality.
        let expect = Frame::Predict(PredictRequest {
            req_id, k, deadline_us: 0, trace_id: 0, indices, values,
        });
        prop_assert_eq!(frame_bytes(&expect), bytes.clone());
        match &decoded {
            Frame::Predict(p) => prop_assert_eq!(p.deadline_us, 0),
            other => prop_assert!(false, "decoded wrong frame kind: {:?}", other),
        }
        prop_assert_eq!(frame_bytes(&decoded), bytes);
    }

    #[test]
    fn responses_roundtrip_bit_identically(
        req_id in any::<u64>(),
        ids in prop::collection::vec(any::<u32>(), 0..64),
        depth in any::<u32>(),
        code in error_code(),
        message in ascii_string(48),
    ) {
        assert_roundtrip_bits(&Frame::TopK { req_id, ids });
        assert_roundtrip_bits(&Frame::RetryLater { req_id, queue_depth: depth });
        assert_roundtrip_bits(&Frame::Error { req_id, code, message });
    }

    #[test]
    fn control_frames_roundtrip_bit_identically(
        nonce in any::<u64>(),
        inflight in any::<u32>(),
        draining in any::<bool>(),
        precision in ascii_string(16),
        json in ascii_string(128),
    ) {
        assert_roundtrip_bits(&Frame::Ping { nonce });
        assert_roundtrip_bits(&Frame::Pong(PongInfo { nonce, inflight, draining, precision }));
        assert_roundtrip_bits(&Frame::GetStats);
        assert_roundtrip_bits(&Frame::StatsJson(json.clone()));
        assert_roundtrip_bits(&Frame::Drain);
        assert_roundtrip_bits(&Frame::GetMetrics);
        assert_roundtrip_bits(&Frame::MetricsText(json));
    }

    #[test]
    fn decode_is_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any byte soup: decode must return, never panic. (A tiny max
        // payload keeps `TruncatedStream` from dominating when random
        // length fields are huge.)
        let _ = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD);
        let _ = decode_frame(&bytes, 64);
    }

    #[test]
    fn decode_is_total_under_single_byte_mutation(
        req_id in any::<u64>(),
        ids in prop::collection::vec(any::<u32>(), 0..16),
        pos in any::<prop::sample::Index>(),
        xor in (0u8..255).prop_map(|b| b + 1),
    ) {
        let mut bytes = frame_bytes(&Frame::TopK { req_id, ids });
        let pos = pos.index(bytes.len());
        bytes[pos] ^= xor;
        if let Ok((_, consumed)) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            // A flip the codec cannot detect must at least not lie about
            // the byte count.
            prop_assert!(consumed <= bytes.len());
        }
        // Payload flips specifically must be caught by the CRC (or, for
        // flips in the length field, surface as framing errors).
        if pos >= HEADER_LEN {
            prop_assert!(matches!(
                decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
                Err(WireError::ChecksumMismatch { .. })
            ));
        }
    }

    #[test]
    fn decode_is_total_under_truncation(
        req_id in any::<u64>(),
        ids in prop::collection::vec(any::<u32>(), 0..16),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = frame_bytes(&Frame::TopK { req_id, ids });
        let cut = cut.index(bytes.len());
        prop_assert!(matches!(
            decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
            Err(WireError::TruncatedStream)
        ));
    }
}

#[test]
fn empty_sparse_vector_is_a_legal_frame() {
    assert_roundtrip_bits(&Frame::Predict(PredictRequest {
        req_id: 7,
        k: 5,
        deadline_us: 0,
        trace_id: 0,
        indices: Vec::new(),
        values: Vec::new(),
    }));
}

#[test]
fn max_k_response_fills_the_payload_cap() {
    // 200_000 ids * 4 B + 12 B of fixed fields sits just under the 1 MiB
    // default cap — the largest response the protocol promises to carry.
    let ids: Vec<u32> = (0..200_000u32).collect();
    let frame = Frame::TopK { req_id: 1, ids };
    let bytes = frame_bytes(&frame);
    assert!(bytes.len() < DEFAULT_MAX_PAYLOAD as usize);
    assert_roundtrip_bits(&frame);
    // The same frame against a smaller cap is a typed Oversized error.
    assert!(matches!(
        decode_frame(&bytes, 1024),
        Err(WireError::Oversized { .. })
    ));
}
