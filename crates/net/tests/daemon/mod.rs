//! Shared child-process harness for the daemon integration tests: spawn a
//! real `slide_netd` / `slide_router` binary, parse its `LISTENING` line to
//! learn the OS-assigned port, and drain it via stdin EOF (the portable
//! SIGTERM-equivalent the daemons implement).
#![allow(dead_code)] // each integration-test crate uses a subset

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A child process whose stdin we hold open (dropping it asks the daemon
/// to drain — the portable SIGTERM).
pub struct Daemon {
    pub child: Child,
    pub addr: String,
}

impl Daemon {
    pub fn spawn(bin: &str, args: &[&str], ready_tag: &str) -> Daemon {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn daemon");
        // Parse "<TAG> LISTENING <addr>" off stdout, under a watchdog so a
        // wedged child cannot hang the test.
        let stdout = child.stdout.take().expect("piped stdout");
        let tag = ready_tag.to_string();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut lines = BufReader::new(stdout).lines();
            while let Some(Ok(line)) = lines.next() {
                if let Some(addr) = line.strip_prefix(&format!("{tag} LISTENING ")) {
                    let _ = tx.send(addr.trim().to_string());
                    break;
                }
            }
            // Keep draining stdout so the child never blocks on a full pipe.
            for _ in lines {}
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("daemon did not report LISTENING in time");
        Daemon { child, addr }
    }

    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful shutdown: close stdin, give it a moment, then force-kill.
    pub fn shutdown(&mut self) {
        drop(self.child.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                _ => {
                    self.kill();
                    return;
                }
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A replica that rebuilds the deterministic `FleetSpec` fixture in-process
/// (`--seed 42 --epochs 0`): the pre-registry startup path.
pub fn spawn_replica(addr: &str) -> Daemon {
    Daemon::spawn(
        env!("CARGO_BIN_EXE_slide_netd"),
        &[
            "--addr",
            addr,
            "--seed",
            "42",
            "--epochs",
            "0",
            "--threads",
            "2",
            "--queue-cap",
            "128",
        ],
        "SLIDE_NETD",
    )
}

/// A replica that cold-starts from a `ModelRegistry` directory: no training
/// flags at all — the snapshot header says what engine this is.
pub fn spawn_replica_from_registry(addr: &str, registry: &std::path::Path) -> Daemon {
    let dir = registry.to_str().expect("utf-8 registry path");
    Daemon::spawn(
        env!("CARGO_BIN_EXE_slide_netd"),
        &[
            "--addr",
            addr,
            "--snapshot",
            dir,
            "--threads",
            "2",
            "--queue-cap",
            "128",
        ],
        "SLIDE_NETD",
    )
}
