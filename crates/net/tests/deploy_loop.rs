//! The continuous-deployment acceptance run (ISSUE 10 tentpole): a real
//! `slide_trainerd` process publishes gated versions into a registry while
//! a real `slide_netd --follow` process serves live TCP load and hot-swaps
//! onto each publish.
//!
//! The contract under a live train→serve loop:
//! * the follower starts against an **empty** registry and waits for the
//!   trainer's first publish instead of dying;
//! * **every swap is observed** — one `SLIDE_NETD SWAPPED` line per
//!   version after the cold-start one, and the gate's rejected round
//!   never produces a swap;
//! * **zero hard errors** — clients querying straight through the swap
//!   windows see only clean answers (or explicit `RetryLater` shedding);
//! * **bit-equality per version** — every answer equals the in-process
//!   replay of exactly one *published* version for that query (loaded
//!   back from the registry's own files post-hoc, so the check does not
//!   assume trainer determinism), and more than one version is seen, so
//!   the load provably straddled a swap.

mod daemon;

use slide_mem::SparseVecRef;
use slide_net::{query_battery, ClientError, FleetSpec, NetClient};
use slide_serve::query_salt;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const K: usize = 5;

/// A child whose full stdout is captured line-by-line (the `Daemon`
/// harness discards post-LISTENING lines; here the SWAPPED/PUBLISHED
/// lines *are* the assertions).
struct Tailed {
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Tailed {
    fn spawn(bin: &str, args: &[&str]) -> Tailed {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn tailed child");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                sink.lock().expect("line sink").push(line);
            }
        });
        Tailed { child, lines }
    }

    fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("line sink").clone()
    }

    /// Wait (bounded) for a line containing `needle`; returns it.
    fn await_line(&self, needle: &str, patience: Duration) -> String {
        let deadline = Instant::now() + patience;
        loop {
            if let Some(line) = self.lines().iter().find(|l| l.contains(needle)) {
                return line.clone();
            }
            assert!(
                Instant::now() < deadline,
                "no line containing {needle:?} within {patience:?}; saw {:?}",
                self.lines()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Close stdin (graceful stop) and wait for exit.
    fn shutdown(&mut self) {
        drop(self.child.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        panic!("child did not exit after stdin EOF");
    }
}

impl Drop for Tailed {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn live_fleet_hot_swaps_every_published_version_with_zero_hard_errors() {
    let root = std::env::temp_dir().join(format!("slide_deploy_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let reg_dir = root.join("registry");
    std::fs::create_dir_all(&reg_dir).expect("mkdir registry");
    let reg_str = reg_dir.to_str().expect("utf-8 path").to_owned();

    // Follower first, against the EMPTY registry: it must wait for the
    // trainer's first publish, then report LISTENING.
    let mut netd = Tailed::spawn(
        env!("CARGO_BIN_EXE_slide_netd"),
        &[
            "--addr",
            "127.0.0.1:0",
            "--snapshot",
            &reg_str,
            "--follow",
            "--poll-ms",
            "20",
            "--threads",
            "2",
            "--queue-cap",
            "128",
        ],
    );

    // Trainer: 4 rounds, regression injected at round 4 ⇒ published
    // versions are exactly {1, 2, 3} and exactly one rejection. The
    // inter-round period keeps each version live long enough for the
    // client loop below to observe it.
    let mut trainerd = Tailed::spawn(
        env!("CARGO_BIN_EXE_slide_trainerd"),
        &[
            "--registry",
            &reg_str,
            "--rounds",
            "4",
            "--epochs-per-round",
            "2",
            "--period-ms",
            "1000",
            "--inject-regression-at",
            "4",
        ],
    );

    let listening = netd.await_line("SLIDE_NETD LISTENING", Duration::from_secs(60));
    let addr = listening
        .rsplit(' ')
        .next()
        .expect("LISTENING line has an address")
        .to_owned();

    // Open-loop-ish client: hammer the query battery until the trainer
    // finishes, remembering every answer for post-hoc version matching.
    let test = slide_data::generate_synthetic(&FleetSpec::default().synth_config()).test;
    let queries = query_battery(&test, 24);
    let done = Arc::new(AtomicBool::new(false));
    let client_handle = {
        let queries = queries.clone();
        let done = Arc::clone(&done);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client =
                NetClient::connect(&addr, Duration::from_secs(5)).expect("connect client");
            let mut answers: Vec<(usize, Vec<u32>)> = Vec::new();
            let mut hard_errors = 0usize;
            let mut ok = 0usize;
            let mut qi = 0usize;
            while !done.load(Ordering::Relaxed) {
                let (idx, val) = &queries[qi % queries.len()];
                match client.predict(idx, val, K) {
                    Ok(top) => {
                        ok += 1;
                        answers.push((qi % queries.len(), top));
                    }
                    Err(ClientError::RetryLater { .. }) => {}
                    Err(_) => hard_errors += 1,
                }
                qi += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            (answers, ok, hard_errors)
        })
    };

    trainerd.await_line("SLIDE_TRAINERD DONE", Duration::from_secs(120));
    // Let the watcher catch the final publish before stopping the load.
    netd.await_line("SWAPPED v000003", Duration::from_secs(30));
    done.store(true, Ordering::Relaxed);
    let (answers, ok, hard_errors) = client_handle.join().expect("client thread");

    // Scrape deployment metrics off the live daemon before draining it.
    let metrics = NetClient::connect(&addr, Duration::from_secs(5))
        .and_then(|mut c| c.metrics_text())
        .expect("scrape metrics");

    trainerd.shutdown();
    netd.shutdown();

    // Trainer-side contract: three publishes, one rejection.
    let tlines = trainerd.lines();
    let published: Vec<&String> = tlines
        .iter()
        .filter(|l| l.contains("SLIDE_TRAINERD PUBLISHED"))
        .collect();
    assert_eq!(published.len(), 3, "want 3 published rounds: {tlines:?}");
    assert_eq!(
        tlines
            .iter()
            .filter(|l| l.contains("SLIDE_TRAINERD REJECTED"))
            .count(),
        1,
        "want exactly one gate rejection: {tlines:?}"
    );

    // Registry-side contract: versions 1..=3 on disk, CURRENT at 3 (the
    // rejected round 4 must not have moved the pointer).
    let registry = slide_serve::ModelRegistry::open(&reg_dir).expect("open registry");
    assert_eq!(registry.versions().expect("versions"), vec![1, 2, 3]);
    assert_eq!(registry.current_version().expect("current"), Some(3));

    // Follower-side contract: cold-start on v1, then one SWAPPED line per
    // later version — every swap observed, none for the rejected round.
    let nlines = netd.lines();
    let swapped: Vec<&String> = nlines.iter().filter(|l| l.contains("SWAPPED")).collect();
    assert_eq!(
        swapped.len(),
        2,
        "want swaps onto v2 and v3 only: {nlines:?}"
    );
    assert!(swapped[0].contains("v000002"), "first swap: {swapped:?}");
    assert!(swapped[1].contains("v000003"), "second swap: {swapped:?}");
    for line in &swapped {
        let staleness: u64 = line
            .rsplit(' ')
            .next()
            .expect("staleness field")
            .parse()
            .expect("staleness_us parses");
        assert!(
            staleness < 60_000_000,
            "staleness {staleness}us is implausible: {line}"
        );
    }
    assert!(
        metrics.contains("slide_deploy_swaps_total 2"),
        "metrics must count both swaps: {metrics}"
    );
    assert!(
        metrics.contains("slide_deploy_staleness_us"),
        "staleness histogram missing from scrape"
    );

    // Client-side contract: clean answers only, and every answer is
    // bit-equal to exactly one published version's in-process replay.
    assert_eq!(hard_errors, 0, "hard errors under hot-swap load");
    assert!(ok > 50, "client barely ran ({ok} ok answers)");
    let mut per_version: Vec<Vec<Vec<u32>>> = Vec::new();
    for v in registry.versions().expect("versions") {
        let model = slide_quant::snapshot::load(&registry.version_path(v)).expect("load version");
        let mut scratch = model.make_scratch_any();
        per_version.push(
            queries
                .iter()
                .map(|(idx, val)| {
                    let salt = query_salt(idx, val, K);
                    model.predict_any(SparseVecRef::new(idx, val), K, &mut *scratch, salt)
                })
                .collect(),
        );
    }
    let mut versions_seen = BTreeSet::new();
    for (qi, got) in &answers {
        let matches: Vec<usize> = per_version
            .iter()
            .enumerate()
            .filter(|(_, want)| &want[*qi] == got)
            .map(|(v, _)| v + 1)
            .collect();
        assert!(
            !matches.is_empty(),
            "answer for query {qi} matches NO published version: {got:?}"
        );
        // Distinct versions can legitimately agree on easy queries; an
        // answer is attributed when it is unambiguous.
        if matches.len() == 1 {
            versions_seen.insert(matches[0]);
        }
    }
    assert!(
        versions_seen.len() >= 2,
        "load never straddled a swap (unambiguous versions seen: {versions_seen:?})"
    );
}
