//! End-to-end trace propagation and wire scraping (ISSUE tentpole +
//! satellite: trace-propagation tests).
//!
//! A traced predict carries its id client → router → replica on v3 frames;
//! every hop records its stage spans into its own process-local trace ring.
//! These tests drive a real 2-replica fleet (with a deliberately slowed
//! primary so the hedge *must* fire) and assert:
//!
//! * the router ring reports `router_queue` and `hedge_wait` exactly once
//!   for the traced id;
//! * the winning replica's ring reports `admission`, `batch_wait`,
//!   `retrieval`, `kernel`, `merge`, and `encode` exactly once each, with
//!   monotone (non-decreasing) stage start timestamps in pipeline order;
//! * untraced traffic records no spans at all;
//! * `GetMetrics` over the wire returns the families the scrape contract
//!   promises, from both a daemon and the router.

use slide_net::{
    FaultAction, FaultPlan, FaultProxy, FaultRule, FleetSpec, NetClient, NetConfig, NetServer,
    Router, RouterConfig, Trigger,
};
use slide_obs::Stage;
use slide_serve::{BatchConfig, BatchingServer, FrozenModel};
use std::sync::Arc;
use std::time::Duration;

const K: usize = 5;

type QueryBattery = Vec<(Vec<u32>, Vec<f32>)>;

fn fixture() -> (Arc<dyn FrozenModel>, QueryBattery) {
    let spec = FleetSpec {
        seed: 42,
        epochs: 0,
        ..Default::default()
    };
    let (model, test) = spec.build();
    let queries = slide_net::query_battery(&test, 8);
    (model, queries)
}

fn serve(model: Arc<dyn FrozenModel>) -> (Arc<BatchingServer>, NetServer) {
    let batching = Arc::new(
        BatchingServer::start(
            model,
            BatchConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                queue_cap: 256,
                threads: 2,
            },
        )
        .expect("batch config"),
    );
    let net = NetServer::start(Arc::clone(&batching), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback");
    (batching, net)
}

/// Count the spans for `trace_id` at `stage` in a hub's ring.
fn count_stage(hub: &slide_obs::ObsHub, trace_id: u64, stage: Stage) -> usize {
    hub.ring()
        .spans_for(trace_id)
        .iter()
        .filter(|s| s.stage == stage)
        .count()
}

/// One traced request through router + forced hedge: every hop reports
/// exactly once, and the winning replica's stage starts are monotone in
/// pipeline order.
#[test]
fn traced_request_reports_every_hop_exactly_once() {
    let (model, queries) = fixture();
    let (_b_slow, net_slow) = serve(Arc::clone(&model));
    let (b_fast, net_fast) = serve(model);
    // Replica 0 (the least-load primary on an idle fleet) sits behind a
    // 300 ms request delay, so the 30 ms hedge timer must fire and the
    // fast replica must win.
    let slow_proxy = FaultProxy::start(
        net_slow.local_addr(),
        FaultPlan {
            seed: 3,
            client_to_server: vec![FaultRule {
                trigger: Trigger::Always,
                action: FaultAction::Delay(Duration::from_millis(300)),
            }],
            server_to_client: Vec::new(),
        },
    )
    .expect("slow proxy");
    let router = Router::start(
        "127.0.0.1:0",
        &[slow_proxy.local_addr(), net_fast.local_addr()],
        RouterConfig {
            health_interval: Duration::from_millis(50),
            hedge_delay: Duration::from_millis(30),
            ..Default::default()
        },
    )
    .expect("bind router");
    let mut client =
        NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("client");

    // The traced request goes first, onto an idle fleet: least-load picks
    // the (delayed) first replica as primary, so the hedge timer must pop.
    let (idx, val) = &queries[0];
    let trace_id = 0xC0FF_EE00_DEAD_BEEF;
    let ids = client
        .predict_traced_within(idx, val, K, 0, trace_id)
        .expect("traced predict");
    assert!(!ids.is_empty());

    // Router hop: queued once, hedged once.
    let router_hub = router.obs();
    assert_eq!(count_stage(&router_hub, trace_id, Stage::RouterQueue), 1);
    assert_eq!(
        count_stage(&router_hub, trace_id, Stage::HedgeWait),
        1,
        "the 300 ms primary must force exactly one hedge: {}",
        router.stats_json()
    );

    // Winning replica: all five serve-side stages plus the socket encode,
    // each exactly once.
    let fast_hub = b_fast.obs();
    let expect = [
        Stage::Admission,
        Stage::BatchWait,
        Stage::Retrieval,
        Stage::Kernel,
        Stage::Merge,
        Stage::Encode,
    ];
    for stage in expect {
        assert_eq!(
            count_stage(&fast_hub, trace_id, stage),
            1,
            "stage {stage:?} must be reported exactly once"
        );
    }
    // Pipeline order ⇒ monotone start timestamps within the replica ring.
    let spans = fast_hub.ring().spans_for(trace_id);
    let starts: Vec<u64> = expect
        .iter()
        .map(|&st| {
            spans
                .iter()
                .find(|s| s.stage == st)
                .expect("span present")
                .start_us
        })
        .collect();
    assert!(
        starts.windows(2).all(|w| w[0] <= w[1]),
        "stage starts must be monotone in pipeline order: {starts:?}"
    );

    // Untraced traffic must record no further spans in the router ring.
    let before = router_hub.ring().snapshot().len();
    client.predict(idx, val, K).expect("untraced predict");
    assert_eq!(
        router_hub.ring().snapshot().len(),
        before,
        "an untraced request must not touch the router ring"
    );
}

/// The wire scrape: a daemon's `GetMetrics` exposes socket-, serve-, and
/// stage-level families plus trace comment lines; the router's exposes
/// fleet counters and per-replica breaker state.
#[test]
fn get_metrics_exposes_promised_families_over_the_wire() {
    let (model, queries) = fixture();
    let (_b1, net1) = serve(Arc::clone(&model));
    let (_b2, net2) = serve(model);
    let router = Router::start(
        "127.0.0.1:0",
        &[net1.local_addr(), net2.local_addr()],
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("bind router");
    let mut client =
        NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("client");
    let (idx, val) = &queries[0];
    for t in 0..4u64 {
        client
            .predict_traced_within(idx, val, K, 0, 0x1000 + t)
            .expect("predict");
    }

    let mut direct = NetClient::connect(net1.local_addr(), Duration::from_secs(5)).expect("direct");
    let daemon_text = direct.metrics_text().expect("daemon scrape");
    for family in [
        "# TYPE slide_net_requests_total counter",
        "slide_net_latency_us",
        "slide_serve_requests_total",
        "slide_serve_latency_us",
        "slide_serve_batches_total",
        "slide_stage_us_count{stage=\"kernel\"}",
        "slide_stage_us_count{stage=\"encode\"}",
    ] {
        assert!(
            daemon_text.contains(family),
            "daemon scrape missing {family}:\n{daemon_text}"
        );
    }
    // At least one replica served traced traffic; if it was this one its
    // ring renders as comment lines. (Which replica wins is load-dependent,
    // so only assert format when present.)
    if daemon_text.contains("# trace id=") {
        assert!(daemon_text.contains("stage="));
    }

    let mut router_client =
        NetClient::connect(router.local_addr(), Duration::from_secs(5)).expect("router client");
    let router_text = router_client.metrics_text().expect("router scrape");
    for family in [
        "# TYPE slide_router_hedges_total counter",
        "slide_router_deadline_exceeded_total",
        "slide_router_forwarded_total{replica=\"",
        "# TYPE slide_router_breaker_state gauge",
        "slide_router_breaker_state{replica=\"",
        "slide_stage_us_count{stage=\"router_queue\"}",
    ] {
        assert!(
            router_text.contains(family),
            "router scrape missing {family}:\n{router_text}"
        );
    }
    // Both breakers are closed (state 0) on a healthy fleet.
    assert_eq!(
        router_text.matches("slide_router_breaker_state{").count(),
        2
    );
}
