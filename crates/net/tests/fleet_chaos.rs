//! End-to-end fleet chaos (ISSUE satellite: kill-one-replica): three real
//! `slide_netd` processes behind a real `slide_router` process, open-loop
//! load flowing, one replica killed mid-load and then restarted on its old
//! port — restarted from a **registry snapshot** (`--snapshot <dir>`), the
//! way an operator would actually revive a replica: mmap the published
//! version instead of retraining.
//!
//! The contract under fire:
//! * **zero hard client errors** — every fault surfaces as transparent
//!   failover or an explicit `RetryLater`, never a broken reply;
//! * **zero lost responses** — each submitted request gets exactly one
//!   accounted outcome;
//! * the restarted replica is **readmitted** by the router's health loop.

mod daemon;

use daemon::{spawn_replica, spawn_replica_from_registry, Daemon};
use slide_net::{FleetSpec, LoadgenConfig, NetClient, SubmitOutcome};
use slide_serve::ModelRegistry;
use std::time::{Duration, Instant};

#[test]
fn kill_one_replica_mid_load_no_hard_errors_and_readmission() {
    // Publish the fleet fixture into a registry up front: the mid-chaos
    // revival cold-starts from this snapshot. Same `FleetSpec` axes as
    // `spawn_replica` (seed 42, epochs 0), so the revived replica serves
    // bit-identical answers to the two survivors.
    let registry_root =
        std::env::temp_dir().join(format!("slide_chaos_registry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&registry_root);
    {
        let spec = FleetSpec {
            seed: 42,
            epochs: 0,
            ..Default::default()
        };
        let (net, _test) = spec.train();
        let registry = ModelRegistry::open(&registry_root).expect("open chaos registry");
        registry
            .publish(spec.snapshot(&net).bytes())
            .expect("publish chaos snapshot");
    }

    let mut replicas: Vec<Daemon> = (0..3).map(|_| spawn_replica("127.0.0.1:0")).collect();
    let replica_flags: Vec<String> = replicas
        .iter()
        .flat_map(|r| ["--replica".to_string(), r.addr.clone()])
        .collect();
    let mut router_args: Vec<&str> = vec!["--addr", "127.0.0.1:0", "--health-interval-ms", "100"];
    router_args.extend(replica_flags.iter().map(String::as_str));
    let mut router = Daemon::spawn(
        env!("CARGO_BIN_EXE_slide_router"),
        &router_args,
        "SLIDE_ROUTER",
    );
    let router_addr: std::net::SocketAddr = router.addr.parse().expect("router addr");

    // Chaos timeline: kill replica 0 a third of the way into the load,
    // restart it on the same port two thirds of the way in.
    let duration = Duration::from_millis(2400);
    let killed = std::sync::Mutex::new(None::<Daemon>);
    let load = {
        let queries: Vec<(Vec<u32>, Vec<f32>)> = (0..64)
            .map(|i| {
                let idx: Vec<u32> = (0..12).map(|j| ((i * 17 + j * 13) % 256) as u32).collect();
                let val: Vec<f32> = (0..12).map(|j| 1.0 / (1.0 + j as f32)).collect();
                (idx, val)
            })
            .collect();
        let cfg = LoadgenConfig {
            offered_qps: 300.0,
            duration,
            clients: 4,
            k: 5,
            ..Default::default()
        };
        std::thread::scope(|scope| {
            // Timer-driven chaos, inline with the load.
            scope.spawn(|| {
                std::thread::sleep(duration / 3);
                let mut r0 = replicas.remove(0);
                r0.kill();
                std::thread::sleep(duration / 3);
                // Same port (bind_retrying in the daemon absorbs TIME_WAIT),
                // but cold-started from the registry: no retraining.
                let revived = spawn_replica_from_registry(&r0.addr, &registry_root);
                killed.lock().unwrap().replace(revived);
            });
            slide_net::run_open_loop(&queries, &cfg, |_client_id| {
                let mut client = NetClient::connect(router_addr, Duration::from_secs(5))
                    .expect("connect to router");
                move |idx: &[u32], val: &[f32], k: usize| match client.predict(idx, val, k) {
                    Ok(ids) => SubmitOutcome::Ok(ids),
                    Err(slide_net::ClientError::RetryLater { .. }) => SubmitOutcome::RetryLater,
                    Err(e) => {
                        // The router absorbs replica faults; a client-side
                        // transport fault would mean the *router* died —
                        // reconnect and count it.
                        match NetClient::connect(router_addr, Duration::from_secs(5)) {
                            Ok(c) => {
                                client = c;
                                SubmitOutcome::Reconnected
                            }
                            Err(_) => SubmitOutcome::HardError(e.to_string()),
                        }
                    }
                }
            })
        })
    };

    // Nothing lost: every submission has exactly one outcome.
    assert_eq!(
        load.sent,
        load.ok + load.retry_later + load.hard_errors + load.reconnects,
        "lost responses: {load:?}"
    );
    assert_eq!(
        load.hard_errors, 0,
        "hard client errors under chaos: {load:?}"
    );
    assert_eq!(load.reconnects, 0, "router connection dropped: {load:?}");
    assert!(load.ok > 0, "no successful requests at all: {load:?}");

    // The revived replica must be readmitted: poll the router's stats until
    // all three replicas are healthy again and at least one readmission is
    // on record. (Under a heavily loaded machine the dead replica can be
    // ejected and readmitted more than once while its restart is slow —
    // any count >= 1 proves the eject → health-ping → readmit cycle.)
    let readmissions_recorded = |stats: &str| {
        stats
            .split("\"readmissions\":")
            .skip(1)
            .filter_map(|tail| {
                tail.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
            .any(|n| n >= 1)
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stats;
    let readmitted = loop {
        let mut c = NetClient::connect(router_addr, Duration::from_secs(2)).expect("stats conn");
        stats = c.stats_json().expect("router stats");
        if stats.contains("\"healthy\":3") && readmissions_recorded(&stats) {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(200));
    };
    assert!(readmitted, "replica not readmitted; router stats: {stats}");

    // Graceful teardown: drain the fleet via stdin EOF.
    router.shutdown();
    if let Some(mut revived) = killed.lock().unwrap().take() {
        revived.shutdown();
    }
    for mut r in replicas {
        r.shutdown();
    }
    let _ = std::fs::remove_dir_all(&registry_root);
}
