//! Deterministic fleet fixtures: every replica process (and every test)
//! that builds a model from the same [`FleetSpec`] gets **bit-identical
//! weights**, so a router can fail a request over between replicas and the
//! client cannot tell the difference.
//!
//! Determinism is by construction: a fixed-seed synthetic dataset, a
//! fixed-seed network init, and single-threaded training (HOGWILD with one
//! worker is sequential SGD — the PR 5 determinism battery proved the
//! whole pipeline reproducible under `threads: 1`).

use slide_core::{LshConfig, Network, NetworkConfig, Trainer, TrainerConfig};
use slide_data::{generate_synthetic, Dataset, SynthConfig};
use slide_quant::Snapshot;
use slide_serve::{FrozenModel, ShardPlan, SnapshotSpec};
use std::sync::Arc;

/// Which frozen engine a fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPrecision {
    /// Full-precision [`slide_serve::FrozenNetwork`].
    F32,
    /// Post-training int8 [`slide_quant::QuantizedFrozenNetwork`].
    I8,
}

impl FleetPrecision {
    /// Parse a `--precision` flag value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "f32" => Ok(FleetPrecision::F32),
            "i8" => Ok(FleetPrecision::I8),
            other => Err(format!("unknown precision '{other}' (want f32 or i8)")),
        }
    }
}

/// Everything needed to reproduce one replica's model bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct FleetSpec {
    /// Master seed for data generation and network init.
    pub seed: u64,
    /// Frozen-engine precision.
    pub precision: FleetPrecision,
    /// Output-layer shards (0 or 1 = unsharded).
    pub shards: usize,
    /// Training epochs (single-threaded; keep small).
    pub epochs: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            seed: 0xF1EE7,
            precision: FleetPrecision::F32,
            shards: 0,
            epochs: 1,
        }
    }
}

impl FleetSpec {
    /// The synthetic workload every fleet fixture trains and serves on:
    /// small enough that three replica processes can each rebuild it in
    /// well under a second, structured enough that top-k answers are
    /// non-trivial.
    pub fn synth_config(&self) -> SynthConfig {
        SynthConfig {
            feature_dim: 256,
            label_dim: 96,
            n_train: 1024,
            n_test: 192,
            proto_nnz: 16,
            keep_fraction: 0.7,
            noise_nnz: 4,
            labels_per_sample: 2,
            zipf_exponent: 0.7,
            seed: self.seed,
        }
    }

    pub(crate) fn network_config(&self) -> NetworkConfig {
        let synth = self.synth_config();
        let mut cfg = NetworkConfig::standard(synth.feature_dim, 32, synth.label_dim);
        cfg.seed = self.seed ^ 0x5EED;
        cfg.lsh = LshConfig {
            tables: 8,
            key_bits: 4,
            min_active: 16,
            ..Default::default()
        };
        cfg
    }

    /// Train the deterministic network (single-threaded, fixed seeds).
    ///
    /// # Panics
    ///
    /// Panics if the fixed spec constants are rejected by config
    /// validation — impossible unless the spec itself is broken.
    pub fn train(&self) -> (Network, Dataset) {
        let synth = generate_synthetic(&self.synth_config());
        let net = Network::new(self.network_config()).expect("fleet spec network config");
        let mut trainer = Trainer::new(
            net,
            TrainerConfig {
                batch_size: 128,
                threads: 1, // sequential SGD ⇒ bit-reproducible weights
                shuffle_seed: self.seed ^ 0x5467,
                ..Default::default()
            },
        )
        .expect("fleet spec trainer config");
        for epoch in 0..self.epochs as u64 {
            trainer.train_epoch(&synth.train, epoch);
        }
        (trainer.into_network(), synth.test)
    }

    /// The [`SnapshotSpec`] equivalent of this spec's precision/shard axes.
    ///
    /// # Panics
    ///
    /// Panics if the shard count is invalid for the fixed label dimension —
    /// impossible unless the spec itself is broken.
    pub fn snapshot_spec(&self) -> SnapshotSpec {
        let base = match self.precision {
            FleetPrecision::F32 => SnapshotSpec::f32(),
            FleetPrecision::I8 => SnapshotSpec::i8(),
        };
        match self.shards {
            0 | 1 => base,
            n => base.sharded(
                ShardPlan::contiguous(n, self.synth_config().label_dim).expect("fleet shard plan"),
            ),
        }
    }

    /// Freeze `net` into the engine this spec calls for — via the unified
    /// snapshot path, so every replica serves exactly what a registry
    /// publish of the same network would serve (the snapshot battery
    /// proves build→encode→decode is bit-equal to the direct constructors).
    ///
    /// # Panics
    ///
    /// Panics if the fixed spec constants produce an unservable snapshot —
    /// impossible unless the spec itself is broken.
    pub fn freeze(&self, net: &Network) -> Arc<dyn FrozenModel> {
        self.snapshot(net)
            .model()
            .expect("fleet snapshot instantiates")
    }

    /// Cut the publishable [`Snapshot`] of `net` under this spec — what a
    /// trainer would hand to `ModelRegistry::publish` for the fleet to
    /// cold-start from.
    ///
    /// # Panics
    ///
    /// As [`FleetSpec::freeze`].
    pub fn snapshot(&self, net: &Network) -> Snapshot {
        Snapshot::build(net, &self.snapshot_spec()).expect("fleet snapshot builds")
    }

    /// Train + freeze + the test-split query battery, in one call — what
    /// `slide_netd`, `net_bench`, and the parity tests all share.
    pub fn build(&self) -> (Arc<dyn FrozenModel>, Dataset) {
        let (net, test) = self.train();
        (self.freeze(&net), test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_mem::SparseVecRef;
    use slide_serve::query_salt;

    #[test]
    fn same_spec_builds_bit_identical_models() {
        let spec = FleetSpec {
            epochs: 1,
            ..Default::default()
        };
        let (a, test_a) = spec.build();
        let (b, test_b) = spec.build();
        assert_eq!(test_a.len(), test_b.len());
        let mut sa = a.make_scratch_any();
        let mut sb = b.make_scratch_any();
        for i in 0..8 {
            let x = test_a.features(i);
            let salt = query_salt(x.indices, x.values, 5);
            let ta = a.predict_any(SparseVecRef::new(x.indices, x.values), 5, &mut *sa, salt);
            let tb = b.predict_any(SparseVecRef::new(x.indices, x.values), 5, &mut *sb, salt);
            assert_eq!(ta, tb, "query {i} diverged between rebuilds");
        }
    }

    #[test]
    fn precision_and_shard_axes_build() {
        let (net, _) = FleetSpec::default().train();
        for (precision, shards, label) in [
            (FleetPrecision::F32, 0, "f32"),
            (FleetPrecision::I8, 0, "i8"),
            (FleetPrecision::F32, 3, "f32"),
            (FleetPrecision::I8, 3, "i8"),
        ] {
            let spec = FleetSpec {
                precision,
                shards,
                ..Default::default()
            };
            let model = spec.freeze(&net);
            assert_eq!(model.precision(), label);
            assert_eq!(model.output_dim(), 96);
        }
    }

    #[test]
    fn precision_flag_parses() {
        assert_eq!(FleetPrecision::parse("f32").unwrap(), FleetPrecision::F32);
        assert_eq!(FleetPrecision::parse("i8").unwrap(), FleetPrecision::I8);
        assert!(FleetPrecision::parse("fp16").is_err());
    }
}
