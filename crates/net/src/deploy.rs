//! Continuous train→serve deployment loop: a background trainer that
//! periodically snapshots candidates, shadow-validates them against a
//! held-out stream, publishes the survivors to a [`ModelRegistry`], and a
//! registry watcher that hot-swaps a live [`BatchingServer`] onto each new
//! version with no restart.
//!
//! The loop closes ROADMAP item 3: training (the paper's contribution)
//! and serving (PRs 2–9) finally share a clock. Three pieces:
//!
//! * [`ShadowGate`] — a P@k regression gate. Every candidate replays the
//!   held-out query stream through the *candidate* engine (the same
//!   `predict_any` + `query_salt` path serving uses, so gate accuracy is
//!   serving accuracy, not training-eval accuracy); a candidate whose P@k
//!   drops more than `max_regression` below the best accepted so far is
//!   rejected and the registry pointer does not move.
//! * [`TrainerLoop`] — owns a persistent [`Trainer`] (SGD continues
//!   across rounds; the paper's §4.3.1 exponential rebuild schedule keeps
//!   amortizing as steps accumulate) and drives train → snapshot → gate →
//!   publish rounds.
//! * [`RegistryWatcher`] — polls `CURRENT`, mmap-loads new versions, and
//!   publishes them into a [`BatchingServer`] at a batch boundary. The
//!   **staleness** it records per swap is the full train-to-serve lag:
//!   version-file mtime (when the publisher made the bytes durable) to
//!   hot-swap completion, so it includes the pointer flip, the poll
//!   interval, the mmap + CRC verify, and the engine instantiation.
//!
//! Observability (all through the server's [`ObsHub`], so one scrape sees
//! serving and deployment together): `slide_gate_accepted_total` /
//! `slide_gate_rejected_total`, `slide_deploy_publish_us`,
//! `slide_deploy_swaps_total`, `slide_deploy_staleness_us` (histogram) +
//! `slide_deploy_staleness_last_us` (gauge), `slide_deploy_current_version`,
//! `slide_deploy_load_errors_total`.

use crate::model::FleetSpec;
use slide_core::{Network, Trainer, TrainerConfig};
use slide_data::{generate_synthetic, precision_at_k, Dataset};
use slide_mem::SparseVecRef;
use slide_obs::{Counter, ObsHub};
use slide_serve::{query_salt, BatchingServer, FrozenModel, ModelRegistry, SnapshotError};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Shadow-validation policy for candidate models.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Precision@k cutoff the gate scores candidates at.
    pub k: usize,
    /// Held-out queries replayed per candidate (0 = the whole test split).
    pub holdout: usize,
    /// Largest tolerated P@k drop below the best accepted candidate.
    pub max_regression: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            k: 1,
            holdout: 0,
            max_regression: 0.005,
        }
    }
}

/// Outcome of one gate decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateDecision {
    /// Candidate met the bar and may be published.
    Accepted,
    /// Candidate regressed; `baseline` is the bar it missed.
    Rejected {
        /// The best accepted P@k the candidate was held against.
        baseline: f64,
    },
}

/// P@k regression gate: replays a held-out stream through each candidate
/// and refuses to let a regressed model reach the registry.
///
/// The baseline ratchets: it is the best P@k among *accepted* candidates
/// (a model that merely clears the bar without beating it does not lower
/// the bar for its successors).
pub struct ShadowGate {
    cfg: GateConfig,
    baseline: Mutex<Option<f64>>,
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
}

impl ShadowGate {
    /// A gate whose accept/reject counters live in `hub`'s registry as
    /// `slide_gate_accepted_total` / `slide_gate_rejected_total`.
    pub fn new(hub: &ObsHub, cfg: GateConfig) -> Self {
        ShadowGate {
            cfg,
            baseline: Mutex::new(None),
            accepted: hub.registry().counter("slide_gate_accepted_total"),
            rejected: hub.registry().counter("slide_gate_rejected_total"),
        }
    }

    /// The gate's policy.
    pub fn config(&self) -> &GateConfig {
        &self.cfg
    }

    /// The current bar, `None` before the first accept/seed.
    pub fn baseline(&self) -> Option<f64> {
        *self.baseline.lock().expect("gate baseline lock")
    }

    /// Install a baseline without consuming a candidate — used when a
    /// restarted trainer finds an already-published version in the
    /// registry and must not treat its own first round as "first ever".
    pub fn seed_baseline(&self, p_at_k: f64) {
        let mut guard = self.baseline.lock().expect("gate baseline lock");
        *guard = Some(guard.map_or(p_at_k, |b: f64| b.max(p_at_k)));
    }

    /// Shadow-validate: replay the held-out stream through `model` via the
    /// exact serving path (`predict_any` + content-derived `query_salt`)
    /// and return mean P@k.
    pub fn shadow_p_at_k(&self, model: &Arc<dyn FrozenModel>, holdout: &Dataset) -> f64 {
        let n = if self.cfg.holdout == 0 {
            holdout.len()
        } else {
            self.cfg.holdout.min(holdout.len())
        };
        if n == 0 {
            return 0.0;
        }
        let mut scratch = model.make_scratch_any();
        let mut total = 0.0f64;
        for i in 0..n {
            let x = holdout.features(i);
            let salt = query_salt(x.indices, x.values, self.cfg.k);
            let top = model.predict_any(
                SparseVecRef::new(x.indices, x.values),
                self.cfg.k,
                &mut *scratch,
                salt,
            );
            total += f64::from(precision_at_k(&top, holdout.labels(i), self.cfg.k));
        }
        total / n as f64
    }

    /// Decide a candidate's fate from its shadow P@k, bump the matching
    /// counter, and (on accept) ratchet the baseline. The first candidate
    /// ever is always accepted — there is nothing to regress against.
    pub fn admit(&self, p_at_k: f64) -> GateDecision {
        let mut guard = self.baseline.lock().expect("gate baseline lock");
        match *guard {
            Some(baseline) if p_at_k < baseline - self.cfg.max_regression => {
                self.rejected.inc();
                GateDecision::Rejected { baseline }
            }
            prior => {
                *guard = Some(prior.map_or(p_at_k, |b| b.max(p_at_k)));
                self.accepted.inc();
                GateDecision::Accepted
            }
        }
    }
}

/// Configuration of one background-trainer loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainerLoopConfig {
    /// Fixture defining data, network, precision/shard axes; `spec.epochs`
    /// is the epochs trained *per round*.
    pub spec: FleetSpec,
    /// Gate policy.
    pub gate: GateConfig,
    /// `retain(n)` after each accepted publish (0 = keep every version).
    pub retain: usize,
    /// Deterministic gate-demo hook: at this 1-based round, snapshot a
    /// freshly initialized (untrained) network instead of the trainer's —
    /// a guaranteed regression the gate must catch.
    pub inject_regression_at: Option<usize>,
    /// Cap the §4.3.1 exponential rebuild period (`None` = library
    /// default). A lower cap keeps hash tables fresher between publishes
    /// at more rebuild cost — the paper's training knob become a serving
    /// freshness knob.
    pub rebuild_max_period: Option<u32>,
}

/// What one [`TrainerLoop::run_round`] did.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// 1-based round index.
    pub round: usize,
    /// Shadow P@k of the candidate.
    pub p_at_k: f64,
    /// The gate's verdict.
    pub decision: GateDecision,
    /// Version published (None when rejected).
    pub published: Option<u64>,
    /// Wall time of the train+snapshot step.
    pub train_time: Duration,
    /// Wall time of the publish step (zero when rejected).
    pub publish_time: Duration,
}

/// The background trainer: persistent SGD state, one candidate snapshot
/// per round, shadow gate in front of the registry.
pub struct TrainerLoop {
    cfg: TrainerLoopConfig,
    trainer: Trainer,
    holdout: Dataset,
    train_data: Dataset,
    registry: ModelRegistry,
    gate: ShadowGate,
    publish_us: Arc<slide_obs::Histogram>,
    round: usize,
    epoch: u64,
}

impl TrainerLoop {
    /// Open (or create) the registry at `root` and stand up the trainer.
    ///
    /// If the registry already holds a live version, it is loaded and its
    /// shadow P@k seeds the gate baseline, so a restarted trainer cannot
    /// laundromat a regression through a fresh "first candidate".
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] if the registry cannot be opened or an existing
    /// live version fails to load.
    pub fn new(
        root: impl AsRef<Path>,
        cfg: TrainerLoopConfig,
        hub: &ObsHub,
    ) -> Result<Self, SnapshotError> {
        let registry = ModelRegistry::open(root.as_ref())?;
        let synth = generate_synthetic(&cfg.spec.synth_config());
        let net = Network::new(cfg.spec.network_config())
            .map_err(|e| SnapshotError::Corrupt(format!("fleet network config: {e}")))?;
        let mut train_cfg = TrainerConfig {
            batch_size: 128,
            threads: 1, // sequential SGD ⇒ bit-reproducible candidates
            shuffle_seed: cfg.spec.seed ^ 0x5467,
            ..Default::default()
        };
        if let Some(cap) = cfg.rebuild_max_period {
            train_cfg.rebuild.max_period = cap.max(1);
            train_cfg.rebuild.initial_period = train_cfg.rebuild.initial_period.min(cap.max(1));
        }
        let trainer = Trainer::new(net, train_cfg)
            .map_err(|e| SnapshotError::Corrupt(format!("fleet trainer config: {e}")))?;
        let gate = ShadowGate::new(hub, cfg.gate);
        if let Some(path) = registry.current_path()? {
            let live = slide_quant::snapshot::load(&path)?;
            gate.seed_baseline(gate.shadow_p_at_k(&live, &synth.test));
        }
        Ok(TrainerLoop {
            cfg,
            trainer,
            holdout: synth.test,
            train_data: synth.train,
            registry,
            gate,
            publish_us: hub.registry().histogram("slide_deploy_publish_us"),
            round: 0,
            epoch: 0,
        })
    }

    /// The registry this loop publishes into.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The gate in front of the registry.
    pub fn gate(&self) -> &ShadowGate {
        &self.gate
    }

    /// The held-out stream candidates are shadow-validated on.
    pub fn holdout(&self) -> &Dataset {
        &self.holdout
    }

    /// Train one round's epochs, snapshot the candidate, shadow-validate,
    /// and publish on accept.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] if the candidate snapshot cannot be built or an
    /// accepted publish fails; gate rejections are an `Ok` outcome.
    pub fn run_round(&mut self) -> Result<RoundOutcome, SnapshotError> {
        self.round += 1;
        let train_started = Instant::now();
        let snapshot = if self.cfg.inject_regression_at == Some(self.round) {
            // Injected regression: a freshly initialized network that
            // never saw a gradient — near-chance P@k, guaranteed to trip
            // a gate whose baseline came from real training.
            let fresh = Network::new(self.cfg.spec.network_config())
                .map_err(|e| SnapshotError::Corrupt(format!("fleet network config: {e}")))?;
            self.cfg.spec.snapshot(&fresh)
        } else {
            for _ in 0..self.cfg.spec.epochs.max(1) {
                self.trainer.train_epoch(&self.train_data, self.epoch);
                self.epoch += 1;
            }
            self.cfg.spec.snapshot(self.trainer.network())
        };
        let train_time = train_started.elapsed();

        let candidate = snapshot.model()?;
        let p_at_k = self.gate.shadow_p_at_k(&candidate, &self.holdout);
        let decision = self.gate.admit(p_at_k);
        let (published, publish_time) = match decision {
            GateDecision::Accepted => {
                let publish_started = Instant::now();
                let version = self.registry.publish(snapshot.bytes())?;
                if self.cfg.retain > 0 {
                    self.registry.retain(self.cfg.retain)?;
                }
                let elapsed = publish_started.elapsed();
                self.publish_us.record(elapsed.as_micros() as u64);
                (Some(version), elapsed)
            }
            GateDecision::Rejected { .. } => (None, Duration::ZERO),
        };
        Ok(RoundOutcome {
            round: self.round,
            p_at_k,
            decision,
            published,
            train_time,
            publish_time,
        })
    }
}

/// One observed hot-swap.
#[derive(Debug, Clone, Copy)]
pub struct SwapEvent {
    /// Registry version now live in the server.
    pub version: u64,
    /// Train-to-serve lag: version-file mtime → swap completion. Zero if
    /// the filesystem clock runs ahead of the publish (clock skew).
    pub staleness: Duration,
    /// When the swap completed (this process's monotonic clock).
    pub at: Instant,
}

/// Poll-based registry follower: watches `CURRENT` and hot-swaps a live
/// [`BatchingServer`] onto every version change (forward publishes *and*
/// rollbacks — the watcher follows the pointer, not the version order).
pub struct RegistryWatcher {
    stop: Arc<AtomicBool>,
    swaps: Arc<Mutex<Vec<SwapEvent>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Callback a [`RegistryWatcher`] runs after each completed hot-swap
/// (daemons print their `SWAPPED` line from it).
pub type SwapCallback = Box<dyn Fn(&SwapEvent) + Send>;

impl RegistryWatcher {
    /// Start following `registry`, publishing each new version into
    /// `server`. `initial` is the version the server is already serving
    /// (so the watcher does not immediately re-swap onto it); `poll` is
    /// the pointer-check interval. `on_swap`, when given, runs after every
    /// completed swap (daemons print their `SWAPPED` line from it).
    ///
    /// Metrics go to `server.obs()`: see the module docs for the names.
    pub fn spawn(
        registry: ModelRegistry,
        server: Arc<BatchingServer>,
        initial: Option<u64>,
        poll: Duration,
        on_swap: Option<SwapCallback>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let swaps = Arc::new(Mutex::new(Vec::new()));
        let hub = server.obs();
        let swaps_total = hub.registry().counter("slide_deploy_swaps_total");
        let staleness_us = hub.registry().histogram("slide_deploy_staleness_us");
        let staleness_last = hub.registry().gauge("slide_deploy_staleness_last_us");
        let current_version = hub.registry().gauge("slide_deploy_current_version");
        let load_errors = hub.registry().counter("slide_deploy_load_errors_total");
        if let Some(v) = initial {
            current_version.set(v);
        }
        let handle = {
            let stop = Arc::clone(&stop);
            let swaps = Arc::clone(&swaps);
            std::thread::Builder::new()
                .name("registry-watcher".into())
                .spawn(move || {
                    let mut live = initial;
                    while !stop.load(Ordering::Relaxed) {
                        match registry.current_version() {
                            Ok(Some(version)) if live != Some(version) => {
                                let path = registry.version_path(version);
                                // mtime *before* the load so slow loads
                                // count toward staleness, not against it.
                                let mtime = std::fs::metadata(&path).and_then(|m| m.modified());
                                match slide_quant::snapshot::load(&path) {
                                    Ok(model) => {
                                        server.publish(model);
                                        live = Some(version);
                                        let staleness = mtime
                                            .ok()
                                            .and_then(|t| SystemTime::now().duration_since(t).ok())
                                            .unwrap_or(Duration::ZERO);
                                        let event = SwapEvent {
                                            version,
                                            staleness,
                                            at: Instant::now(),
                                        };
                                        swaps_total.inc();
                                        staleness_us.record(staleness.as_micros() as u64);
                                        staleness_last.set(staleness.as_micros() as u64);
                                        current_version.set(version);
                                        if let Some(cb) = &on_swap {
                                            cb(&event);
                                        }
                                        swaps.lock().expect("swap log lock").push(event);
                                    }
                                    Err(_) => {
                                        // Transient (reader raced retain) or
                                        // corrupt: count it, keep serving the
                                        // version we have, retry next poll.
                                        load_errors.inc();
                                    }
                                }
                            }
                            Ok(_) => {}
                            Err(_) => load_errors.inc(),
                        }
                        std::thread::sleep(poll);
                    }
                })
                .expect("spawn registry-watcher thread")
        };
        RegistryWatcher {
            stop,
            swaps,
            handle: Some(handle),
        }
    }

    /// Every swap observed so far, in order.
    pub fn swap_log(&self) -> Vec<SwapEvent> {
        self.swaps.lock().expect("swap log lock").clone()
    }

    /// Stop polling and join the watcher thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RegistryWatcher {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Block until the registry has a live version (a cold-started follower
/// waiting for its first publish). Returns `None` on `patience` expiry.
///
/// # Errors
///
/// [`SnapshotError`] only on a *corrupt* `CURRENT`; an absent pointer is
/// the condition being waited out.
pub fn wait_for_current(
    registry: &ModelRegistry,
    patience: Duration,
    poll: Duration,
) -> Result<Option<u64>, SnapshotError> {
    let deadline = Instant::now() + patience;
    loop {
        if let Some(v) = registry.current_version()? {
            return Ok(Some(v));
        }
        if Instant::now() >= deadline {
            return Ok(None);
        }
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FleetPrecision;

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "slide_deploy_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn gate_accepts_first_and_ratchets_baseline() {
        let hub = ObsHub::new();
        let gate = ShadowGate::new(&hub, GateConfig::default());
        assert_eq!(gate.baseline(), None);
        assert_eq!(gate.admit(0.50), GateDecision::Accepted);
        assert_eq!(gate.baseline(), Some(0.50));
        // Better candidate raises the bar; equal-or-slightly-worse passes.
        assert_eq!(gate.admit(0.60), GateDecision::Accepted);
        assert_eq!(gate.baseline(), Some(0.60));
        assert_eq!(gate.admit(0.5975), GateDecision::Accepted);
        assert_eq!(gate.baseline(), Some(0.60), "bar must not drop on a clear");
        // A real regression is rejected and the bar holds.
        assert_eq!(gate.admit(0.40), GateDecision::Rejected { baseline: 0.60 });
        assert_eq!(gate.baseline(), Some(0.60));
        assert_eq!(hub.registry().counter("slide_gate_accepted_total").get(), 3);
        assert_eq!(hub.registry().counter("slide_gate_rejected_total").get(), 1);
    }

    #[test]
    fn gate_seed_baseline_blocks_first_candidate_regression() {
        let hub = ObsHub::new();
        let gate = ShadowGate::new(&hub, GateConfig::default());
        gate.seed_baseline(0.70);
        assert_eq!(gate.admit(0.10), GateDecision::Rejected { baseline: 0.70 });
        // Seeding never lowers an existing bar.
        gate.seed_baseline(0.20);
        assert_eq!(gate.baseline(), Some(0.70));
    }

    #[test]
    fn trainer_loop_publishes_accepted_and_holds_current_on_regression() {
        let root = tmp_root("loop_gate");
        let hub = ObsHub::new();
        let cfg = TrainerLoopConfig {
            spec: FleetSpec {
                epochs: 8, // per round; the fixture needs a few dozen SGD
                // steps before P@1 clears chance (~0.01) decisively
                precision: FleetPrecision::F32,
                ..Default::default()
            },
            inject_regression_at: Some(2),
            ..Default::default()
        };
        let mut looper = TrainerLoop::new(&root, cfg, &hub).expect("trainer loop");

        let r1 = looper.run_round().expect("round 1");
        assert_eq!(r1.decision, GateDecision::Accepted);
        assert_eq!(r1.published, Some(1));
        assert!(
            r1.p_at_k > 0.03,
            "trained candidate P@1 {} too low",
            r1.p_at_k
        );

        // Round 2: injected untrained network ⇒ rejected, pointer unmoved.
        let r2 = looper.run_round().expect("round 2");
        assert!(matches!(r2.decision, GateDecision::Rejected { .. }));
        assert_eq!(r2.published, None);
        assert!(r2.p_at_k < r1.p_at_k, "injected candidate should regress");
        let reg = looper.registry().clone();
        assert_eq!(reg.current_version().expect("current"), Some(1));
        assert_eq!(reg.versions().expect("versions"), vec![1]);
        assert_eq!(hub.registry().counter("slide_gate_rejected_total").get(), 1);

        // Round 3: training resumed ⇒ accepted, v2 published.
        let r3 = looper.run_round().expect("round 3");
        assert_eq!(r3.decision, GateDecision::Accepted);
        assert_eq!(r3.published, Some(2));
        assert_eq!(reg.current_version().expect("current"), Some(2));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn restarted_loop_seeds_baseline_from_live_version() {
        let root = tmp_root("loop_restart");
        let hub = ObsHub::new();
        let cfg = TrainerLoopConfig {
            spec: FleetSpec {
                epochs: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        {
            let mut looper = TrainerLoop::new(&root, cfg, &hub).expect("first loop");
            looper.run_round().expect("publish v1");
        }
        // A fresh process (fresh hub) opening the same registry must not
        // accept an untrained first candidate: the live v1 seeds the bar.
        let hub2 = ObsHub::new();
        let cfg2 = TrainerLoopConfig {
            inject_regression_at: Some(1),
            ..cfg
        };
        let mut looper = TrainerLoop::new(&root, cfg2, &hub2).expect("restarted loop");
        assert!(looper.gate().baseline().expect("seeded") > 0.03);
        let r1 = looper.run_round().expect("round 1 after restart");
        assert!(matches!(r1.decision, GateDecision::Rejected { .. }));
        assert_eq!(
            looper.registry().current_version().expect("current"),
            Some(1),
            "CURRENT must not move for a rejected candidate"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn watcher_follows_publish_and_rollback() {
        let root = tmp_root("watcher");
        let registry = ModelRegistry::open(&root).expect("registry");
        let spec = FleetSpec::default();
        let (net0, _) = FleetSpec { epochs: 0, ..spec }.train();
        let (net1, test) = FleetSpec { epochs: 1, ..spec }.train();
        let snap_a = spec.snapshot(&net0);
        let snap_b = spec.snapshot(&net1);
        let v1 = registry.publish(snap_a.bytes()).expect("publish v1");

        let server = Arc::new(
            BatchingServer::start(
                snap_a.model().expect("model a"),
                slide_serve::BatchConfig {
                    threads: 1,
                    ..Default::default()
                },
            )
            .expect("batching server"),
        );
        let mut watcher = RegistryWatcher::spawn(
            registry.clone(),
            Arc::clone(&server),
            Some(v1),
            Duration::from_millis(5),
            None,
        );

        registry.publish(snap_b.bytes()).expect("publish v2");
        let deadline = Instant::now() + Duration::from_secs(10);
        while watcher.swap_log().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        registry.rollback().expect("rollback to v1");
        while watcher.swap_log().len() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        watcher.stop();

        let log = watcher.swap_log();
        assert_eq!(
            log.iter().map(|e| e.version).collect::<Vec<_>>(),
            vec![2, 1],
            "watcher must follow the pointer through publish AND rollback"
        );
        // After the rollback swap, the server answers with v1's model.
        let x = test.features(0);
        let k = 5;
        let salt = query_salt(x.indices, x.values, k);
        let got = server
            .predict(x.indices, x.values, k)
            .expect("predict after rollback");
        let mut scratch = snap_a.model().expect("model a").make_scratch_any();
        let want = snap_a.model().expect("model a").predict_any(
            SparseVecRef::new(x.indices, x.values),
            k,
            &mut *scratch,
            salt,
        );
        assert_eq!(got, want, "served answers must be v1's after rollback");
        let hub = server.obs();
        assert_eq!(hub.registry().counter("slide_deploy_swaps_total").get(), 2);
        assert_eq!(
            hub.registry().gauge("slide_deploy_current_version").get(),
            1
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wait_for_current_times_out_then_finds() {
        let root = tmp_root("wait");
        let registry = ModelRegistry::open(&root).expect("registry");
        assert_eq!(
            wait_for_current(
                &registry,
                Duration::from_millis(30),
                Duration::from_millis(5)
            )
            .expect("empty poll"),
            None
        );
        registry.publish(b"v1").expect("publish");
        assert_eq!(
            wait_for_current(&registry, Duration::from_secs(1), Duration::from_millis(5))
                .expect("poll"),
            Some(1)
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
