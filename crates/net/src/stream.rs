//! Framed I/O over `std::io` streams: blocking frame writes and
//! deadline-aware frame reads.
//!
//! The read path is built for sockets whose *read timeout is the poll
//! interval* (tens of milliseconds), not the protocol deadline: a timeout
//! with **zero bytes buffered** surfaces as [`ReadOutcome::Idle`] so the
//! caller can check its drain flag and come back, while a timeout **mid
//! frame** keeps reading until the frame completes or `deadline` (measured
//! from the frame's first byte) expires — at which point the peer is a
//! slow-loris and the read fails with [`WireError::Stalled`] instead of
//! hanging. A clean EOF *between* frames is [`ReadOutcome::Closed`]; an EOF
//! *inside* a frame is [`WireError::TruncatedStream`].

use crate::wire::{crc32, decode_payload, Frame, FrameHeader, WireError, HEADER_LEN};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// What a poll-driven frame read produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, validated frame.
    Frame(Frame),
    /// No bytes arrived within one socket timeout; nothing is buffered.
    Idle,
    /// The peer closed the stream at a frame boundary (clean close).
    Closed,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Write one frame and flush it.
///
/// # Errors
///
/// [`WireError::Io`] on any stream failure.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    let bytes = crate::wire::frame_bytes(frame);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Fill `buf` from `r`, honouring the frame `deadline` that started at
/// `t0` (or starts at the first byte if `t0` is `None`). Returns the number
/// of bytes read before a clean EOF with an empty buffer (0 only possible
/// when `stop_on_empty_eof`).
fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    t0: &mut Option<Instant>,
    deadline: Duration,
    idle_ok: bool,
) -> Result<Option<usize>, WireError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && idle_ok {
                    return Ok(None); // clean EOF at the boundary
                }
                return Err(WireError::TruncatedStream);
            }
            Ok(n) => {
                got += n;
                if t0.is_none() {
                    *t0 = Some(Instant::now());
                }
            }
            Err(e) if is_timeout(&e) => {
                if got == 0 && idle_ok && t0.is_none() {
                    return Ok(Some(0)); // idle: nothing buffered yet
                }
                if t0.is_some_and(|t| t.elapsed() >= deadline) {
                    return Err(WireError::Stalled);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(got))
}

/// Read one frame, polling: the stream's own read timeout is the poll
/// granularity; `deadline` bounds how long a *started* frame may take.
///
/// # Errors
///
/// Any [`WireError`]; notably [`WireError::Stalled`] for slow-loris peers
/// and [`WireError::TruncatedStream`] for mid-frame disconnects.
pub fn read_frame<R: Read>(
    r: &mut R,
    max_payload: u32,
    deadline: Duration,
) -> Result<ReadOutcome, WireError> {
    let mut t0: Option<Instant> = None;
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header, &mut t0, deadline, true)? {
        None => return Ok(ReadOutcome::Closed),
        Some(0) => return Ok(ReadOutcome::Idle),
        Some(_) => {}
    }
    let header = FrameHeader::parse(&header, max_payload)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    read_full(r, &mut payload, &mut t0, deadline, false)?;
    let actual = crc32(&payload);
    if actual != header.payload_crc {
        return Err(WireError::ChecksumMismatch {
            expected: header.payload_crc,
            actual,
        });
    }
    Ok(ReadOutcome::Frame(decode_payload(
        header.version,
        header.frame_type,
        &payload,
    )?))
}

/// Read one frame, retrying idle polls until `overall` elapses — the
/// client-side "wait for my response" read.
///
/// # Errors
///
/// [`WireError::Io`] with [`std::io::ErrorKind::TimedOut`] if no frame
/// starts within `overall`; otherwise as [`read_frame`].
pub fn read_frame_timeout<R: Read>(
    r: &mut R,
    max_payload: u32,
    overall: Duration,
) -> Result<Frame, WireError> {
    let start = Instant::now();
    loop {
        match read_frame(r, max_payload, overall)? {
            ReadOutcome::Frame(f) => return Ok(f),
            ReadOutcome::Closed => return Err(WireError::TruncatedStream),
            ReadOutcome::Idle => {
                if start.elapsed() >= overall {
                    return Err(WireError::Io(
                        std::io::ErrorKind::TimedOut,
                        "timed out waiting for a frame".into(),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{frame_bytes, DEFAULT_MAX_PAYLOAD};

    #[test]
    fn in_memory_roundtrip() {
        let frame = Frame::Ping { nonce: 7 };
        let bytes = frame_bytes(&frame);
        let mut r = &bytes[..];
        match read_frame(&mut r, DEFAULT_MAX_PAYLOAD, Duration::from_secs(1)).unwrap() {
            ReadOutcome::Frame(f) => assert_eq!(f, frame),
            other => panic!("unexpected outcome {other:?}"),
        }
        // The stream is now at a clean boundary: EOF is Closed, not an error.
        match read_frame(&mut r, DEFAULT_MAX_PAYLOAD, Duration::from_secs(1)).unwrap() {
            ReadOutcome::Closed => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_truncated_stream() {
        let bytes = frame_bytes(&Frame::Ping { nonce: 7 });
        let mut r = &bytes[..10];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_PAYLOAD, Duration::from_secs(1)),
            Err(WireError::TruncatedStream)
        ));
    }
}
