//! The `slide-net` wire protocol: length-prefixed, checksummed binary
//! frames over a byte stream.
//!
//! Every frame is a fixed 16-byte header followed by `payload_len` payload
//! bytes:
//!
//! ```text
//! offset  size  field         value
//! 0       4     magic         0x31574C53 ("SLW1", little-endian)
//! 4       1     version       1, 2, or 3 (see below)
//! 5       1     frame type    see [`Frame`]
//! 6       2     reserved      must be 0
//! 8       4     payload_len   LE; must be <= the receiver's max_payload
//! 12      4     payload_crc   CRC-32 (IEEE) of the payload bytes, LE
//! 16      n     payload       frame-type-specific, all integers LE
//! ```
//!
//! **Versioning** is per-frame, not per-connection. Version 1 is the
//! baseline protocol. Version 2 adds a `deadline_us` budget field to
//! `Predict` and the `DeadlineExceeded` reply (frame type 10). Version 3
//! adds a `trace_id` field to `Predict` (after `deadline_us`) and the
//! `GetMetrics`/`MetricsText` observability pair (frame types 11/12). The
//! encoder always emits the *lowest* version that can carry the frame — a
//! `Predict` with no deadline and no trace id is bit-identical to what a
//! v1 client sends, and one with a deadline but a zero trace id is
//! bit-identical to v2 — and the decoder accepts all versions, reading a
//! v1/v2 `Predict` as "no trace". Old clients therefore keep working
//! against new servers (their requests *are* v1/v2 frames, and every reply
//! they can trigger encodes at their version or lower), and the
//! canonical-encoding property (decode → encode is bit-identical) holds
//! across versions.
//!
//! The header is validated *before* any payload byte is read, so a bad
//! magic, an unknown version, or an oversized length prefix is rejected
//! without buffering attacker-controlled amounts of memory. The CRC is
//! checked after the payload arrives; a mismatch is a typed
//! [`WireError::ChecksumMismatch`], never a garbage parse.
//!
//! Decoding is **total**: [`decode_frame`] (and every payload parser under
//! it) returns `Result` for arbitrary input bytes and never panics — the
//! protocol-fuzz battery in `tests/wire_props.rs` feeds it random garbage
//! and byte-flipped valid frames to hold that line. Encoding goes through
//! the workspace's `bytes` shim ([`BufMut`]) exactly like the checkpoint
//! serializer does.

use bytes::{Buf, BufMut};

/// Frame magic: `b"SLW1"` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SLW1");

/// Baseline protocol version (no deadline support).
pub const VERSION: u8 = 1;

/// Deadline-aware protocol version: `Predict` carries a `deadline_us`
/// budget and servers may reply [`Frame::DeadlineExceeded`]. Frames that
/// need no v2 feature still encode as [`VERSION`] (lowest-version rule).
pub const VERSION2: u8 = 2;

/// Observability protocol version: `Predict` carries a `trace_id` (after
/// `deadline_us`) and [`Frame::GetMetrics`] / [`Frame::MetricsText`] expose
/// a process's metrics registry and trace ring. Frames that need no v3
/// feature encode at the lowest version that fits, so a zero trace id is
/// byte-invisible on the wire.
pub const VERSION3: u8 = 3;

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 16;

/// Default cap on `payload_len`; larger prefixes are rejected at the
/// header, before any payload is read.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;

// The payload checksum in every frame header is the workspace-wide CRC-32
// (IEEE 802.3) from slide-mem — the same checksum the snapshot format's
// section table uses, re-exported here so wire code keeps reading
// `crc32(payload)`.
pub use slide_mem::crc32;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Every way a frame can fail to parse or arrive. Each protocol fault the
/// fault-injection suite throws at the server maps to exactly one variant —
/// never a panic, never a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying stream failed (kind + rendered message).
    Io(std::io::ErrorKind, String),
    /// The peer closed the stream mid-frame (clean EOF at a frame boundary
    /// is *not* an error; see [`crate::stream::ReadOutcome::Closed`]).
    TruncatedStream,
    /// First header word was not [`MAGIC`].
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame-type byte.
    BadFrameType(u8),
    /// Reserved header bytes were non-zero.
    BadReserved(u16),
    /// `payload_len` exceeded the receiver's cap.
    Oversized {
        /// The length prefix the peer sent.
        len: u32,
        /// The receiver's configured maximum.
        max: u32,
    },
    /// Payload bytes did not match the header's CRC.
    ChecksumMismatch {
        /// CRC from the header.
        expected: u32,
        /// CRC of the received payload.
        actual: u32,
    },
    /// Payload ended before (or extended past) its type-specific layout.
    Malformed(String),
    /// A started frame did not complete within the receiver's deadline
    /// (slow-loris guard).
    Stalled,
    /// The serve tier rejected a build/publish (rendered
    /// [`slide_serve::ServeBuildError`]) — surfaced here so daemon startup
    /// and registry activation can flow through one error channel.
    ServerBuild(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind, msg) => write!(f, "io error ({kind:?}): {msg}"),
            WireError::TruncatedStream => f.write_str("peer closed the stream mid-frame"),
            WireError::BadMagic(m) => write!(f, "bad magic 0x{m:08X} (want 0x{MAGIC:08X})"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::BadReserved(r) => write!(f, "reserved header bytes 0x{r:04X} != 0"),
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum mismatch: header 0x{expected:08X}, computed 0x{actual:08X}"
            ),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            WireError::Stalled => f.write_str("frame stalled past the receive deadline"),
            WireError::ServerBuild(msg) => write!(f, "serve tier rejected build: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind(), e.to_string())
    }
}

impl From<slide_serve::ServeBuildError> for WireError {
    fn from(e: slide_serve::ServeBuildError) -> Self {
        WireError::ServerBuild(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Application-level failure codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The query was malformed for the model (bad index, k == 0, …).
    Invalid = 1,
    /// The serving process is shutting down or has no model.
    Unavailable = 2,
    /// The peer broke the protocol (sent a server-only frame, etc.).
    Protocol = 3,
    /// Anything else on the server side.
    Internal = 4,
}

impl ErrorCode {
    /// Decode a wire byte into a code.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for bytes outside `1..=4`.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            1 => Ok(ErrorCode::Invalid),
            2 => Ok(ErrorCode::Unavailable),
            3 => Ok(ErrorCode::Protocol),
            4 => Ok(ErrorCode::Internal),
            other => Err(WireError::Malformed(format!("unknown error code {other}"))),
        }
    }
}

/// A top-k prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub req_id: u64,
    /// Number of labels requested.
    pub k: u32,
    /// Remaining deadline budget in microseconds; `0` means "no deadline"
    /// (and encodes as a v1 frame). A *relative* budget rather than an
    /// absolute timestamp because the hops live in different processes with
    /// unsynchronized clocks: each hop anchors the budget to its own receive
    /// time and re-encodes the remainder when forwarding, so the budget
    /// shrinks monotonically across hops (network transit is the only time
    /// the budget fails to account for).
    pub deadline_us: u64,
    /// Distributed trace id; `0` means "untraced" (and never forces a v3
    /// encoding, so untraced requests are byte-identical to their v2/v1
    /// forms). A nonzero id is propagated unchanged client → router →
    /// replica, and every hop records its stage spans under it.
    pub trace_id: u64,
    /// Sparse feature indices (may be empty).
    pub indices: Vec<u32>,
    /// Matching feature values (same length as `indices`).
    pub values: Vec<f32>,
}

/// Replica health/load info carried by [`Frame::Pong`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PongInfo {
    /// Echo of the ping's nonce.
    pub nonce: u64,
    /// Requests currently in flight on the replica.
    pub inflight: u32,
    /// Whether the replica is draining (will refuse new work).
    pub draining: bool,
    /// Storage precision of the snapshot being served (`"f32"`, `"i8"`, …).
    pub precision: String,
}

/// One protocol frame. The discriminants are the on-wire frame-type bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: predict the top-k labels for a sparse input.
    Predict(PredictRequest),
    /// Server → client: the top-k label ids for `req_id`.
    TopK {
        /// Correlation id from the request.
        req_id: u64,
        /// Predicted label ids, best first.
        ids: Vec<u32>,
    },
    /// Server → client: the request failed.
    Error {
        /// Correlation id from the request (0 for connection-level errors).
        req_id: u64,
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Server → client: admission queue full — back off and retry (the
    /// explicit load-shedding frame; never silently buffered).
    RetryLater {
        /// Correlation id from the request.
        req_id: u64,
        /// Queue depth observed at rejection time.
        queue_depth: u32,
    },
    /// Health probe.
    Ping {
        /// Echoed back in the pong.
        nonce: u64,
    },
    /// Health probe response with load info.
    Pong(PongInfo),
    /// Ask the server for its stats JSON.
    GetStats,
    /// Stats JSON response.
    StatsJson(String),
    /// Ask the server to drain gracefully (stop accepting, flush
    /// in-flight, close). Acknowledged by echoing `Drain` back.
    Drain,
    /// Server → client: the request's deadline budget ran out before an
    /// answer was produced (shed pre-compute at admission or in the batch
    /// queue, or the budget expired mid-forward at the router). Distinct
    /// from [`Frame::RetryLater`]: the *budget* was exhausted, not the
    /// queue — an immediate retry carries the same doom. v2-only.
    DeadlineExceeded {
        /// Correlation id from the request.
        req_id: u64,
    },
    /// Ask the server for its Prometheus-style metrics exposition
    /// (counters, histograms, breaker states, recent trace spans). v3-only.
    GetMetrics,
    /// Metrics exposition text response. v3-only.
    MetricsText(String),
}

impl Frame {
    /// The on-wire frame-type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Predict(_) => 1,
            Frame::TopK { .. } => 2,
            Frame::Error { .. } => 3,
            Frame::RetryLater { .. } => 4,
            Frame::Ping { .. } => 5,
            Frame::Pong(_) => 6,
            Frame::GetStats => 7,
            Frame::StatsJson(_) => 8,
            Frame::Drain => 9,
            Frame::DeadlineExceeded { .. } => 10,
            Frame::GetMetrics => 11,
            Frame::MetricsText(_) => 12,
        }
    }

    /// The lowest protocol version that can carry this frame — what the
    /// encoder stamps in the header. A traced `Predict` and the metrics
    /// pair need v3; a deadline-bearing `Predict` and `DeadlineExceeded`
    /// need v2; everything else stays v1, so a frame with no newer-version
    /// feature is bit-identical to its oldest encoding.
    pub fn wire_version(&self) -> u8 {
        match self {
            Frame::Predict(req) if req.trace_id > 0 => VERSION3,
            Frame::GetMetrics | Frame::MetricsText(_) => VERSION3,
            Frame::Predict(req) if req.deadline_us > 0 => VERSION2,
            Frame::DeadlineExceeded { .. } => VERSION2,
            _ => VERSION,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_payload(frame: &Frame, version: u8, out: &mut Vec<u8>) {
    match frame {
        Frame::Predict(req) => {
            out.put_u64_le(req.req_id);
            out.put_u32_le(req.k);
            if version >= VERSION2 {
                out.put_u64_le(req.deadline_us);
            }
            if version >= VERSION3 {
                out.put_u64_le(req.trace_id);
            }
            out.put_u32_le(req.indices.len() as u32);
            for &i in &req.indices {
                out.put_u32_le(i);
            }
            for &v in &req.values {
                out.put_f32_le(v);
            }
        }
        Frame::TopK { req_id, ids } => {
            out.put_u64_le(*req_id);
            out.put_u32_le(ids.len() as u32);
            for &id in ids {
                out.put_u32_le(id);
            }
        }
        Frame::Error {
            req_id,
            code,
            message,
        } => {
            out.put_u64_le(*req_id);
            out.put_u8(*code as u8);
            out.put_u32_le(message.len() as u32);
            out.put_slice(message.as_bytes());
        }
        Frame::RetryLater {
            req_id,
            queue_depth,
        } => {
            out.put_u64_le(*req_id);
            out.put_u32_le(*queue_depth);
        }
        Frame::Ping { nonce } => out.put_u64_le(*nonce),
        Frame::Pong(info) => {
            out.put_u64_le(info.nonce);
            out.put_u32_le(info.inflight);
            out.put_u8(info.draining as u8);
            out.put_u32_le(info.precision.len() as u32);
            out.put_slice(info.precision.as_bytes());
        }
        Frame::GetStats | Frame::Drain | Frame::GetMetrics => {}
        Frame::StatsJson(json) => out.put_slice(json.as_bytes()),
        Frame::DeadlineExceeded { req_id } => out.put_u64_le(*req_id),
        Frame::MetricsText(text) => out.put_slice(text.as_bytes()),
    }
}

/// Append `frame` (header + payload) to `out`, stamped with the lowest
/// protocol version that can carry it (see [`Frame::wire_version`]).
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let version = frame.wire_version();
    let mut payload = Vec::new();
    encode_payload(frame, version, &mut payload);
    out.put_u32_le(MAGIC);
    out.put_u8(version);
    out.put_u8(frame.type_byte());
    out.put_u8(0); // reserved
    out.put_u8(0); // reserved
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(crc32(&payload));
    out.put_slice(&payload);
}

/// Encode `frame` into a fresh buffer.
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 64);
    encode_frame(frame, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Decoding (total: never panics, whatever the bytes)
// ---------------------------------------------------------------------------

/// Checked little-endian reader over a payload slice — every accessor
/// verifies `remaining()` before touching the `bytes` shim (whose `get_*`
/// panic on underflow, matching upstream).
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn need(&self, n: usize, what: &str) -> Result<(), WireError> {
        if self.0.remaining() < n {
            return Err(WireError::Malformed(format!(
                "payload ends inside {what}: need {n} bytes, have {}",
                self.0.remaining()
            )));
        }
        Ok(())
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        self.need(1, what)?;
        Ok(self.0.get_u8())
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        self.need(4, what)?;
        Ok(self.0.get_u32_le())
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        self.need(8, what)?;
        Ok(self.0.get_u64_le())
    }

    fn f32(&mut self, what: &str) -> Result<f32, WireError> {
        self.need(4, what)?;
        Ok(self.0.get_f32_le())
    }

    fn utf8(&mut self, len: usize, what: &str) -> Result<String, WireError> {
        self.need(len, what)?;
        let mut bytes = vec![0u8; len];
        self.0.copy_to_slice(&mut bytes);
        String::from_utf8(bytes)
            .map_err(|_| WireError::Malformed(format!("{what} is not valid UTF-8")))
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.0.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after {what}",
                self.0.remaining()
            )));
        }
        Ok(())
    }
}

/// A parsed frame header, validated field by field in wire order (so the
/// first corrupt field is the one reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version of this frame ([`VERSION`], [`VERSION2`], or
    /// [`VERSION3`]); payload layout for some frame types depends on it.
    pub version: u8,
    /// Frame-type byte (validated against the known set for `version`).
    pub frame_type: u8,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Expected CRC-32 of the payload.
    pub payload_crc: u32,
}

impl FrameHeader {
    /// Parse and validate a 16-byte header. `max_payload` bounds the length
    /// prefix *before* any payload is read.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMagic`] / [`WireError::BadVersion`] /
    /// [`WireError::BadFrameType`] / [`WireError::BadReserved`] /
    /// [`WireError::Oversized`] in wire order.
    pub fn parse(bytes: &[u8; HEADER_LEN], max_payload: u32) -> Result<Self, WireError> {
        let mut r = &bytes[..];
        let magic = r.get_u32_le();
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.get_u8();
        if !(VERSION..=VERSION3).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        // Frame types exist only at the version that introduced them (10 =
        // DeadlineExceeded in v2; 11/12 = GetMetrics/MetricsText in v3); an
        // older frame claiming a newer type is a protocol fault, not a
        // forward-compat case.
        let max_type = match version {
            v if v >= VERSION3 => 12,
            v if v >= VERSION2 => 10,
            _ => 9,
        };
        let frame_type = r.get_u8();
        if !(1..=max_type).contains(&frame_type) {
            return Err(WireError::BadFrameType(frame_type));
        }
        let reserved = u16::from_le_bytes([r.get_u8(), r.get_u8()]);
        if reserved != 0 {
            return Err(WireError::BadReserved(reserved));
        }
        let payload_len = r.get_u32_le();
        if payload_len > max_payload {
            return Err(WireError::Oversized {
                len: payload_len,
                max: max_payload,
            });
        }
        let payload_crc = r.get_u32_le();
        Ok(FrameHeader {
            version,
            frame_type,
            payload_len,
            payload_crc,
        })
    }
}

/// Parse a payload whose header already validated, under the header's
/// protocol `version` (a v1 `Predict` has no deadline field and decodes as
/// `deadline_us == 0`). Total: returns a typed error for any byte sequence.
pub fn decode_payload(version: u8, frame_type: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader(payload);
    match frame_type {
        1 => {
            let req_id = r.u64("Predict.req_id")?;
            let k = r.u32("Predict.k")?;
            let deadline_us = if version >= VERSION2 {
                r.u64("Predict.deadline_us")?
            } else {
                0
            };
            let trace_id = if version >= VERSION3 {
                r.u64("Predict.trace_id")?
            } else {
                0
            };
            let nnz = r.u32("Predict.nnz")? as usize;
            // 8 bytes per non-zero (u32 index + f32 value) must fit in what
            // is actually present — reject absurd counts before allocating.
            r.need(nnz.saturating_mul(8), "Predict.indices/values")?;
            let mut indices = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                indices.push(r.u32("Predict.index")?);
            }
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                values.push(r.f32("Predict.value")?);
            }
            r.finish("Predict")?;
            Ok(Frame::Predict(PredictRequest {
                req_id,
                k,
                deadline_us,
                trace_id,
                indices,
                values,
            }))
        }
        2 => {
            let req_id = r.u64("TopK.req_id")?;
            let n = r.u32("TopK.n")? as usize;
            r.need(n.saturating_mul(4), "TopK.ids")?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.u32("TopK.id")?);
            }
            r.finish("TopK")?;
            Ok(Frame::TopK { req_id, ids })
        }
        3 => {
            let req_id = r.u64("Error.req_id")?;
            let code = ErrorCode::from_u8(r.u8("Error.code")?)?;
            let len = r.u32("Error.msg_len")? as usize;
            let message = r.utf8(len, "Error.message")?;
            r.finish("Error")?;
            Ok(Frame::Error {
                req_id,
                code,
                message,
            })
        }
        4 => {
            let req_id = r.u64("RetryLater.req_id")?;
            let queue_depth = r.u32("RetryLater.queue_depth")?;
            r.finish("RetryLater")?;
            Ok(Frame::RetryLater {
                req_id,
                queue_depth,
            })
        }
        5 => {
            let nonce = r.u64("Ping.nonce")?;
            r.finish("Ping")?;
            Ok(Frame::Ping { nonce })
        }
        6 => {
            let nonce = r.u64("Pong.nonce")?;
            let inflight = r.u32("Pong.inflight")?;
            let draining = r.u8("Pong.draining")? != 0;
            let len = r.u32("Pong.precision_len")? as usize;
            let precision = r.utf8(len, "Pong.precision")?;
            r.finish("Pong")?;
            Ok(Frame::Pong(PongInfo {
                nonce,
                inflight,
                draining,
                precision,
            }))
        }
        7 => {
            r.finish("GetStats")?;
            Ok(Frame::GetStats)
        }
        8 => {
            let len = payload.len();
            let json = r.utf8(len, "StatsJson.body")?;
            Ok(Frame::StatsJson(json))
        }
        9 => {
            r.finish("Drain")?;
            Ok(Frame::Drain)
        }
        10 if version >= VERSION2 => {
            let req_id = r.u64("DeadlineExceeded.req_id")?;
            r.finish("DeadlineExceeded")?;
            Ok(Frame::DeadlineExceeded { req_id })
        }
        11 if version >= VERSION3 => {
            r.finish("GetMetrics")?;
            Ok(Frame::GetMetrics)
        }
        12 if version >= VERSION3 => {
            let len = payload.len();
            let text = r.utf8(len, "MetricsText.body")?;
            Ok(Frame::MetricsText(text))
        }
        other => Err(WireError::BadFrameType(other)),
    }
}

/// Decode one complete frame from the front of `buf`, returning it and the
/// bytes consumed. Total over arbitrary input: every failure is a typed
/// [`WireError`], never a panic. Fails with [`WireError::TruncatedStream`]
/// if `buf` holds less than one whole frame.
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::TruncatedStream);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let header = FrameHeader::parse(&header, max_payload)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if buf.len() < total {
        return Err(WireError::TruncatedStream);
    }
    let payload = &buf[HEADER_LEN..total];
    let actual = crc32(payload);
    if actual != header.payload_crc {
        return Err(WireError::ChecksumMismatch {
            expected: header.payload_crc,
            actual,
        });
    }
    Ok((
        decode_payload(header.version, header.frame_type, payload)?,
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    fn roundtrip(frame: Frame) {
        let bytes = frame_bytes(&frame);
        let (decoded, used) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
        // Re-encoding is bit-identical (canonical encoding).
        assert_eq!(frame_bytes(&decoded), bytes);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Predict(PredictRequest {
            req_id: 42,
            k: 5,
            deadline_us: 0,
            trace_id: 0,
            indices: vec![1, 17, 40],
            values: vec![1.0, -0.5, 0.25],
        }));
        roundtrip(Frame::Predict(PredictRequest {
            req_id: 0,
            k: 1,
            deadline_us: 0,
            trace_id: 0,
            indices: vec![],
            values: vec![],
        }));
        roundtrip(Frame::Predict(PredictRequest {
            req_id: 7,
            k: 3,
            deadline_us: 250_000,
            trace_id: 0,
            indices: vec![2, 5],
            values: vec![0.5, -1.0],
        }));
        roundtrip(Frame::DeadlineExceeded { req_id: 99 });
        roundtrip(Frame::TopK {
            req_id: 42,
            ids: vec![3, 1, 4, 1, 5],
        });
        roundtrip(Frame::Error {
            req_id: 9,
            code: ErrorCode::Invalid,
            message: "k must be positive".into(),
        });
        roundtrip(Frame::RetryLater {
            req_id: 7,
            queue_depth: 4096,
        });
        roundtrip(Frame::Ping { nonce: 0xDEAD });
        roundtrip(Frame::Pong(PongInfo {
            nonce: 0xDEAD,
            inflight: 12,
            draining: true,
            precision: "i8".into(),
        }));
        roundtrip(Frame::GetStats);
        roundtrip(Frame::StatsJson("{\"served\":1}".into()));
        roundtrip(Frame::Drain);
        roundtrip(Frame::Predict(PredictRequest {
            req_id: 11,
            k: 2,
            deadline_us: 5_000,
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            indices: vec![1],
            values: vec![2.0],
        }));
        roundtrip(Frame::GetMetrics);
        roundtrip(Frame::MetricsText(
            "# TYPE slide_serve_requests_total counter\n".into(),
        ));
    }

    #[test]
    fn version_is_per_frame_and_lowest_that_fits() {
        // No deadline -> v1 bytes, indistinguishable from an old client.
        let plain = frame_bytes(&Frame::Predict(PredictRequest {
            req_id: 1,
            k: 2,
            deadline_us: 0,
            trace_id: 0,
            indices: vec![3],
            values: vec![1.0],
        }));
        assert_eq!(plain[4], VERSION);
        // A deadline forces v2 and an 8-byte-longer payload.
        let budgeted = frame_bytes(&Frame::Predict(PredictRequest {
            req_id: 1,
            k: 2,
            deadline_us: 1_000,
            trace_id: 0,
            indices: vec![3],
            values: vec![1.0],
        }));
        assert_eq!(budgeted[4], VERSION2);
        assert_eq!(budgeted.len(), plain.len() + 8);
        assert_eq!(
            frame_bytes(&Frame::DeadlineExceeded { req_id: 1 })[4],
            VERSION2
        );
        // Replies a v1 client can trigger all stay v1.
        for frame in [
            Frame::TopK {
                req_id: 1,
                ids: vec![0],
            },
            Frame::RetryLater {
                req_id: 1,
                queue_depth: 9,
            },
            Frame::Ping { nonce: 5 },
            Frame::Drain,
        ] {
            assert_eq!(frame_bytes(&frame)[4], VERSION);
        }
    }

    #[test]
    fn v1_predict_layout_decodes_with_no_deadline() {
        // Hand-built v1 Predict payload: req_id, k, nnz, indices, values —
        // the exact bytes a pre-deadline client emits. Guards layout drift:
        // the v2 field must not leak into v1 decoding.
        let mut payload = Vec::new();
        payload.put_u64_le(77);
        payload.put_u32_le(4);
        payload.put_u32_le(2);
        payload.put_u32_le(10);
        payload.put_u32_le(20);
        payload.put_f32_le(1.5);
        payload.put_f32_le(-0.5);
        let decoded = decode_payload(VERSION, 1, &payload).expect("v1 predict decodes");
        let expect = Frame::Predict(PredictRequest {
            req_id: 77,
            k: 4,
            deadline_us: 0,
            trace_id: 0,
            indices: vec![10, 20],
            values: vec![1.5, -0.5],
        });
        assert_eq!(decoded, expect);
        // And the canonical encoding of that frame IS the v1 byte stream.
        let mut bytes = Vec::new();
        bytes.put_u32_le(MAGIC);
        bytes.put_u8(VERSION);
        bytes.put_u8(1);
        bytes.put_u8(0);
        bytes.put_u8(0);
        bytes.put_u32_le(payload.len() as u32);
        bytes.put_u32_le(crc32(&payload));
        bytes.put_slice(&payload);
        assert_eq!(frame_bytes(&expect), bytes);
    }

    #[test]
    fn deadline_exceeded_requires_v2() {
        // A v1 header claiming frame type 10 is a typed rejection.
        let mut payload = Vec::new();
        payload.put_u64_le(1);
        let mut bytes = Vec::new();
        bytes.put_u32_le(MAGIC);
        bytes.put_u8(VERSION);
        bytes.put_u8(10);
        bytes.put_u8(0);
        bytes.put_u8(0);
        bytes.put_u32_le(payload.len() as u32);
        bytes.put_u32_le(crc32(&payload));
        bytes.put_slice(&payload);
        assert_eq!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadFrameType(10))
        );
    }

    #[test]
    fn trace_id_forces_v3_and_adds_eight_bytes() {
        // The v2 deadline form is the baseline...
        let v2 = frame_bytes(&Frame::Predict(PredictRequest {
            req_id: 3,
            k: 2,
            deadline_us: 9_000,
            trace_id: 0,
            indices: vec![4],
            values: vec![0.5],
        }));
        assert_eq!(v2[4], VERSION2);
        // ...and a non-zero trace id widens it by exactly the 8-byte id.
        let v3 = frame_bytes(&Frame::Predict(PredictRequest {
            req_id: 3,
            k: 2,
            deadline_us: 9_000,
            trace_id: 0x1234_5678_9ABC_DEF0,
            indices: vec![4],
            values: vec![0.5],
        }));
        assert_eq!(v3[4], VERSION3);
        assert_eq!(v3.len(), v2.len() + 8);
        // A zero trace id never forces v3: the encoding above IS the v2
        // byte stream an un-instrumented client emits, bit for bit.
        assert_eq!(&v2[..4], &v3[..4]);
        // Metrics frames are v3-only by construction.
        assert_eq!(frame_bytes(&Frame::GetMetrics)[4], VERSION3);
        assert_eq!(frame_bytes(&Frame::MetricsText("x".into()))[4], VERSION3);
    }

    #[test]
    fn metrics_frames_require_v3() {
        // Pre-v3 headers claiming frame types 11/12 are typed rejections,
        // exactly like type 10 on a v1 header.
        for (version, ftype, payload) in [
            (VERSION, 11u8, Vec::new()),
            (VERSION2, 11u8, Vec::new()),
            (VERSION, 12u8, b"text".to_vec()),
            (VERSION2, 12u8, b"text".to_vec()),
        ] {
            let mut bytes = Vec::new();
            bytes.put_u32_le(MAGIC);
            bytes.put_u8(version);
            bytes.put_u8(ftype);
            bytes.put_u8(0);
            bytes.put_u8(0);
            bytes.put_u32_le(payload.len() as u32);
            bytes.put_u32_le(crc32(&payload));
            bytes.put_slice(&payload);
            assert_eq!(
                decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
                Err(WireError::BadFrameType(ftype)),
                "type {ftype} must be rejected at v{version}"
            );
        }
    }

    #[test]
    fn header_faults_are_typed_in_wire_order() {
        let good = frame_bytes(&Frame::Ping { nonce: 1 });

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadVersion(99))
        ));

        let mut bad = good.clone();
        bad[5] = 200;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadFrameType(200))
        ));

        let mut bad = good.clone();
        bad[6] = 1;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::BadReserved(1))
        ));

        // Oversized length prefix is rejected at the header even though the
        // buffer holds nowhere near that many bytes.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::Oversized { len: u32::MAX, .. })
        ));

        // Corrupted payload byte -> checksum mismatch, not a garbage parse.
        let mut bad = frame_bytes(&Frame::StatsJson("{}".into()));
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(WireError::ChecksumMismatch { .. })
        ));

        // Truncated buffer -> TruncatedStream, whatever the cut point.
        for cut in 0..good.len() {
            assert_eq!(
                decode_frame(&good[..cut], DEFAULT_MAX_PAYLOAD),
                Err(WireError::TruncatedStream),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn payload_underflow_and_trailing_bytes_are_malformed() {
        // Predict claiming 1000 non-zeros with an 8-byte payload.
        let mut payload = Vec::new();
        payload.put_u64_le(1);
        payload.put_u32_le(5);
        payload.put_u32_le(1000);
        assert!(matches!(
            decode_payload(VERSION, 1, &payload),
            Err(WireError::Malformed(_))
        ));
        // Ping with trailing junk.
        let mut payload = Vec::new();
        payload.put_u64_le(1);
        payload.put_u8(0);
        assert!(matches!(
            decode_payload(VERSION, 5, &payload),
            Err(WireError::Malformed(_))
        ));
        // Error frame with non-UTF-8 message bytes.
        let mut payload = Vec::new();
        payload.put_u64_le(1);
        payload.put_u8(1);
        payload.put_u32_le(2);
        payload.put_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            decode_payload(VERSION, 3, &payload),
            Err(WireError::Malformed(_))
        ));
        // v2 Predict whose payload stops inside the deadline field.
        let mut payload = Vec::new();
        payload.put_u64_le(1);
        payload.put_u32_le(5);
        payload.put_u32_le(0); // only 4 of the deadline's 8 bytes present
        assert!(matches!(
            decode_payload(VERSION2, 1, &payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn error_displays_name_the_fault() {
        let e = WireError::Oversized { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        let e = WireError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
