//! TCP wire protocol and multi-replica fleet serving for the SLIDE
//! reproduction.
//!
//! The paper ("Accelerating SLIDE Deep Learning on Modern CPUs", MLSys
//! 2021) ends at the socket boundary; this crate crosses it. It puts the
//! frozen-serving engines of `slide-serve`/`slide-quant` behind a
//! length-prefixed, checksummed binary protocol over `std::net` TCP and
//! scales them out to a replicated fleet:
//!
//! * [`wire`] — the frame codec: 16-byte header (magic `SLW1`, version,
//!   frame type, length, CRC-32 of the payload), twelve frame kinds
//!   ([`Frame`], including the v3 `GetMetrics`/`MetricsText` scrape pair
//!   and a per-request trace id on `Predict`), and a **total** decoder —
//!   arbitrary bytes produce a typed [`WireError`], never a panic
//!   (property-tested against garbage and mutation fuzzing).
//! * [`stream`] — deadline-aware framed I/O: idle polls, slow-loris
//!   cutoffs ([`WireError::Stalled`]), clean-close vs mid-frame-EOF
//!   distinction.
//! * [`server`] — [`NetServer`], the daemon front-end: thread-per-
//!   connection, bounded admission via
//!   [`slide_serve::BatchingServer::try_predict`] with explicit
//!   [`Frame::RetryLater`] shedding, per-client stats, graceful drain.
//! * [`client`] — [`NetClient`], a blocking request/response client.
//! * [`router`] — [`Router`], a fleet proxy: consistent-hash or
//!   least-load replica selection, per-replica three-state circuit
//!   breakers (exponential backoff + jittered half-open probes), hedged
//!   requests, deadline-aware shedding, and failover on replica faults.
//! * [`fault`] — [`FaultProxy`], a deterministic frame-granular fault
//!   injector (delay/drop/corrupt/stall/close under a seeded
//!   [`FaultPlan`]) for the chaos suites and `net_bench`'s fault phase.
//! * [`loadgen`] — open-loop (coordinated-omission-free) load generation
//!   shared by `net_bench` and the chaos tests.
//! * [`model`] — [`FleetSpec`], deterministic train+freeze fixtures so
//!   every replica process serves bit-identical answers.
//! * [`deploy`] — the continuous train→serve loop: [`TrainerLoop`]
//!   (background trainer + [`ShadowGate`] P@k regression gate in front of
//!   the registry) and [`RegistryWatcher`] (poll `CURRENT`, mmap-load,
//!   hot-swap a live `BatchingServer` — `slide_netd --follow`).
//!
//! Two binaries ship with the crate: `slide_netd` (one replica daemon) and
//! `slide_router` (the fleet front door). See DESIGN.md §9 for the frame
//! layout and the drain/failover state machines, and §11 for deadline
//! budget arithmetic, the breaker state machine, and the hedging policy.

pub mod client;
pub mod deploy;
pub mod fault;
pub mod loadgen;
pub mod model;
pub mod router;
pub mod server;
pub mod stream;
pub mod wire;

pub use client::{ClientError, NetClient};
pub use deploy::{
    wait_for_current, GateConfig, GateDecision, RegistryWatcher, RoundOutcome, ShadowGate,
    SwapCallback, SwapEvent, TrainerLoop, TrainerLoopConfig,
};
pub use fault::{Direction, FaultAction, FaultPlan, FaultProxy, FaultRule, FaultStats, Trigger};
pub use loadgen::{query_battery, run_open_loop, LoadReport, LoadgenConfig, SubmitOutcome};
pub use model::{FleetPrecision, FleetSpec};
pub use router::{RoutePolicy, Router, RouterConfig};
pub use server::{ClientCounters, NetConfig, NetServer, NetStats, MAX_TRACKED_PEERS};
pub use stream::{read_frame, read_frame_timeout, write_frame, ReadOutcome};
pub use wire::{
    crc32, decode_frame, decode_payload, encode_frame, frame_bytes, ErrorCode, Frame, FrameHeader,
    PongInfo, PredictRequest, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC, VERSION, VERSION2,
    VERSION3,
};
