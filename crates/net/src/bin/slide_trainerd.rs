//! `slide_trainerd` — the background trainer half of the continuous
//! deployment loop: train rounds of epochs on the deterministic
//! [`FleetSpec`] fixture, shadow-validate every candidate snapshot behind
//! a P@k regression gate, and publish the survivors to a
//! `slide_serve::ModelRegistry` for a `slide_netd --follow` fleet to
//! hot-swap onto.
//!
//! Per round it prints one of (machine-parseable, like `slide_netd`'s
//! tags):
//!
//! ```text
//! SLIDE_TRAINERD PUBLISHED v000002 p_at_1 0.2344
//! SLIDE_TRAINERD REJECTED round 3 p_at_1 0.0052 baseline 0.2344
//! ```
//!
//! then `SLIDE_TRAINERD STATS {json}` + `SLIDE_TRAINERD DONE` at exit.
//! Stops early (between rounds) when stdin reaches EOF — the same
//! portable parent-died convention the other daemons use.

use slide_net::deploy::{GateConfig, GateDecision, TrainerLoop, TrainerLoopConfig};
use slide_net::{FleetPrecision, FleetSpec};
use slide_obs::ObsHub;
use std::io::Read;
use std::time::Duration;

struct Args {
    registry: std::path::PathBuf,
    rounds: usize,
    epochs_per_round: usize,
    seed: u64,
    precision: FleetPrecision,
    shards: usize,
    period_ms: u64,
    gate_k: usize,
    gate_regression: f64,
    holdout: usize,
    retain: usize,
    inject_regression_at: Option<usize>,
    rebuild_max_period: Option<u32>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        registry: std::path::PathBuf::new(),
        rounds: 4,
        epochs_per_round: 4,
        seed: FleetSpec::default().seed,
        precision: FleetPrecision::F32,
        shards: 0,
        period_ms: 0,
        gate_k: 1,
        gate_regression: 0.005,
        holdout: 0,
        retain: 0,
        inject_regression_at: None,
        rebuild_max_period: None,
    };
    let mut seen_registry = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--registry" => {
                args.registry = val()?.into();
                seen_registry = true;
            }
            "--rounds" => args.rounds = val()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--epochs-per-round" => {
                args.epochs_per_round = val()?
                    .parse()
                    .map_err(|e| format!("--epochs-per-round: {e}"))?;
            }
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--precision" => args.precision = FleetPrecision::parse(&val()?)?,
            "--shards" => args.shards = val()?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--period-ms" => {
                args.period_ms = val()?.parse().map_err(|e| format!("--period-ms: {e}"))?;
            }
            "--gate-k" => args.gate_k = val()?.parse().map_err(|e| format!("--gate-k: {e}"))?,
            "--gate-regression" => {
                args.gate_regression = val()?
                    .parse()
                    .map_err(|e| format!("--gate-regression: {e}"))?;
            }
            "--holdout" => args.holdout = val()?.parse().map_err(|e| format!("--holdout: {e}"))?,
            "--retain" => args.retain = val()?.parse().map_err(|e| format!("--retain: {e}"))?,
            "--inject-regression-at" => {
                args.inject_regression_at = Some(
                    val()?
                        .parse()
                        .map_err(|e| format!("--inject-regression-at: {e}"))?,
                );
            }
            "--rebuild-max-period" => {
                args.rebuild_max_period = Some(
                    val()?
                        .parse()
                        .map_err(|e| format!("--rebuild-max-period: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !seen_registry {
        return Err("--registry <dir> is required".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("slide_trainerd: {msg}");
            std::process::exit(2);
        }
    };
    let hub = ObsHub::new();
    let cfg = TrainerLoopConfig {
        spec: FleetSpec {
            seed: args.seed,
            precision: args.precision,
            shards: args.shards,
            epochs: args.epochs_per_round,
        },
        gate: GateConfig {
            k: args.gate_k,
            holdout: args.holdout,
            max_regression: args.gate_regression,
        },
        retain: args.retain,
        inject_regression_at: args.inject_regression_at,
        rebuild_max_period: args.rebuild_max_period,
    };
    let mut looper = match TrainerLoop::new(&args.registry, cfg, &hub) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("slide_trainerd: registry {:?}: {e}", args.registry);
            std::process::exit(1);
        }
    };

    // Stdin watcher: EOF = parent says stop after the current round.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    std::thread::spawn(move || {
        let mut buf = [0u8; 64];
        let mut stdin = std::io::stdin().lock();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let _ = tx.send(());
    });
    let stopped = |timeout: Duration| -> bool {
        matches!(
            rx.recv_timeout(timeout),
            Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected)
        )
    };

    let mut published = 0usize;
    let mut publish_us_total = 0u128;
    for round in 1..=args.rounds {
        let outcome = match looper.run_round() {
            Ok(o) => o,
            Err(e) => {
                eprintln!("slide_trainerd: round {round}: {e}");
                std::process::exit(1);
            }
        };
        let k = args.gate_k;
        match outcome.decision {
            GateDecision::Accepted => {
                published += 1;
                publish_us_total += outcome.publish_time.as_micros();
                println!(
                    "SLIDE_TRAINERD PUBLISHED v{:06} p_at_{k} {:.4}",
                    outcome.published.expect("accepted round has a version"),
                    outcome.p_at_k
                );
            }
            GateDecision::Rejected { baseline } => {
                println!(
                    "SLIDE_TRAINERD REJECTED round {round} p_at_{k} {:.4} baseline {baseline:.4}",
                    outcome.p_at_k
                );
            }
        }
        if round < args.rounds && stopped(Duration::from_millis(args.period_ms)) {
            println!("SLIDE_TRAINERD STOPPED round {round}");
            break;
        }
    }

    let reg = hub.registry();
    let accepted = reg.counter("slide_gate_accepted_total").get();
    let rejected = reg.counter("slide_gate_rejected_total").get();
    let baseline = looper.gate().baseline().unwrap_or(0.0);
    println!(
        "SLIDE_TRAINERD STATS {{\"accepted\":{accepted},\"rejected\":{rejected},\
         \"published\":{published},\"baseline_p_at_k\":{baseline:.4},\
         \"publish_us_total\":{publish_us_total}}}"
    );
    println!("SLIDE_TRAINERD DONE");
}
