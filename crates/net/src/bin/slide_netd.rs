//! `slide_netd` — one serving replica: obtains its model either by
//! rebuilding the deterministic [`FleetSpec`] fixture (train + freeze) or,
//! with `--snapshot <dir>`, by mmap-loading the current version from a
//! `slide_serve::ModelRegistry` — no training, no re-quantization, weight
//! arenas viewing the mapped file. Either way the model is wrapped in a
//! [`slide_serve::BatchingServer`] and fronted with a [`NetServer`] on a
//! TCP address.
//!
//! With `--follow` (requires `--snapshot`), the replica keeps watching the
//! registry's `CURRENT` pointer after cold-start and hot-swaps onto every
//! new version a `slide_trainerd` publishes — no restart, in-flight
//! requests finish on the model they started on. Each swap prints
//! `SLIDE_NETD SWAPPED v<version> staleness_us <n>`. A follower pointed at
//! an *empty* registry waits (up to 120 s) for the first publish instead
//! of exiting.
//!
//! Prints `SLIDE_NETD LISTENING <addr>` once ready (parents parse this to
//! learn an OS-assigned port). Shuts down gracefully when stdin reaches
//! EOF — the portable SIGTERM-equivalent: the parent holds our stdin pipe
//! and dropping it (or the parent dying) drains us — or when a client
//! sends a `Drain` frame.

use slide_net::deploy::{wait_for_current, RegistryWatcher};
use slide_net::{FleetPrecision, FleetSpec, NetConfig, NetServer, WireError};
use slide_serve::{BatchConfig, BatchingServer, FrozenModel, ModelRegistry};
use std::io::Read;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    seed: u64,
    precision: FleetPrecision,
    shards: usize,
    epochs: usize,
    threads: usize,
    max_batch: usize,
    queue_cap: usize,
    snapshot: Option<std::path::PathBuf>,
    follow: bool,
    poll_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        seed: FleetSpec::default().seed,
        precision: FleetPrecision::F32,
        shards: 0,
        epochs: 1,
        threads: 2,
        max_batch: 8,
        queue_cap: 64,
        snapshot: None,
        follow: false,
        poll_ms: 50,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = val()?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--precision" => args.precision = FleetPrecision::parse(&val()?)?,
            "--shards" => args.shards = val()?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--epochs" => args.epochs = val()?.parse().map_err(|e| format!("--epochs: {e}"))?,
            "--threads" => args.threads = val()?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--max-batch" => {
                args.max_batch = val()?.parse().map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--queue-cap" => {
                args.queue_cap = val()?.parse().map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--snapshot" => args.snapshot = Some(val()?.into()),
            "--follow" => args.follow = true,
            "--poll-ms" => args.poll_ms = val()?.parse().map_err(|e| format!("--poll-ms: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.follow && args.snapshot.is_none() {
        return Err("--follow requires --snapshot <registry dir>".into());
    }
    Ok(args)
}

/// Cold-start path: mmap + verify the registry's current version. The
/// `--precision`/`--shards`/`--epochs` axes are ignored — the snapshot
/// header, not the command line, says what engine this is. With `follow`,
/// an empty registry is waited out (a follower may start before the
/// trainer's first publish); without it, empty is fatal.
fn load_registry_model(
    dir: &std::path::Path,
    follow: bool,
) -> Result<(Arc<dyn FrozenModel>, ModelRegistry, u64), String> {
    let registry = ModelRegistry::open(dir).map_err(|e| format!("registry {dir:?}: {e}"))?;
    let version = if follow {
        wait_for_current(
            &registry,
            Duration::from_secs(120),
            Duration::from_millis(50),
        )
        .map_err(|e| format!("registry {dir:?}: {e}"))?
        .ok_or_else(|| format!("registry {dir:?}: no version published within 120s"))?
    } else {
        registry
            .current_version()
            .map_err(|e| format!("registry {dir:?}: {e}"))?
            .ok_or_else(|| format!("registry {dir:?} has no published version"))?
    };
    let path = registry.version_path(version);
    let model =
        slide_quant::snapshot::load(&path).map_err(|e| format!("snapshot {path:?}: {e}"))?;
    Ok((model, registry, version))
}

/// Bind with retries: a restarted replica reclaiming its old port can race
/// the kernel's release of the previous socket (no `SO_REUSEADDR` in plain
/// `std::net` binds on all platforms). Retries back off exponentially
/// (50 ms doubling, capped at 1 s) with a deterministic per-attempt jitter
/// so a herd of restarting replicas doesn't hammer the kernel in lockstep
/// the way the old fixed 100 ms cadence did. Returns how many retries it
/// took.
fn bind_retrying(addr: &str, patience: Duration) -> std::io::Result<u32> {
    let start = Instant::now();
    let mut retries = 0u32;
    loop {
        match TcpListener::bind(addr) {
            Ok(probe) => {
                drop(probe);
                return Ok(retries);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && start.elapsed() < patience => {
                let base = Duration::from_millis(50)
                    .saturating_mul(1u32 << retries.min(5))
                    .min(Duration::from_secs(1));
                // splitmix64-style mix of (pid, attempt) → ±25% jitter,
                // deterministic for a given process so restarts are
                // reproducible but distinct replicas desynchronize.
                let mut h = (u64::from(std::process::id()) << 32) ^ u64::from(retries);
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let frac = 0.75 + ((h >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
                std::thread::sleep(base.mul_f64(frac));
                retries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("slide_netd: {msg}");
            std::process::exit(2);
        }
    };
    let mut registry_state: Option<(ModelRegistry, u64)> = None;
    let model: Arc<dyn FrozenModel> = match &args.snapshot {
        Some(dir) => match load_registry_model(dir, args.follow) {
            Ok((m, registry, version)) => {
                registry_state = Some((registry, version));
                m
            }
            Err(msg) => {
                eprintln!("slide_netd: {msg}");
                std::process::exit(1);
            }
        },
        None => {
            let spec = FleetSpec {
                seed: args.seed,
                precision: args.precision,
                shards: args.shards,
                epochs: args.epochs,
            };
            spec.build().0
        }
    };
    let batching = BatchingServer::start(
        model,
        BatchConfig {
            max_batch: args.max_batch,
            max_wait: Duration::from_millis(1),
            queue_cap: args.queue_cap,
            threads: args.threads,
        },
    )
    .map_err(WireError::from);
    let batching = match batching {
        Ok(b) => Arc::new(b),
        Err(e) => {
            eprintln!("slide_netd: {e}");
            std::process::exit(1);
        }
    };
    // A fixed (non-:0) address may still be in TIME_WAIT from the replica
    // we are replacing; wait it out before the real bind.
    if !args.addr.ends_with(":0") {
        match bind_retrying(&args.addr, Duration::from_secs(10)) {
            // On its own line: parents parse the LISTENING line's tail as
            // the address, so retry counts must never ride on it.
            Ok(retries) if retries > 0 => {
                println!("SLIDE_NETD BIND_RETRIES {retries}");
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("slide_netd: bind {}: {e}", args.addr);
                std::process::exit(1);
            }
        }
    }
    // --follow: keep tracking the registry pointer and hot-swap the
    // batching server onto each new version. The watcher prints its swap
    // line from the callback so parents can tail for it.
    let mut watcher = match (args.follow, registry_state) {
        (true, Some((registry, version))) => Some(RegistryWatcher::spawn(
            registry,
            Arc::clone(&batching),
            Some(version),
            Duration::from_millis(args.poll_ms.max(1)),
            Some(Box::new(|event: &slide_net::deploy::SwapEvent| {
                println!(
                    "SLIDE_NETD SWAPPED v{:06} staleness_us {}",
                    event.version,
                    event.staleness.as_micros()
                );
            })),
        )),
        _ => None,
    };
    let mut net = match NetServer::start(Arc::clone(&batching), &args.addr, NetConfig::default()) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("slide_netd: bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("SLIDE_NETD LISTENING {}", net.local_addr());
    // Watch stdin from a helper thread; EOF (or read error) = parent says
    // shut down.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    std::thread::spawn(move || {
        let mut buf = [0u8; 64];
        let mut stdin = std::io::stdin().lock();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let _ = tx.send(());
    });
    loop {
        if net.is_draining() {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
    // Stop swapping before draining: a drain must report the stats of the
    // model mix it actually served, not race one last swap.
    if let Some(w) = watcher.as_mut() {
        w.stop();
    }
    net.drain();
    println!("SLIDE_NETD STATS {}", net.stats().to_json());
    println!("SLIDE_NETD DRAINED");
}
