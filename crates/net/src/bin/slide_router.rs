//! `slide_router` — the fleet front door: speaks the wire protocol to
//! clients and spreads predicts across replica daemons with per-replica
//! circuit breakers, hedged requests, and deadline-aware shedding.
//!
//! Prints `SLIDE_ROUTER LISTENING <addr>` once ready. Shuts down on stdin
//! EOF (the portable SIGTERM-equivalent) or a client `Drain` frame.

use slide_net::{NetConfig, RoutePolicy, Router, RouterConfig};
use std::io::Read;
use std::net::SocketAddr;
use std::time::Duration;

struct Args {
    addr: String,
    replicas: Vec<SocketAddr>,
    cfg: RouterConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        replicas: Vec::new(),
        cfg: RouterConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = val()?,
            "--replica" => args
                .replicas
                .push(val()?.parse().map_err(|e| format!("--replica: {e}"))?),
            "--policy" => {
                args.cfg.policy = match val()?.as_str() {
                    "least-load" => RoutePolicy::LeastLoad,
                    "consistent-hash" => RoutePolicy::ConsistentHash,
                    other => {
                        return Err(format!(
                            "unknown policy '{other}' (want least-load or consistent-hash)"
                        ))
                    }
                }
            }
            "--health-interval-ms" => {
                args.cfg.health_interval = Duration::from_millis(
                    val()?
                        .parse()
                        .map_err(|e| format!("--health-interval-ms: {e}"))?,
                );
            }
            "--eject-after" => {
                args.cfg.eject_after = val()?.parse().map_err(|e| format!("--eject-after: {e}"))?;
            }
            "--request-timeout-ms" => {
                args.cfg.request_timeout = Duration::from_millis(
                    val()?
                        .parse()
                        .map_err(|e| format!("--request-timeout-ms: {e}"))?,
                );
            }
            "--hedge" => {
                args.cfg.hedge = match val()?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--hedge: want on or off, got '{other}'")),
                };
            }
            "--hedge-fraction" => {
                args.cfg.hedge_fraction = val()?
                    .parse()
                    .map_err(|e| format!("--hedge-fraction: {e}"))?;
            }
            "--hedge-delay-ms" => {
                args.cfg.hedge_delay = Duration::from_millis(
                    val()?
                        .parse()
                        .map_err(|e| format!("--hedge-delay-ms: {e}"))?,
                );
            }
            "--breaker-backoff-ms" => {
                args.cfg.breaker_backoff = Duration::from_millis(
                    val()?
                        .parse()
                        .map_err(|e| format!("--breaker-backoff-ms: {e}"))?,
                );
            }
            "--breaker-max-backoff-ms" => {
                args.cfg.breaker_max_backoff = Duration::from_millis(
                    val()?
                        .parse()
                        .map_err(|e| format!("--breaker-max-backoff-ms: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.replicas.is_empty() {
        return Err("need at least one --replica <addr>".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("slide_router: {msg}");
            std::process::exit(2);
        }
    };
    let cfg = RouterConfig {
        net: NetConfig::default(),
        ..args.cfg
    };
    let mut router = match Router::start(&args.addr, &args.replicas, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("slide_router: bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("SLIDE_ROUTER LISTENING {}", router.local_addr());
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    std::thread::spawn(move || {
        let mut buf = [0u8; 64];
        let mut stdin = std::io::stdin().lock();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let _ = tx.send(());
    });
    loop {
        if router.is_draining() {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
    router.drain();
    println!("SLIDE_ROUTER STATS {}", router.stats_json());
    println!("SLIDE_ROUTER DRAINED");
}
