//! The TCP front-end a `slide_netd` process wraps around a
//! [`BatchingServer`].
//!
//! Thread-per-connection over `std::net` (the ROADMAP's "thread-per-
//! connection first" directive — a readiness loop is a measured follow-up,
//! not a prerequisite): an accept thread polls a non-blocking listener so it
//! can observe the drain flag, and each connection runs a frame loop whose
//! reads use the poll-interval/frame-deadline discipline of
//! [`crate::stream::read_frame`] — so an idle keep-alive connection costs
//! one timed-out `read` per poll, a slow-loris peer is cut off at the frame
//! deadline, and a mid-frame disconnect is a typed error, never a stuck
//! thread.
//!
//! **Admission control:** predictions go through
//! [`BatchingServer::try_predict`] — the bounded submission queue *is* the
//! admission queue, and when it is full the client gets an explicit
//! [`Frame::RetryLater`] (with the observed depth) instead of unbounded
//! buffering or a silently parked connection thread.
//!
//! **Graceful drain** ([`NetServer::drain`], or a client [`Frame::Drain`]):
//! stop accepting connections, answer every request already being read or
//! scored, then close each connection at its next frame boundary. The state
//! machine is Accepting → Draining → Closed; see DESIGN.md §9.

use crate::stream::{read_frame, write_frame, ReadOutcome};
use crate::wire::{ErrorCode, Frame, PongInfo, WireError};
use parking_lot::Mutex;
use slide_obs::{Counter, Histogram, ObsHub, Stage};
use slide_serve::{stage_histogram, BatchingServer, LatencySummary, ServeError};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Socket-level knobs shared by the daemon and the router listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Socket read timeout = how often blocked reads re-check the drain
    /// flag. Smaller is more responsive, larger is cheaper.
    pub poll_interval: Duration,
    /// Once a frame's first byte arrives, the whole frame must complete
    /// within this window (slow-loris bound).
    pub frame_deadline: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Cap on any frame's payload length.
    pub max_payload: u32,
    /// Connections beyond this are refused with an `Unavailable` error.
    pub max_connections: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            poll_interval: Duration::from_millis(25),
            frame_deadline: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            max_payload: crate::wire::DEFAULT_MAX_PAYLOAD,
            max_connections: 1024,
        }
    }
}

/// Per-peer request counters (keyed by the peer's `ip:port`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Predict frames received.
    pub requests: u64,
    /// Answered with a top-k.
    pub ok: u64,
    /// Answered with an `Invalid` error.
    pub invalid: u64,
    /// Shed with `RetryLater`.
    pub retry_later: u64,
    /// Shed with `DeadlineExceeded` (budget ran out at admission or in the
    /// batch queue).
    pub deadline_exceeded: u64,
    /// Wire-level faults attributed to this peer (bad frames, stalls).
    pub protocol_errors: u64,
}

/// A tracked peer: counters plus a last-touch clock for LRU eviction.
#[derive(Default, Clone, Copy)]
struct PeerEntry {
    touched: u64,
    counters: ClientCounters,
}

#[derive(Default)]
struct NetStatsInner {
    per_client: HashMap<String, PeerEntry>,
    /// Monotone touch clock driving LRU eviction of `per_client`.
    touch_seq: u64,
}

/// Track at most this many distinct peers. A port-churning loadgen (every
/// reconnect is a fresh `ip:port` key) previously grew the map without
/// bound; beyond the cap the least-recently-touched peer is evicted and
/// `slide_net_evicted_peers_total` counts the loss. Fleet totals are immune:
/// they come from registry counters, not per-peer sums.
pub const MAX_TRACKED_PEERS: usize = 64;

/// Network-tier instruments, registered in the **batching server's** hub so
/// one `GetMetrics` scrape exposes socket-, serve-, and stage-level series
/// from a single rendering pass.
struct NetObs {
    hub: Arc<ObsHub>,
    requests: Arc<Counter>,
    ok: Arc<Counter>,
    invalid: Arc<Counter>,
    retry_later: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    evicted_peers: Arc<Counter>,
    latency_us: Arc<Histogram>,
    stage_encode: Arc<Histogram>,
}

impl NetObs {
    fn new(hub: Arc<ObsHub>) -> Self {
        let r = hub.registry();
        NetObs {
            requests: r.counter("slide_net_requests_total"),
            ok: r.counter("slide_net_ok_total"),
            invalid: r.counter("slide_net_invalid_total"),
            retry_later: r.counter("slide_net_retry_later_total"),
            deadline_exceeded: r.counter("slide_net_deadline_exceeded_total"),
            protocol_errors: r.counter("slide_net_protocol_errors_total"),
            evicted_peers: r.counter("slide_net_evicted_peers_total"),
            latency_us: r.histogram("slide_net_latency_us"),
            stage_encode: stage_histogram(&hub, Stage::Encode),
            hub,
        }
    }
}

struct NetShared {
    batching: Arc<BatchingServer>,
    cfg: NetConfig,
    local_addr: SocketAddr,
    draining: AtomicBool,
    /// Predict requests currently inside `try_predict`.
    inflight: AtomicUsize,
    conns_active: AtomicUsize,
    conns_opened: AtomicU64,
    refused: AtomicU64,
    obs: NetObs,
    stats: Mutex<NetStatsInner>,
    conn_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A point-in-time snapshot of the network tier's counters.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Whether the server is draining.
    pub draining: bool,
    /// Connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Connections currently open.
    pub connections_active: usize,
    /// Connections refused at the `max_connections` cap.
    pub refused: u64,
    /// Predict requests currently in flight.
    pub inflight: usize,
    /// Fleet totals since start. Registry-backed, so they keep counting
    /// across per-peer evictions (summing `per_client` would not).
    pub totals: ClientCounters,
    /// Peers dropped from the tracked set at the [`MAX_TRACKED_PEERS`] cap.
    pub evicted_peers: u64,
    /// Per-peer counters (at most [`MAX_TRACKED_PEERS`] entries, most
    /// recently active peers win), sorted by peer address.
    pub per_client: Vec<(String, ClientCounters)>,
    /// Socket-measured request latency (frame decoded → response written).
    pub latency: LatencySummary,
}

impl NetStats {
    /// Render as a JSON object (the `GetStats` response body).
    pub fn to_json(&self) -> String {
        let clients: Vec<String> = self
            .per_client
            .iter()
            .map(|(peer, c)| {
                format!(
                    "{{\"peer\":\"{peer}\",\"requests\":{},\"ok\":{},\"invalid\":{},\
                     \"retry_later\":{},\"deadline_exceeded\":{},\"protocol_errors\":{}}}",
                    c.requests,
                    c.ok,
                    c.invalid,
                    c.retry_later,
                    c.deadline_exceeded,
                    c.protocol_errors
                )
            })
            .collect();
        format!(
            "{{\"draining\":{},\"connections_opened\":{},\"connections_active\":{},\
             \"refused\":{},\"inflight\":{},\"requests\":{},\"ok\":{},\"invalid\":{},\
             \"retry_later\":{},\"deadline_exceeded\":{},\"protocol_errors\":{},\
             \"evicted_peers\":{},\
             \"latency_us\":{{\"p50\":{},\"p99\":{},\"mean\":{:.1},\"max\":{},\"samples\":{}}},\
             \"clients\":[{}]}}",
            self.draining,
            self.connections_opened,
            self.connections_active,
            self.refused,
            self.inflight,
            self.totals.requests,
            self.totals.ok,
            self.totals.invalid,
            self.totals.retry_later,
            self.totals.deadline_exceeded,
            self.totals.protocol_errors,
            self.evicted_peers,
            self.latency.p50_us,
            self.latency.p99_us,
            self.latency.mean_us,
            self.latency.max_us,
            self.latency.samples,
            clients.join(",")
        )
    }
}

/// The TCP serving front-end: accepts wire-protocol connections and answers
/// them from a shared [`BatchingServer`].
///
/// Dropping the handle drains gracefully (stop accepting, flush in-flight,
/// close connections at their next frame boundary).
pub struct NetServer {
    shared: Arc<NetShared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` and start accepting. The batching server may be shared
    /// with other front-ends (or direct in-process callers — the loopback
    /// parity tests do exactly that).
    ///
    /// # Errors
    ///
    /// Any bind/spawn failure, as `std::io::Error`.
    pub fn start<A: ToSocketAddrs>(
        batching: Arc<BatchingServer>,
        addr: A,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let obs = NetObs::new(batching.obs());
        let shared = Arc::new(NetShared {
            batching,
            cfg,
            local_addr,
            obs,
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            conns_active: AtomicUsize::new(0),
            conns_opened: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            stats: Mutex::new(NetStatsInner::default()),
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(NetServer {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Whether a drain has been requested (by [`NetServer::drain`] or a
    /// client's `Drain` frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Snapshot the network-tier counters.
    pub fn stats(&self) -> NetStats {
        snapshot_stats(&self.shared)
    }

    /// Graceful drain: stop accepting, let every in-flight request finish
    /// and its response flush, then close all connections. Blocks until the
    /// accept thread and every connection thread have exited.
    pub fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads observe the flag within one poll interval and
        // exit after flushing any response they are mid-way through.
        loop {
            let handles: Vec<_> = self.shared.conn_handles.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.drain();
    }
}

fn snapshot_stats(shared: &NetShared) -> NetStats {
    let inner = shared.stats.lock();
    let mut per_client: Vec<(String, ClientCounters)> = inner
        .per_client
        .iter()
        .map(|(k, v)| (k.clone(), v.counters))
        .collect();
    per_client.sort_by(|a, b| a.0.cmp(&b.0));
    drop(inner);
    let o = &shared.obs;
    let lat = o.latency_us.snapshot();
    NetStats {
        draining: shared.draining.load(Ordering::Acquire),
        connections_opened: shared.conns_opened.load(Ordering::Relaxed),
        connections_active: shared.conns_active.load(Ordering::Relaxed),
        refused: shared.refused.load(Ordering::Relaxed),
        inflight: shared.inflight.load(Ordering::Relaxed),
        totals: ClientCounters {
            requests: o.requests.get(),
            ok: o.ok.get(),
            invalid: o.invalid.get(),
            retry_later: o.retry_later.get(),
            deadline_exceeded: o.deadline_exceeded.get(),
            protocol_errors: o.protocol_errors.get(),
        },
        evicted_peers: o.evicted_peers.get(),
        latency: LatencySummary {
            p50_us: lat.quantile(50.0),
            p99_us: lat.quantile(99.0),
            mean_us: lat.mean(),
            max_us: lat.max,
            samples: lat.count,
        },
        per_client,
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NetShared>) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                shared.conns_opened.fetch_add(1, Ordering::Relaxed);
                if shared.conns_active.load(Ordering::Relaxed) >= shared.cfg.max_connections {
                    shared.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream, shared.cfg);
                    continue;
                }
                shared.conns_active.fetch_add(1, Ordering::Relaxed);
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("slide-net-conn-{peer}"))
                    .spawn(move || {
                        connection_loop(stream, peer, &shared2);
                        shared2.conns_active.fetch_sub(1, Ordering::Relaxed);
                    });
                match handle {
                    Ok(h) => {
                        let mut handles = shared.conn_handles.lock();
                        // Reap finished connections so a long-lived daemon
                        // doesn't accumulate dead join handles.
                        handles.retain(|h| !h.is_finished());
                        handles.push(h);
                    }
                    Err(_) => {
                        shared.conns_active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval.min(Duration::from_millis(10)));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake);
                // back off briefly and keep listening.
                std::thread::sleep(shared.cfg.poll_interval);
            }
        }
    }
}

/// Tell an over-cap peer to go away, best-effort.
fn refuse(mut stream: TcpStream, cfg: NetConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = write_frame(
        &mut stream,
        &Frame::Error {
            req_id: 0,
            code: ErrorCode::Unavailable,
            message: "connection limit reached".into(),
        },
    );
}

fn bump(shared: &NetShared, peer: &str, f: impl Fn(&mut ClientCounters)) {
    let mut inner = shared.stats.lock();
    inner.touch_seq += 1;
    let now = inner.touch_seq;
    if !inner.per_client.contains_key(peer) && inner.per_client.len() >= MAX_TRACKED_PEERS {
        // Evict the least-recently-touched peer to admit this one. O(n)
        // scan, but n is capped at MAX_TRACKED_PEERS and eviction only
        // fires on first contact from a new peer past the cap.
        if let Some(victim) = inner
            .per_client
            .iter()
            .min_by_key(|(_, e)| e.touched)
            .map(|(k, _)| k.clone())
        {
            inner.per_client.remove(&victim);
            shared.obs.evicted_peers.inc();
        }
    }
    let entry = inner.per_client.entry(peer.to_string()).or_default();
    entry.touched = now;
    f(&mut entry.counters);
}

fn connection_loop(mut stream: TcpStream, peer: SocketAddr, shared: &NetShared) {
    let cfg = shared.cfg;
    if stream.set_read_timeout(Some(cfg.poll_interval)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let peer = peer.to_string();
    loop {
        if shared.draining.load(Ordering::Acquire) {
            // Flush-then-close happens below per response; at a frame
            // boundary there is nothing in flight on this connection.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let frame = match read_frame(&mut stream, cfg.max_payload, cfg.frame_deadline) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Frame(f)) => f,
            Err(e) => {
                bump(shared, &peer, |c| c.protocol_errors += 1);
                shared.obs.protocol_errors.inc();
                // Name the fault for the peer when the stream is still
                // usable, then close. Stalls and IO faults skip the
                // courtesy reply.
                if !matches!(e, WireError::Stalled | WireError::Io(..)) {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Error {
                            req_id: 0,
                            code: ErrorCode::Protocol,
                            message: e.to_string(),
                        },
                    );
                }
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        let keep_going = handle_frame(&mut stream, &peer, shared, frame);
        if !keep_going {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
}

/// Handle one decoded frame; returns false when the connection should close.
fn handle_frame(stream: &mut TcpStream, peer: &str, shared: &NetShared, frame: Frame) -> bool {
    match frame {
        Frame::Predict(req) => {
            bump(shared, peer, |c| c.requests += 1);
            shared.obs.requests.inc();
            if shared.draining.load(Ordering::Acquire) {
                // Drain started between frames: shed softly and close.
                bump(shared, peer, |c| c.retry_later += 1);
                shared.obs.retry_later.inc();
                let _ = write_frame(
                    stream,
                    &Frame::RetryLater {
                        req_id: req.req_id,
                        queue_depth: 0,
                    },
                );
                return false;
            }
            let t0 = Instant::now();
            // Anchor the relative budget to our receive time: the frame was
            // fully read microseconds ago, so `t0` is the admission instant.
            let deadline =
                (req.deadline_us > 0).then(|| t0 + Duration::from_micros(req.deadline_us));
            shared.inflight.fetch_add(1, Ordering::Relaxed);
            let result = shared.batching.try_predict_traced(
                &req.indices,
                &req.values,
                req.k as usize,
                deadline,
                req.trace_id,
            );
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            let reply = match result {
                Ok(ids) => {
                    bump(shared, peer, |c| c.ok += 1);
                    shared.obs.ok.inc();
                    shared
                        .obs
                        .latency_us
                        .record(t0.elapsed().as_micros() as u64);
                    Frame::TopK {
                        req_id: req.req_id,
                        ids,
                    }
                }
                Err(ServeError::Overloaded(depth)) => {
                    bump(shared, peer, |c| c.retry_later += 1);
                    shared.obs.retry_later.inc();
                    Frame::RetryLater {
                        req_id: req.req_id,
                        queue_depth: depth as u32,
                    }
                }
                Err(ServeError::DeadlineExceeded) => {
                    bump(shared, peer, |c| c.deadline_exceeded += 1);
                    shared.obs.deadline_exceeded.inc();
                    Frame::DeadlineExceeded { req_id: req.req_id }
                }
                Err(ServeError::Invalid(msg)) => {
                    bump(shared, peer, |c| c.invalid += 1);
                    shared.obs.invalid.inc();
                    Frame::Error {
                        req_id: req.req_id,
                        code: ErrorCode::Invalid,
                        message: msg,
                    }
                }
                Err(ServeError::Closed) => {
                    let _ = write_frame(
                        stream,
                        &Frame::Error {
                            req_id: req.req_id,
                            code: ErrorCode::Unavailable,
                            message: "serving engine closed".into(),
                        },
                    );
                    return false;
                }
            };
            // Encode + flush is the last hop a request spends inside this
            // process; time it like any other stage.
            let ring = shared.obs.hub.ring();
            let enc_start = ring.now_us();
            let sent = write_frame(stream, &reply).is_ok();
            let enc_dur = ring.now_us().saturating_sub(enc_start);
            shared.obs.stage_encode.record(enc_dur);
            ring.record(req.trace_id, Stage::Encode, enc_start, enc_dur);
            sent
        }
        Frame::Ping { nonce } => {
            let precision = shared.batching.current().precision().to_string();
            write_frame(
                stream,
                &Frame::Pong(PongInfo {
                    nonce,
                    inflight: shared.inflight.load(Ordering::Relaxed) as u32,
                    draining: shared.draining.load(Ordering::Acquire),
                    precision,
                }),
            )
            .is_ok()
        }
        Frame::GetStats => {
            let json = snapshot_stats(shared).to_json();
            write_frame(stream, &Frame::StatsJson(json)).is_ok()
        }
        Frame::GetMetrics => {
            // One hub serves both tiers: socket counters, serve counters,
            // stage histograms, and the trace ring render together.
            let text = shared.obs.hub.render();
            write_frame(stream, &Frame::MetricsText(text)).is_ok()
        }
        Frame::Drain => {
            shared.draining.store(true, Ordering::Release);
            let _ = write_frame(stream, &Frame::Drain);
            let _ = stream.flush();
            false
        }
        // Server-to-client frames arriving at the server are a protocol
        // violation: name it, close.
        other @ (Frame::TopK { .. }
        | Frame::Error { .. }
        | Frame::RetryLater { .. }
        | Frame::Pong(_)
        | Frame::StatsJson(_)
        | Frame::MetricsText(_)
        | Frame::DeadlineExceeded { .. }) => {
            bump(shared, peer, |c| c.protocol_errors += 1);
            shared.obs.protocol_errors.inc();
            let _ = write_frame(
                stream,
                &Frame::Error {
                    req_id: 0,
                    code: ErrorCode::Protocol,
                    message: format!(
                        "client sent a server-only frame (type {})",
                        other.type_byte()
                    ),
                },
            );
            false
        }
    }
}
