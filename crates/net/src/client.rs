//! A blocking wire-protocol client: one TCP connection, synchronous
//! request/response.
//!
//! `NetClient` is what the router uses per replica and what the load
//! generator and tests use to talk to a daemon. It is deliberately simple —
//! one in-flight request at a time — because the concurrency story lives
//! server-side (the batching queue coalesces across *connections*, not
//! within one).

use crate::stream::{read_frame_timeout, write_frame};
use crate::wire::{ErrorCode, Frame, PongInfo, PredictRequest, WireError, DEFAULT_MAX_PAYLOAD};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What a request can come back as, beyond a plain answer.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, send, or receive).
    Io(String),
    /// The peer violated the wire protocol.
    Wire(WireError),
    /// The server shed the request; retry after backoff (depth is the
    /// server's queue length at rejection time).
    RetryLater {
        /// Server-side queue depth when the request was shed.
        queue_depth: u32,
    },
    /// The server answered with a typed error frame.
    Server {
        /// Which error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The request's deadline budget ran out before an answer was produced
    /// (the server or router shed it with a typed `DeadlineExceeded` frame).
    DeadlineExceeded,
    /// The peer answered with a well-formed frame that makes no sense here
    /// (wrong `req_id`, wrong frame kind).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::RetryLater { queue_depth } => {
                write!(f, "server shed load (queue depth {queue_depth})")
            }
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::DeadlineExceeded => f.write_str("deadline exceeded"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(kind, msg) => ClientError::Io(format!("{kind:?}: {msg}")),
            other => ClientError::Wire(other),
        }
    }
}

impl ClientError {
    /// True for faults that indicate the *replica* is unhealthy (socket
    /// died, garbage on the wire, server shutting down) as opposed to
    /// faults of the request itself — the router's failover predicate.
    pub fn is_replica_fault(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Wire(_) | ClientError::Protocol(_) => true,
            ClientError::Server { code, .. } => {
                matches!(code, ErrorCode::Unavailable | ErrorCode::Internal)
            }
            // A shed or an exhausted budget says nothing bad about the
            // replica — it answered promptly and honestly.
            ClientError::RetryLater { .. } | ClientError::DeadlineExceeded => false,
        }
    }
}

/// A synchronous wire-protocol connection to one server.
pub struct NetClient {
    stream: TcpStream,
    timeout: Duration,
    max_payload: u32,
    next_req_id: u64,
}

impl NetClient {
    /// Connect with `timeout` applied to the handshake and, subsequently,
    /// to each request/response exchange.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A, timeout: Duration) -> Result<NetClient, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Io(e.to_string()))?
            .next()
            .ok_or_else(|| ClientError::Io("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        // Short socket timeouts + an overall deadline in read_frame_timeout:
        // the poll granularity lets us bound the total wait precisely.
        stream
            .set_read_timeout(Some(Duration::from_millis(20).min(timeout)))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            timeout,
            max_payload: DEFAULT_MAX_PAYLOAD,
            next_req_id: 1,
        })
    }

    /// Override the per-exchange timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
        let _ = self
            .stream
            .set_read_timeout(Some(Duration::from_millis(20).min(timeout)));
        let _ = self.stream.set_write_timeout(Some(timeout));
    }

    fn exchange(&mut self, req: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, req)?;
        Ok(read_frame_timeout(
            &mut self.stream,
            self.max_payload,
            self.timeout,
        )?)
    }

    /// Score one sparse query; returns the top-k class ids.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetryLater`] when shed, [`ClientError::Server`] for
    /// typed server errors, [`ClientError::Io`]/[`ClientError::Wire`] for
    /// transport faults.
    pub fn predict(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<Vec<u32>, ClientError> {
        self.predict_within(indices, values, k, 0)
    }

    /// [`NetClient::predict`] with a deadline budget: `deadline_us` is the
    /// remaining time (µs) the caller will wait for an answer; `0` means no
    /// deadline (and sends a v1 frame). Every hop downstream decrements the
    /// budget and sheds the request with a typed `DeadlineExceeded` frame
    /// once it runs out.
    ///
    /// # Errors
    ///
    /// [`ClientError::DeadlineExceeded`] when a hop shed the request;
    /// otherwise as [`NetClient::predict`].
    pub fn predict_within(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        deadline_us: u64,
    ) -> Result<Vec<u32>, ClientError> {
        self.predict_traced_within(indices, values, k, deadline_us, 0)
    }

    /// [`NetClient::predict_within`] for a traced request: a nonzero
    /// `trace_id` rides a v3 frame and is propagated unchanged through every
    /// hop (router → replica), where each hop records its per-stage spans
    /// under that id. `0` traces nothing and encodes byte-identically to
    /// [`NetClient::predict_within`].
    ///
    /// # Errors
    ///
    /// As [`NetClient::predict_within`].
    pub fn predict_traced_within(
        &mut self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        deadline_us: u64,
        trace_id: u64,
    ) -> Result<Vec<u32>, ClientError> {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        write_frame(
            &mut self.stream,
            &Frame::Predict(PredictRequest {
                req_id,
                k: k as u32,
                deadline_us,
                trace_id,
                indices: indices.to_vec(),
                values: values.to_vec(),
            }),
        )?;
        let started = Instant::now();
        loop {
            let remaining = self
                .timeout
                .checked_sub(started.elapsed())
                .filter(|d| !d.is_zero())
                .ok_or_else(|| {
                    ClientError::Io(format!("TimedOut: no reply to predict #{req_id}"))
                })?;
            let reply = read_frame_timeout(&mut self.stream, self.max_payload, remaining)?;
            // Replies to an *earlier* request on this connection (one the
            // caller already gave up on) are stale: skip them and keep
            // waiting for ours — the req-id is the dedup key.
            let stale = match &reply {
                Frame::TopK { req_id: rid, .. }
                | Frame::RetryLater { req_id: rid, .. }
                | Frame::DeadlineExceeded { req_id: rid }
                | Frame::Error { req_id: rid, .. } => *rid != 0 && *rid < req_id,
                _ => false,
            };
            if stale {
                continue;
            }
            return match reply {
                Frame::TopK { req_id: rid, ids } if rid == req_id => Ok(ids),
                Frame::RetryLater {
                    req_id: rid,
                    queue_depth,
                } if rid == req_id => Err(ClientError::RetryLater { queue_depth }),
                Frame::DeadlineExceeded { req_id: rid } if rid == req_id => {
                    Err(ClientError::DeadlineExceeded)
                }
                Frame::Error {
                    req_id: rid,
                    code,
                    message,
                } if rid == req_id || rid == 0 => Err(ClientError::Server { code, message }),
                other => Err(ClientError::Protocol(format!(
                    "unexpected reply to predict #{req_id}: type {}",
                    other.type_byte()
                ))),
            };
        }
    }

    /// Health-check the server; returns its pong (inflight count, drain
    /// flag, model precision).
    ///
    /// # Errors
    ///
    /// Transport faults, or [`ClientError::Protocol`] on a nonsense reply.
    pub fn ping(&mut self, nonce: u64) -> Result<PongInfo, ClientError> {
        match self.exchange(&Frame::Ping { nonce })? {
            Frame::Pong(info) if info.nonce == nonce => Ok(info),
            Frame::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to ping: type {}",
                other.type_byte()
            ))),
        }
    }

    /// Fetch the server's stats snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Transport faults, or [`ClientError::Protocol`] on a nonsense reply.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        match self.exchange(&Frame::GetStats)? {
            Frame::StatsJson(json) => Ok(json),
            Frame::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to get-stats: type {}",
                other.type_byte()
            ))),
        }
    }

    /// Fetch the server's metrics exposition (Prometheus-style text plus
    /// trace-span comment lines) via a v3 `GetMetrics` frame.
    ///
    /// # Errors
    ///
    /// Transport faults, or [`ClientError::Protocol`] on a nonsense reply.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.exchange(&Frame::GetMetrics)? {
            Frame::MetricsText(text) => Ok(text),
            Frame::Error { code, message, .. } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to get-metrics: type {}",
                other.type_byte()
            ))),
        }
    }

    /// Ask the server to drain (stop accepting, flush, shut down). The
    /// server echoes the drain frame before closing.
    ///
    /// # Errors
    ///
    /// Transport faults, or [`ClientError::Protocol`] on a nonsense reply.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.exchange(&Frame::Drain)? {
            Frame::Drain => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to drain: type {}",
                other.type_byte()
            ))),
        }
    }
}
