//! Open-loop load generation for the network tier.
//!
//! Closed-loop clients (send, wait, send) hide queueing delay: when the
//! server slows down, the offered load politely slows with it and the tail
//! disappears from the measurement (coordinated omission). The generator
//! here is **open-loop**: arrival times are fixed up front on a global
//! schedule (`start + i * interval`) that all client threads pull from a
//! shared atomic counter, so a stalled server faces a growing backlog
//! exactly as a real fleet would, and p99 means what it says.
//!
//! The submitter is abstract (`FnMut(&[u32], &[f32], usize) -> SubmitOutcome`)
//! so the same generator drives an in-process [`slide_serve::BatchingServer`]
//! (the overhead baseline), a single daemon socket, and a router-fronted
//! fleet — the three phases of `net_bench`.

use rand::{rngs::SmallRng, SeedableRng};
use slide_data::{Dataset, Zipf};
use slide_serve::LatencySummary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one submission came back as.
pub enum SubmitOutcome {
    /// Answered with a top-k.
    Ok(Vec<u32>),
    /// Shed by admission control (server or router backpressure).
    RetryLater,
    /// Shed because the request's deadline budget ran out at some hop
    /// (typed `DeadlineExceeded`, distinct from backpressure).
    DeadlineExceeded,
    /// A hard failure: typed server error, transport fault, bad reply.
    HardError(String),
    /// The submitter lost its connection and rebuilt it; the request was
    /// not answered. Counted separately from hard errors so chaos tests can
    /// distinguish "replica died under me" from "wrong answer".
    Reconnected,
}

/// Open-loop run parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Target arrival rate, requests/second (across all clients).
    pub offered_qps: f64,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Concurrent client threads pulling from the shared schedule.
    pub clients: usize,
    /// Top-k width per query.
    pub k: usize,
    /// Zipf exponent for query selection over the test set.
    pub zipf_exponent: f64,
    /// RNG seed for query selection.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            offered_qps: 500.0,
            duration: Duration::from_millis(1500),
            clients: 4,
            k: 5,
            zipf_exponent: 0.9,
            seed: 0x10AD,
        }
    }
}

/// Aggregate results of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests submitted.
    pub sent: u64,
    /// Answered with a top-k.
    pub ok: u64,
    /// Shed with retry-later.
    pub retry_later: u64,
    /// Shed with a typed deadline-exceeded.
    pub deadline_exceeded: u64,
    /// Hard failures (typed errors, transport faults, bad replies).
    pub hard_errors: u64,
    /// Connection rebuilds observed by submitters.
    pub reconnects: u64,
    /// Latency over the `ok` responses (request submitted → answer in hand).
    pub latency: LatencySummary,
    /// The configured arrival rate.
    pub offered_qps: f64,
    /// `ok / elapsed` — what actually got through.
    pub achieved_qps: f64,
    /// Wall-clock elapsed.
    pub duration: Duration,
}

impl LoadReport {
    /// Fraction of sent requests that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.retry_later as f64 / self.sent as f64
        }
    }

    /// Render as a JSON object fragment (one phase of `BENCH_net.json`;
    /// `mode` follows the `BENCH_serve.json` phase idiom).
    pub fn to_json(&self, mode: &str) -> String {
        format!(
            "{{\"mode\":\"{mode}\",\"sent\":{},\"ok\":{},\"retry_later\":{},\
             \"deadline_exceeded\":{},\"hard_errors\":{},\"reconnects\":{},\"shed_rate\":{:.4},\
             \"offered_qps\":{:.1},\"achieved_qps\":{:.1},\"elapsed_ms\":{},\
             \"latency_us\":{{\"p50\":{},\"p99\":{},\"mean\":{:.1},\"max\":{},\"samples\":{}}}}}",
            self.sent,
            self.ok,
            self.retry_later,
            self.deadline_exceeded,
            self.hard_errors,
            self.reconnects,
            self.shed_rate(),
            self.offered_qps,
            self.achieved_qps,
            self.duration.as_millis(),
            self.latency.p50_us,
            self.latency.p99_us,
            self.latency.mean_us,
            self.latency.max_us,
            self.latency.samples,
        )
    }
}

struct ClientTally {
    sent: u64,
    ok: u64,
    retry_later: u64,
    deadline_exceeded: u64,
    hard_errors: u64,
    reconnects: u64,
    latencies_us: Vec<u64>,
}

/// Run an open-loop load test.
///
/// `make_submitter(client_id)` builds one submitter per client thread (for
/// sockets: one connection each). Queries are drawn Zipf-distributed from
/// `queries` (a pre-extracted `(indices, values)` battery, typically a
/// dataset's test split).
pub fn run_open_loop<S, F>(
    queries: &[(Vec<u32>, Vec<f32>)],
    cfg: &LoadgenConfig,
    make_submitter: F,
) -> LoadReport
where
    S: FnMut(&[u32], &[f32], usize) -> SubmitOutcome + Send,
    F: Fn(usize) -> S + Sync,
{
    assert!(!queries.is_empty(), "loadgen needs at least one query");
    assert!(cfg.clients > 0, "loadgen needs at least one client");
    let interval = Duration::from_secs_f64(1.0 / cfg.offered_qps.max(1.0));
    let total: u64 = (cfg.duration.as_secs_f64() * cfg.offered_qps).ceil() as u64;
    let arrivals = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client_id| {
                let arrivals = Arc::clone(&arrivals);
                let make_submitter = &make_submitter;
                scope.spawn(move || {
                    let mut submit = make_submitter(client_id);
                    let zipf = Zipf::new(queries.len(), cfg.zipf_exponent);
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed ^ (client_id as u64).wrapping_mul(0x9E37_79B9),
                    );
                    let mut tally = ClientTally {
                        sent: 0,
                        ok: 0,
                        retry_later: 0,
                        deadline_exceeded: 0,
                        hard_errors: 0,
                        reconnects: 0,
                        latencies_us: Vec::new(),
                    };
                    loop {
                        let i = arrivals.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        // Open loop: wait until this arrival's scheduled
                        // instant, however far behind the server is.
                        let due = start + interval.mul_f64(i as f64);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let q = zipf.sample(&mut rng);
                        let (ref indices, ref values) = queries[q % queries.len()];
                        let t0 = Instant::now();
                        tally.sent += 1;
                        match submit(indices, values, cfg.k) {
                            SubmitOutcome::Ok(_) => {
                                tally.ok += 1;
                                tally.latencies_us.push(t0.elapsed().as_micros() as u64);
                            }
                            SubmitOutcome::RetryLater => tally.retry_later += 1,
                            SubmitOutcome::DeadlineExceeded => tally.deadline_exceeded += 1,
                            SubmitOutcome::HardError(_) => tally.hard_errors += 1,
                            SubmitOutcome::Reconnected => tally.reconnects += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut latencies = Vec::new();
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        retry_later: 0,
        deadline_exceeded: 0,
        hard_errors: 0,
        reconnects: 0,
        latency: LatencySummary::from_unsorted(Vec::new()),
        offered_qps: cfg.offered_qps,
        achieved_qps: 0.0,
        duration: elapsed,
    };
    for mut t in tallies {
        report.sent += t.sent;
        report.ok += t.ok;
        report.retry_later += t.retry_later;
        report.deadline_exceeded += t.deadline_exceeded;
        report.hard_errors += t.hard_errors;
        report.reconnects += t.reconnects;
        latencies.append(&mut t.latencies_us);
    }
    report.latency = LatencySummary::from_unsorted(latencies);
    report.achieved_qps = report.ok as f64 / elapsed.as_secs_f64().max(1e-9);
    report
}

/// Extract a query battery (`(indices, values)` pairs) from a dataset's
/// samples — the common prep step for every load phase.
pub fn query_battery(data: &Dataset, limit: usize) -> Vec<(Vec<u32>, Vec<f32>)> {
    (0..data.len().min(limit))
        .map(|i| {
            let x = data.features(i);
            (x.indices.to_vec(), x.values.to_vec())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_counts_every_arrival_exactly_once() {
        let queries = vec![(vec![1u32, 2], vec![0.5f32, 0.25])];
        let cfg = LoadgenConfig {
            offered_qps: 2000.0,
            duration: Duration::from_millis(100),
            clients: 3,
            ..Default::default()
        };
        let report = run_open_loop(&queries, &cfg, |_| {
            |_i: &[u32], _v: &[f32], _k: usize| SubmitOutcome::Ok(vec![0])
        });
        let expected = (cfg.duration.as_secs_f64() * cfg.offered_qps).ceil() as u64;
        assert_eq!(report.sent, expected);
        assert_eq!(report.ok, expected);
        assert_eq!(report.hard_errors, 0);
        assert_eq!(report.latency.samples, expected);
        assert!(report.to_json("inproc").contains("\"mode\":\"inproc\""));
    }

    #[test]
    fn shed_rate_reflects_retry_later_fraction() {
        let queries = vec![(vec![3u32], vec![1.0f32])];
        let cfg = LoadgenConfig {
            offered_qps: 1000.0,
            duration: Duration::from_millis(100),
            clients: 1,
            ..Default::default()
        };
        let report = run_open_loop(&queries, &cfg, |_| {
            let mut n = 0u64;
            move |_i: &[u32], _v: &[f32], _k: usize| {
                n += 1;
                if n.is_multiple_of(2) {
                    SubmitOutcome::RetryLater
                } else {
                    SubmitOutcome::Ok(vec![1])
                }
            }
        });
        assert!(report.retry_later > 0);
        assert!((report.shed_rate() - 0.5).abs() < 0.1);
        let json = report.to_json("socket1");
        assert!(json.contains("\"shed_rate\":"));
        assert!(json.contains("\"retry_later\":"));
    }
}
