//! Deterministic fault injection at the frame boundary: a TCP proxy that
//! sits between a wire-protocol client and server and applies a seeded
//! [`FaultPlan`] — delay, drop, corrupt, stall, or close, per direction,
//! triggered on specific frames.
//!
//! The proxy understands just enough of the wire format to find frame
//! boundaries ([`crate::wire::FrameHeader`] + payload), so faults land on
//! *whole frames*: a dropped frame vanishes cleanly, a corrupted frame
//! fails its CRC downstream, a stalled frame reproduces a slow-loris peer
//! (half the bytes, a pause, then the rest). Every decision is a pure
//! function of `(plan seed, connection, direction, frame number)` — rerun
//! the same scenario and the same frames are hit, which is what makes the
//! chaos suite debuggable instead of flaky.
//!
//! ```text
//! client ──▶ FaultProxy ──▶ server      (client_to_server rules)
//! client ◀── FaultProxy ◀── server      (server_to_client rules)
//! ```

use crate::wire::{FrameHeader, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use slide_obs::{Counter, ObsHub};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do to a triggered frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Hold the whole frame for this long, then forward it intact.
    Delay(Duration),
    /// Swallow the frame entirely.
    Drop,
    /// Flip one payload byte (seeded position) so the downstream CRC
    /// check rejects the frame as a typed `ChecksumMismatch`.
    Corrupt,
    /// Slow-loris: forward half the frame's bytes, pause this long, then
    /// forward the rest.
    Stall(Duration),
    /// Shut the connection down mid-stream.
    Close,
}

/// When a rule fires, counted per connection and direction (frame numbers
/// start at 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Exactly the `n`-th frame.
    Nth(u64),
    /// Every `n`-th frame (n, 2n, 3n, ...).
    EveryNth(u64),
    /// Each frame independently with probability `p`, decided by the
    /// plan's seed — deterministic for a given (seed, connection, frame).
    Probability(f64),
    /// Every frame.
    Always,
}

/// One trigger → action pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// When the rule fires.
    pub trigger: Trigger,
    /// What happens to the frame.
    pub action: FaultAction,
}

/// Which way a frame is travelling through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Requests: client → server.
    ClientToServer,
    /// Replies: server → client.
    ServerToClient,
}

/// A seeded, per-direction fault schedule. The first matching rule wins.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic triggers and corrupt-byte positions.
    pub seed: u64,
    /// Rules applied to frames flowing client → server.
    pub client_to_server: Vec<FaultRule>,
    /// Rules applied to frames flowing server → client.
    pub server_to_client: Vec<FaultRule>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform fraction in [0, 1).
fn unit_fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// The action (if any) for frame `frame_n` (1-based) on connection
    /// `conn` in `dir`. Pure: same inputs, same verdict.
    pub fn decide(&self, dir: Direction, conn: u64, frame_n: u64) -> Option<FaultAction> {
        let rules = match dir {
            Direction::ClientToServer => &self.client_to_server,
            Direction::ServerToClient => &self.server_to_client,
        };
        let dir_bit = match dir {
            Direction::ClientToServer => 0u64,
            Direction::ServerToClient => 1u64,
        };
        rules
            .iter()
            .find(|rule| match rule.trigger {
                Trigger::Nth(n) => frame_n == n,
                Trigger::EveryNth(n) => n > 0 && frame_n.is_multiple_of(n),
                Trigger::Probability(p) => {
                    let h = splitmix64(self.seed ^ splitmix64(conn) ^ (frame_n << 1) ^ dir_bit);
                    unit_fraction(h) < p
                }
                Trigger::Always => true,
            })
            .map(|rule| rule.action)
    }

    /// Seeded position of the byte [`FaultAction::Corrupt`] flips within
    /// a frame's payload (or within the header CRC field when the payload
    /// is empty).
    fn corrupt_pos(&self, conn: u64, frame_n: u64, payload_len: usize) -> usize {
        let h = splitmix64(self.seed ^ conn.rotate_left(17) ^ frame_n);
        if payload_len == 0 {
            // No payload bytes to flip: damage the CRC field instead so
            // the mismatch is still a payload-integrity failure.
            HEADER_LEN - 4 + (h as usize % 4)
        } else {
            HEADER_LEN + (h as usize % payload_len)
        }
    }
}

/// Monotonic counters for every fault the proxy applied (plus clean
/// forwards), drained via [`FaultProxy::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames forwarded untouched.
    pub forwarded: u64,
    /// Frames delayed then forwarded.
    pub delayed: u64,
    /// Frames swallowed.
    pub dropped: u64,
    /// Frames forwarded with a flipped byte.
    pub corrupted: u64,
    /// Frames forwarded with a mid-frame pause.
    pub stalled: u64,
    /// Connections closed mid-stream by rule.
    pub closed: u64,
}

/// Registry-backed fault counters: each proxy owns a hub, so chaos runs can
/// be scraped like any serving tier (`slide_fault_*_total` families).
struct StatsInner {
    hub: Arc<ObsHub>,
    forwarded: Arc<Counter>,
    delayed: Arc<Counter>,
    dropped: Arc<Counter>,
    corrupted: Arc<Counter>,
    stalled: Arc<Counter>,
    closed: Arc<Counter>,
}

impl StatsInner {
    fn new(hub: Arc<ObsHub>) -> Self {
        let r = hub.registry();
        StatsInner {
            forwarded: r.counter("slide_fault_forwarded_total"),
            delayed: r.counter("slide_fault_delayed_total"),
            dropped: r.counter("slide_fault_dropped_total"),
            corrupted: r.counter("slide_fault_corrupted_total"),
            stalled: r.counter("slide_fault_stalled_total"),
            closed: r.counter("slide_fault_closed_total"),
            hub,
        }
    }
}

struct ProxyShared {
    plan: FaultPlan,
    upstream: SocketAddr,
    stop: AtomicBool,
    stats: StatsInner,
    pumps: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A frame-aware TCP fault injector: accepts on an OS-assigned loopback
/// port, proxies to `upstream`, applies the plan. Dropping it closes the
/// listener and joins every pump thread.
pub struct FaultProxy {
    shared: Arc<ProxyShared>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Bind a loopback port and start proxying to `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Any bind/spawn failure, as `std::io::Error`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            plan,
            upstream,
            stop: AtomicBool::new(false),
            stats: StatsInner::new(ObsHub::shared()),
            pumps: parking_lot::Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-fault-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(FaultProxy {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The proxy's listening address — point clients (or the router) here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        let s = &self.shared.stats;
        FaultStats {
            forwarded: s.forwarded.get(),
            delayed: s.delayed.get(),
            dropped: s.dropped.get(),
            corrupted: s.corrupted.get(),
            stalled: s.stalled.get(),
            closed: s.closed.get(),
        }
    }

    /// The proxy's observability hub (for scraping `slide_fault_*` series).
    pub fn obs(&self) -> Arc<ObsHub> {
        Arc::clone(&self.shared.stats.hub)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let pumps: Vec<_> = self.shared.pumps.lock().drain(..).collect();
        for h in pumps {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    let mut conn_n = 0u64;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((downstream, _)) => {
                conn_n += 1;
                let conn_seed = splitmix64(shared.plan.seed ^ conn_n);
                let upstream =
                    match TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(1)) {
                        Ok(s) => s,
                        Err(_) => continue, // refused upstream = dropped conn
                    };
                let pair = [
                    (
                        Direction::ClientToServer,
                        downstream.try_clone(),
                        upstream.try_clone(),
                    ),
                    (Direction::ServerToClient, Ok(upstream), Ok(downstream)),
                ];
                for (dir, from, to) in pair {
                    let (Ok(from), Ok(to)) = (from, to) else {
                        continue;
                    };
                    let shared2 = Arc::clone(shared);
                    let handle = std::thread::Builder::new()
                        .name("slide-fault-pump".into())
                        .spawn(move || pump(&shared2, dir, conn_seed, from, to));
                    if let Ok(h) = handle {
                        let mut pumps = shared.pumps.lock();
                        pumps.retain(|p| !p.is_finished());
                        pumps.push(h);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Fill `buf` from a socket whose read timeout is the poll interval,
/// checking the stop flag between polls. `Ok(false)` = clean EOF before
/// any byte of `buf`.
fn read_full(
    shared: &ProxyShared,
    stream: &mut TcpStream,
    buf: &mut [u8],
) -> std::io::Result<bool> {
    let mut got = 0usize;
    while got < buf.len() {
        if shared.stop.load(Ordering::Acquire) {
            return Err(std::io::ErrorKind::Interrupted.into());
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Shovel whole frames `from` → `to`, applying the plan's rules for `dir`.
fn pump(
    shared: &Arc<ProxyShared>,
    dir: Direction,
    conn_seed: u64,
    mut from: TcpStream,
    mut to: TcpStream,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = to.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = to.set_nodelay(true);
    let mut frame_n = 0u64;
    let close_both = |a: &TcpStream, b: &TcpStream| {
        let _ = a.shutdown(std::net::Shutdown::Both);
        let _ = b.shutdown(std::net::Shutdown::Both);
    };
    loop {
        let mut header = [0u8; HEADER_LEN];
        match read_full(shared, &mut from, &mut header) {
            Ok(true) => {}
            // Clean EOF: propagate the half-close downstream so the peer
            // sees exactly what the origin did.
            Ok(false) | Err(_) => {
                close_both(&from, &to);
                return;
            }
        }
        // Frame boundary discovery only — a header the codec rejects is
        // forwarded verbatim and the downstream peer raises the error.
        let payload_len = match FrameHeader::parse(&header, DEFAULT_MAX_PAYLOAD) {
            Ok(h) => h.payload_len as usize,
            Err(_) => {
                if to.write_all(&header).is_err() {
                    close_both(&from, &to);
                    return;
                }
                continue;
            }
        };
        let mut frame = header.to_vec();
        frame.resize(HEADER_LEN + payload_len, 0);
        if !matches!(
            read_full(shared, &mut from, &mut frame[HEADER_LEN..]),
            Ok(true)
        ) {
            close_both(&from, &to);
            return;
        }
        frame_n += 1;
        let action = shared.plan.decide(dir, conn_seed, frame_n);
        let stats = &shared.stats;
        let wrote = match action {
            None => {
                stats.forwarded.inc();
                to.write_all(&frame)
            }
            Some(FaultAction::Delay(d)) => {
                stats.delayed.inc();
                std::thread::sleep(d);
                to.write_all(&frame)
            }
            Some(FaultAction::Drop) => {
                stats.dropped.inc();
                Ok(())
            }
            Some(FaultAction::Corrupt) => {
                stats.corrupted.inc();
                let pos = shared.plan.corrupt_pos(conn_seed, frame_n, payload_len);
                frame[pos] ^= 0xFF;
                to.write_all(&frame)
            }
            Some(FaultAction::Stall(d)) => {
                stats.stalled.inc();
                let half = frame.len() / 2;
                to.write_all(&frame[..half])
                    .and_then(|()| to.flush())
                    .map(|()| std::thread::sleep(d))
                    .and_then(|()| to.write_all(&frame[half..]))
            }
            Some(FaultAction::Close) => {
                stats.closed.inc();
                close_both(&from, &to);
                return;
            }
        };
        if wrote.is_err() || to.flush().is_err() {
            close_both(&from, &to);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_and_first_match_wins() {
        let plan = FaultPlan {
            seed: 9,
            client_to_server: vec![
                FaultRule {
                    trigger: Trigger::Nth(3),
                    action: FaultAction::Drop,
                },
                FaultRule {
                    trigger: Trigger::Always,
                    action: FaultAction::Corrupt,
                },
            ],
            server_to_client: vec![],
        };
        // First matching rule wins; later frames fall through to Always.
        assert_eq!(
            plan.decide(Direction::ClientToServer, 1, 3),
            Some(FaultAction::Drop)
        );
        assert_eq!(
            plan.decide(Direction::ClientToServer, 1, 4),
            Some(FaultAction::Corrupt)
        );
        // The other direction has no rules.
        assert_eq!(plan.decide(Direction::ServerToClient, 1, 3), None);
        // Re-asking gives the same verdict.
        assert_eq!(
            plan.decide(Direction::ClientToServer, 1, 3),
            plan.decide(Direction::ClientToServer, 1, 3)
        );
    }

    #[test]
    fn probability_trigger_is_seeded_and_roughly_calibrated() {
        let plan = FaultPlan {
            seed: 1234,
            client_to_server: vec![FaultRule {
                trigger: Trigger::Probability(0.25),
                action: FaultAction::Drop,
            }],
            server_to_client: vec![],
        };
        let hits = (1..=4000u64)
            .filter(|&n| plan.decide(Direction::ClientToServer, 7, n).is_some())
            .count();
        // ~1000 expected; a generous band keeps this robust to any seed.
        assert!((600..1400).contains(&hits), "hit rate off: {hits}/4000");
        // Same seed, same schedule; different connection, different one.
        let again = (1..=4000u64)
            .filter(|&n| plan.decide(Direction::ClientToServer, 7, n).is_some())
            .count();
        assert_eq!(hits, again);
        let other_conn: Vec<u64> = (1..=100u64)
            .filter(|&n| plan.decide(Direction::ClientToServer, 8, n).is_some())
            .collect();
        let this_conn: Vec<u64> = (1..=100u64)
            .filter(|&n| plan.decide(Direction::ClientToServer, 7, n).is_some())
            .collect();
        assert_ne!(other_conn, this_conn);
    }

    #[test]
    fn every_nth_trigger_hits_multiples_only() {
        let plan = FaultPlan {
            seed: 0,
            client_to_server: vec![],
            server_to_client: vec![FaultRule {
                trigger: Trigger::EveryNth(3),
                action: FaultAction::Stall(Duration::from_millis(1)),
            }],
        };
        let hit: Vec<u64> = (1..=9u64)
            .filter(|&n| plan.decide(Direction::ServerToClient, 1, n).is_some())
            .collect();
        assert_eq!(hit, vec![3, 6, 9]);
    }

    #[test]
    fn corrupt_pos_lands_in_payload_or_crc() {
        let plan = FaultPlan {
            seed: 5,
            ..Default::default()
        };
        for frame_n in 1..50 {
            let pos = plan.corrupt_pos(3, frame_n, 40);
            assert!((HEADER_LEN..HEADER_LEN + 40).contains(&pos));
            let pos0 = plan.corrupt_pos(3, frame_n, 0);
            assert!((HEADER_LEN - 4..HEADER_LEN).contains(&pos0));
        }
    }
}
