//! `slide_router`: a wire-protocol proxy that spreads predict traffic
//! across N replica daemons with circuit breakers, hedged failover, and
//! end-to-end deadline propagation.
//!
//! The router speaks the same frame protocol on both sides: clients connect
//! to it exactly as they would to a single `slide_netd`, and it forwards
//! each predict to a replica over a per-connection cached [`NetClient`].
//! Because the serving salt is content-derived (`slide_serve::query_salt`),
//! any replica of the same snapshot returns a bit-identical answer — which
//! is what makes transparent failover *and hedging* sound: whichever
//! attempt answers first, the bytes are the same.
//!
//! **Circuit breakers:** each replica has a three-state breaker.
//! *Closed* routes traffic; `eject_after` consecutive failures (pings or
//! forwards) trip it *Open*, which suppresses both traffic and pings for
//! an exponentially growing, jittered backoff (`breaker_backoff` doubling
//! per consecutive open, capped at `breaker_max_backoff`); when the
//! backoff elapses the breaker goes *HalfOpen* and the next health ping is
//! the probe — success closes the breaker, failure reopens it with a
//! longer backoff. The backoff keeps a dead replica from eating a
//! connect-timeout per health cycle; the jitter keeps many routers from
//! probing in lockstep.
//!
//! **Hedging:** once a forward has been in flight for a fraction of its
//! remaining deadline budget (`hedge_fraction`, or a fixed `hedge_delay`
//! for deadline-free requests), the router issues the same request to a
//! second closed-breaker replica and takes whichever answer lands first,
//! deduplicating by req-id. Tail latency becomes the *minimum* of two
//! samples instead of one. Replica faults still trigger immediate
//! failover; `RetryLater` and request errors pass through untouched —
//! they are verdicts about load and about the request, not the replica.
//!
//! **Deadlines:** a v2 predict carries `deadline_us`, the remaining budget
//! granted by the client. The router anchors it to its own receive clock,
//! sheds already-expired requests with a typed `DeadlineExceeded` frame
//! before touching any replica, forwards the *decremented* budget on each
//! attempt, and abandons all in-flight attempts the moment the budget runs
//! out — the forwarded budgets make the replicas shed the stragglers
//! themselves, so a hedged pair dies as a pair.

use crate::client::{ClientError, NetClient};
use crate::server::NetConfig;
use crate::stream::{read_frame, write_frame, ReadOutcome};
use crate::wire::{ErrorCode, Frame, PongInfo, PredictRequest, WireError};
use parking_lot::Mutex;
use slide_obs::{Counter, Gauge, Histogram, ObsHub, Stage};
use slide_serve::stage_histogram;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How the router picks a replica for a predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Fewest in-flight forwards among healthy replicas (power of all
    /// choices — replica counts are small).
    LeastLoad,
    /// Hash the query's feature indices onto a 64-vnode-per-replica ring;
    /// walk clockwise to the first healthy replica. Keeps a given query on
    /// a stable replica (cache/NUMA affinity) with minimal disruption when
    /// replicas come and go.
    ConsistentHash,
}

/// Router tunables.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Replica-selection policy.
    pub policy: RoutePolicy,
    /// Health-ping period.
    pub health_interval: Duration,
    /// Per-attempt request timeout.
    pub request_timeout: Duration,
    /// TCP connect timeout toward replicas.
    pub connect_timeout: Duration,
    /// Consecutive failures (pings or forwards) before the breaker opens.
    pub eject_after: u32,
    /// Whether to hedge slow forwards onto a second replica.
    pub hedge: bool,
    /// With a deadline: hedge once this fraction of the remaining budget
    /// has elapsed without an answer.
    pub hedge_fraction: f64,
    /// Without a deadline: hedge after this fixed delay.
    pub hedge_delay: Duration,
    /// Base backoff for a freshly opened breaker (doubles per consecutive
    /// open).
    pub breaker_backoff: Duration,
    /// Ceiling on the exponential breaker backoff.
    pub breaker_max_backoff: Duration,
    /// Listener-side socket knobs.
    pub net: NetConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            policy: RoutePolicy::LeastLoad,
            health_interval: Duration::from_millis(200),
            request_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            eject_after: 2,
            hedge: true,
            hedge_fraction: 0.5,
            hedge_delay: Duration::from_millis(50),
            breaker_backoff: Duration::from_millis(200),
            breaker_max_backoff: Duration::from_secs(5),
            net: NetConfig::default(),
        }
    }
}

/// Most attempts one predict may fan out to: primary + hedge + one
/// failover.
const MAX_ATTEMPTS: usize = 3;

/// The three-state circuit breaker guarding one replica.
#[derive(Debug, Clone, Copy)]
enum Breaker {
    /// Routing traffic; `fails` consecutive failures so far.
    Closed { fails: u32 },
    /// Ejected: no traffic, no pings until `until`.
    Open { until: Instant, streak: u32 },
    /// Backoff elapsed: the next ping is the probe.
    HalfOpen { streak: u32 },
}

/// Exponential backoff for the `streak`-th consecutive open, with a
/// deterministic ±25% jitter keyed on (replica, streak) so probes
/// desynchronize without an RNG.
fn breaker_backoff(cfg: &RouterConfig, idx: usize, streak: u32) -> Duration {
    let exp = streak.saturating_sub(1).min(16);
    let base = cfg
        .breaker_backoff
        .saturating_mul(1u32 << exp)
        .min(cfg.breaker_max_backoff);
    let h = splitmix64(((idx as u64) << 32) ^ u64::from(streak));
    let frac = 0.75 + ((h >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
    base.mul_f64(frac)
}

/// Breaker states as gauge values for `slide_router_breaker_state`.
const BREAKER_CLOSED: u64 = 0;
const BREAKER_HALF_OPEN: u64 = 1;
const BREAKER_OPEN: u64 = 2;

/// One replica's live state, shared between the health thread and every
/// connection thread. The lifetime counters are registry instruments
/// labeled `{replica="ip:port"}`, so one scrape shows the whole fleet's
/// breaker history; the JSON stats view reads the same instruments.
struct ReplicaState {
    idx: usize,
    addr: SocketAddr,
    breaker: Mutex<Breaker>,
    inflight: AtomicUsize,
    forwarded: Arc<Counter>,
    failed: Arc<Counter>,
    /// Closed/HalfOpen → Open transitions (the "ejections" of the
    /// pre-breaker router).
    opens: Arc<Counter>,
    /// Open → HalfOpen probe admissions.
    half_opens: Arc<Counter>,
    /// → Closed recoveries (the "readmissions" of the pre-breaker router).
    closes: Arc<Counter>,
    /// Live breaker state (0 closed, 1 half-open, 2 open), updated at every
    /// transition.
    breaker_state: Arc<Gauge>,
}

impl ReplicaState {
    fn new(idx: usize, addr: SocketAddr, hub: &ObsHub) -> ReplicaState {
        let label = addr.to_string();
        let labels: &[(&str, &str)] = &[("replica", &label)];
        let r = hub.registry();
        ReplicaState {
            idx,
            addr,
            breaker: Mutex::new(Breaker::Closed { fails: 0 }),
            inflight: AtomicUsize::new(0),
            forwarded: r.counter_with("slide_router_forwarded_total", labels),
            failed: r.counter_with("slide_router_failed_total", labels),
            opens: r.counter_with("slide_router_breaker_opens_total", labels),
            half_opens: r.counter_with("slide_router_breaker_half_opens_total", labels),
            closes: r.counter_with("slide_router_breaker_closes_total", labels),
            breaker_state: r.gauge_with("slide_router_breaker_state", labels),
        }
    }

    /// Closed-breaker replicas are the only ones that receive traffic.
    fn available(&self) -> bool {
        matches!(*self.breaker.lock(), Breaker::Closed { .. })
    }

    fn breaker_view(&self) -> (&'static str, bool) {
        match *self.breaker.lock() {
            Breaker::Closed { .. } => ("closed", true),
            Breaker::Open { .. } => ("open", false),
            Breaker::HalfOpen { .. } => ("half_open", false),
        }
    }

    /// Any successful exchange closes the breaker and clears the failure
    /// run (a half-open probe succeeding is the canonical path).
    fn record_success(&self) {
        let mut b = self.breaker.lock();
        if !matches!(*b, Breaker::Closed { .. }) {
            self.closes.inc();
        }
        *b = Breaker::Closed { fails: 0 };
        self.breaker_state.set(BREAKER_CLOSED);
    }

    fn record_failure(&self, cfg: &RouterConfig) {
        self.failed.inc();
        let mut b = self.breaker.lock();
        *b = match *b {
            Breaker::Closed { fails } => {
                let fails = fails + 1;
                if fails >= cfg.eject_after {
                    self.opens.inc();
                    self.breaker_state.set(BREAKER_OPEN);
                    Breaker::Open {
                        until: Instant::now() + breaker_backoff(cfg, self.idx, 1),
                        streak: 1,
                    }
                } else {
                    Breaker::Closed { fails }
                }
            }
            // A failed probe reopens with a longer backoff.
            Breaker::HalfOpen { streak } => {
                let streak = streak.saturating_add(1);
                self.opens.inc();
                self.breaker_state.set(BREAKER_OPEN);
                Breaker::Open {
                    until: Instant::now() + breaker_backoff(cfg, self.idx, streak),
                    streak,
                }
            }
            // A straggling in-flight failure while already open changes
            // nothing.
            open @ Breaker::Open { .. } => open,
        };
    }

    /// Whether the health loop should ping this replica now. An open
    /// breaker suppresses pings until its backoff elapses; the first
    /// ping after the transition to half-open *is* the probe.
    fn probe_due(&self, now: Instant) -> bool {
        let mut b = self.breaker.lock();
        match *b {
            Breaker::Closed { .. } | Breaker::HalfOpen { .. } => true,
            Breaker::Open { until, streak } => {
                if now >= until {
                    self.half_opens.inc();
                    self.breaker_state.set(BREAKER_HALF_OPEN);
                    *b = Breaker::HalfOpen { streak };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Open the breaker directly (startup probe failure).
    fn force_open(&self, cfg: &RouterConfig) {
        let mut b = self.breaker.lock();
        if !matches!(*b, Breaker::Open { .. }) {
            self.opens.inc();
        }
        self.breaker_state.set(BREAKER_OPEN);
        *b = Breaker::Open {
            until: Instant::now() + breaker_backoff(cfg, self.idx, 1),
            streak: 1,
        };
    }
}

/// Router-level instruments plus the router's own trace ring.
struct RouterObs {
    hub: Arc<ObsHub>,
    /// Hedged (backup) attempts launched.
    hedges: Arc<Counter>,
    /// Hedged attempts that produced the winning answer.
    hedge_wins: Arc<Counter>,
    /// Failover attempts launched after a replica fault.
    failovers: Arc<Counter>,
    /// Requests shed at the router with a typed `DeadlineExceeded`.
    deadline_exceeded: Arc<Counter>,
    /// Time from frame receipt to the first replica attempt launching.
    stage_router_queue: Arc<Histogram>,
    /// Time a to-be-hedged request waited before its hedge launched.
    stage_hedge_wait: Arc<Histogram>,
}

impl RouterObs {
    fn new(hub: Arc<ObsHub>) -> Self {
        let r = hub.registry();
        RouterObs {
            hedges: r.counter("slide_router_hedges_total"),
            hedge_wins: r.counter("slide_router_hedge_wins_total"),
            failovers: r.counter("slide_router_failovers_total"),
            deadline_exceeded: r.counter("slide_router_deadline_exceeded_total"),
            stage_router_queue: stage_histogram(&hub, Stage::RouterQueue),
            stage_hedge_wait: stage_histogram(&hub, Stage::HedgeWait),
            hub,
        }
    }
}

struct RouterShared {
    cfg: RouterConfig,
    obs: RouterObs,
    replicas: Vec<ReplicaState>,
    ring: Vec<(u64, usize)>,
    local_addr: SocketAddr,
    draining: AtomicBool,
    conn_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

const VNODES_PER_REPLICA: u64 = 64;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Build the consistent-hash ring: 64 virtual nodes per replica, positions
/// derived from (replica index, vnode index) so the ring is identical
/// across router restarts.
fn build_ring(n_replicas: usize) -> Vec<(u64, usize)> {
    let mut ring = Vec::with_capacity(n_replicas * VNODES_PER_REPLICA as usize);
    for r in 0..n_replicas {
        for v in 0..VNODES_PER_REPLICA {
            ring.push((splitmix64(((r as u64) << 32) | (v + 1)), r));
        }
    }
    ring.sort_unstable();
    ring
}

/// Hash a query's feature indices to a ring position.
fn query_ring_key(indices: &[u32]) -> u64 {
    let mut h = 0x5151_5151_5151_5151u64;
    for &i in indices {
        h = splitmix64(h ^ u64::from(i));
    }
    h
}

/// Walk the ring from `key` to the first replica passing `is_ok`.
fn ring_pick(ring: &[(u64, usize)], key: u64, is_ok: impl Fn(usize) -> bool) -> Option<usize> {
    if ring.is_empty() {
        return None;
    }
    let start = ring.partition_point(|&(pos, _)| pos < key);
    for off in 0..ring.len() {
        let (_, r) = ring[(start + off) % ring.len()];
        if is_ok(r) {
            return Some(r);
        }
    }
    None
}

/// The fleet front-end. Dropping it drains the listener and joins all
/// threads (replica daemons are left running — they are other processes'
/// responsibility).
pub struct Router {
    shared: Arc<RouterShared>,
    accept: Option<std::thread::JoinHandle<()>>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Bind `addr`, probe every replica once (synchronously, bounded by
    /// the connect timeout — a dead replica must not receive the first
    /// wave of traffic on an optimistic default), and start routing to
    /// `replicas`.
    ///
    /// # Errors
    ///
    /// Any bind/spawn failure, as `std::io::Error`.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        replicas: &[SocketAddr],
        cfg: RouterConfig,
    ) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let obs = RouterObs::new(ObsHub::shared());
        let shared = Arc::new(RouterShared {
            replicas: replicas
                .iter()
                .enumerate()
                .map(|(idx, &addr)| ReplicaState::new(idx, addr, &obs.hub))
                .collect(),
            obs,
            ring: build_ring(replicas.len()),
            cfg,
            local_addr,
            draining: AtomicBool::new(false),
            conn_handles: Mutex::new(Vec::new()),
        });
        // Startup probes run concurrently so the slowest dead replica
        // costs one connect timeout total, not one per replica.
        std::thread::scope(|scope| {
            for rep in &shared.replicas {
                scope.spawn(|| {
                    let ok = NetClient::connect(rep.addr, shared.cfg.connect_timeout)
                        .and_then(|mut c| {
                            c.set_timeout(shared.cfg.request_timeout);
                            c.ping(u64::from(rep.idx as u32) + 1)
                        })
                        .map(|info| !info.draining)
                        .unwrap_or(false);
                    if ok {
                        rep.record_success();
                    } else {
                        rep.force_open(&shared.cfg);
                    }
                });
            }
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-router-accept".into())
                .spawn(move || router_accept_loop(&listener, &shared))?
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-router-health".into())
                .spawn(move || health_loop(&shared))?
        };
        Ok(Router {
            shared,
            accept: Some(accept),
            health: Some(health),
        })
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Whether a drain has been requested (by [`Router::drain`] or a
    /// client's `Drain` frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// How many replicas currently have a closed breaker.
    pub fn healthy_replicas(&self) -> usize {
        self.shared
            .replicas
            .iter()
            .filter(|r| r.available())
            .count()
    }

    /// Per-replica counters as a JSON object (the router's `GetStats`
    /// response).
    pub fn stats_json(&self) -> String {
        router_stats_json(&self.shared)
    }

    /// The router's observability hub (registry + trace ring) — the same
    /// one a wire `GetMetrics` renders.
    pub fn obs(&self) -> Arc<ObsHub> {
        Arc::clone(&self.shared.obs.hub)
    }

    /// The router's metrics exposition (the `GetMetrics` response body).
    pub fn metrics_text(&self) -> String {
        router_metrics_text(&self.shared)
    }

    /// Stop accepting and join every thread.
    pub fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        loop {
            let handles: Vec<_> = self.shared.conn_handles.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.drain();
    }
}

fn router_stats_json(shared: &RouterShared) -> String {
    let reps: Vec<String> = shared
        .replicas
        .iter()
        .map(|r| {
            let (breaker, healthy) = r.breaker_view();
            format!(
                "{{\"addr\":\"{}\",\"healthy\":{},\"breaker\":\"{}\",\"inflight\":{},\
                 \"forwarded\":{},\"failed\":{},\"ejections\":{},\"half_opens\":{},\
                 \"readmissions\":{}}}",
                r.addr,
                healthy,
                breaker,
                r.inflight.load(Ordering::Relaxed),
                r.forwarded.get(),
                r.failed.get(),
                r.opens.get(),
                r.half_opens.get(),
                r.closes.get(),
            )
        })
        .collect();
    let healthy = shared.replicas.iter().filter(|r| r.available()).count();
    format!(
        "{{\"role\":\"router\",\"policy\":\"{}\",\"replicas\":{},\"healthy\":{},\
         \"hedges\":{},\"hedge_wins\":{},\"failovers\":{},\"deadline_exceeded\":{},\
         \"replica_stats\":[{}]}}",
        match shared.cfg.policy {
            RoutePolicy::LeastLoad => "least_load",
            RoutePolicy::ConsistentHash => "consistent_hash",
        },
        shared.replicas.len(),
        healthy,
        shared.obs.hedges.get(),
        shared.obs.hedge_wins.get(),
        shared.obs.failovers.get(),
        shared.obs.deadline_exceeded.get(),
        reps.join(",")
    )
}

/// Render the router's exposition. Breaker-state gauges are refreshed from
/// the live breakers first, so a scrape never shows a stale state for a
/// breaker that transitioned without traffic.
fn router_metrics_text(shared: &RouterShared) -> String {
    for r in &shared.replicas {
        let state = match *r.breaker.lock() {
            Breaker::Closed { .. } => BREAKER_CLOSED,
            Breaker::HalfOpen { .. } => BREAKER_HALF_OPEN,
            Breaker::Open { .. } => BREAKER_OPEN,
        };
        r.breaker_state.set(state);
    }
    shared.obs.hub.render()
}

fn health_loop(shared: &Arc<RouterShared>) {
    let mut nonce = 0u64;
    // Health connections are long-lived; reconnect lazily on failure.
    let mut conns: Vec<Option<NetClient>> = shared.replicas.iter().map(|_| None).collect();
    while !shared.draining.load(Ordering::Acquire) {
        for (i, rep) in shared.replicas.iter().enumerate() {
            if !rep.probe_due(Instant::now()) {
                continue;
            }
            nonce += 1;
            let ok = ping_replica(&mut conns[i], rep.addr, nonce, &shared.cfg);
            if ok {
                rep.record_success();
            } else {
                conns[i] = None;
                rep.record_failure(&shared.cfg);
            }
        }
        std::thread::sleep(shared.cfg.health_interval);
    }
}

fn ping_replica(
    conn: &mut Option<NetClient>,
    addr: SocketAddr,
    nonce: u64,
    cfg: &RouterConfig,
) -> bool {
    if conn.is_none() {
        match NetClient::connect(addr, cfg.connect_timeout) {
            Ok(mut c) => {
                c.set_timeout(cfg.request_timeout);
                *conn = Some(c);
            }
            Err(_) => return false,
        }
    }
    match conn.as_mut().expect("just connected").ping(nonce) {
        // A draining replica still answers pings but must stop getting
        // traffic: treat it as a failed check.
        Ok(info) => !info.draining,
        Err(_) => false,
    }
}

fn router_accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("slide-router-conn-{peer}"))
                    .spawn(move || router_connection_loop(stream, &shared2));
                if let Ok(h) = handle {
                    let mut handles = shared.conn_handles.lock();
                    handles.retain(|h| !h.is_finished());
                    handles.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.net.poll_interval.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(shared.cfg.net.poll_interval),
        }
    }
}

fn router_connection_loop(mut stream: TcpStream, shared: &Arc<RouterShared>) {
    let cfg = &shared.cfg;
    if stream
        .set_read_timeout(Some(cfg.net.poll_interval))
        .is_err()
        || stream
            .set_write_timeout(Some(cfg.net.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    // Replica connections are cached per client connection so a steady
    // client reuses warm sockets end to end. The pool is shared with this
    // connection's attempt threads (hedges run concurrently).
    let replica_conns: Arc<Mutex<Vec<Option<NetClient>>>> =
        Arc::new(Mutex::new(shared.replicas.iter().map(|_| None).collect()));
    loop {
        if shared.draining.load(Ordering::Acquire) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let frame = match read_frame(&mut stream, cfg.net.max_payload, cfg.net.frame_deadline) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Frame(f)) => f,
            Err(e) => {
                if !matches!(e, WireError::Stalled | WireError::Io(..)) {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Error {
                            req_id: 0,
                            code: ErrorCode::Protocol,
                            message: e.to_string(),
                        },
                    );
                }
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        let keep_going = match frame {
            Frame::Predict(req) => {
                let reply = forward_predict(shared, &replica_conns, &req);
                write_frame(&mut stream, &reply).is_ok()
            }
            Frame::Ping { nonce } => write_frame(
                &mut stream,
                &Frame::Pong(PongInfo {
                    nonce,
                    inflight: shared
                        .replicas
                        .iter()
                        .map(|r| r.inflight.load(Ordering::Relaxed) as u32)
                        .sum(),
                    draining: shared.draining.load(Ordering::Acquire),
                    precision: "router".into(),
                }),
            )
            .is_ok(),
            Frame::GetStats => {
                write_frame(&mut stream, &Frame::StatsJson(router_stats_json(shared))).is_ok()
            }
            Frame::GetMetrics => write_frame(
                &mut stream,
                &Frame::MetricsText(router_metrics_text(shared)),
            )
            .is_ok(),
            Frame::Drain => {
                shared.draining.store(true, Ordering::Release);
                let _ = write_frame(&mut stream, &Frame::Drain);
                false
            }
            other => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error {
                        req_id: 0,
                        code: ErrorCode::Protocol,
                        message: format!(
                            "client sent a server-only frame (type {})",
                            other.type_byte()
                        ),
                    },
                );
                false
            }
        };
        if !keep_going {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
}

/// Pick a closed-breaker replica for `req`, excluding already-`attempted`
/// replicas (failed, or still in flight from a hedge).
fn pick_replica(shared: &RouterShared, indices: &[u32], attempted: &[usize]) -> Option<usize> {
    let ok = |i: usize| !attempted.contains(&i) && shared.replicas[i].available();
    match shared.cfg.policy {
        RoutePolicy::LeastLoad => (0..shared.replicas.len())
            .filter(|&i| ok(i))
            .min_by_key(|&i| shared.replicas[i].inflight.load(Ordering::Relaxed)),
        RoutePolicy::ConsistentHash => ring_pick(&shared.ring, query_ring_key(indices), ok),
    }
}

/// One resolved attempt, reported back to the forwarding loop.
struct AttemptReport {
    hedge: bool,
    result: Result<Vec<u32>, ClientError>,
}

/// Launch one attempt on replica `i` in its own thread. Breaker and
/// per-replica counters are recorded *in the thread* so attempts the
/// forwarding loop abandoned (deadline ran out first) still count.
fn spawn_attempt(
    shared: &Arc<RouterShared>,
    conns: &Arc<Mutex<Vec<Option<NetClient>>>>,
    req: &Arc<PredictRequest>,
    i: usize,
    deadline: Option<Instant>,
    hedge: bool,
    tx: &mpsc::Sender<AttemptReport>,
) {
    let shared2 = Arc::clone(shared);
    let conns = Arc::clone(conns);
    let req = Arc::clone(req);
    let tx2 = tx.clone();
    shared.replicas[i].inflight.fetch_add(1, Ordering::Relaxed);
    let spawned = std::thread::Builder::new()
        .name("slide-router-attempt".into())
        .spawn(move || {
            let shared = shared2;
            let tx = tx2;
            let result = attempt_once(&shared, &conns, &req, i, deadline);
            let rep = &shared.replicas[i];
            rep.inflight.fetch_sub(1, Ordering::Relaxed);
            match &result {
                Ok(_)
                | Err(ClientError::RetryLater { .. })
                | Err(ClientError::DeadlineExceeded) => {
                    // The replica answered promptly and honestly.
                    rep.forwarded.inc();
                    rep.record_success();
                }
                Err(e) if e.is_replica_fault() => rep.record_failure(&shared.cfg),
                // A typed verdict about the request itself.
                Err(_) => {
                    rep.forwarded.inc();
                }
            }
            let _ = tx.send(AttemptReport { hedge, result });
        });
    if spawned.is_err() {
        shared.replicas[i].inflight.fetch_sub(1, Ordering::Relaxed);
        let _ = tx.send(AttemptReport {
            hedge,
            result: Err(ClientError::Io("attempt thread spawn failed".into())),
        });
    }
}

fn attempt_once(
    shared: &Arc<RouterShared>,
    conns: &Arc<Mutex<Vec<Option<NetClient>>>>,
    req: &Arc<PredictRequest>,
    i: usize,
    deadline: Option<Instant>,
) -> Result<Vec<u32>, ClientError> {
    let cfg = &shared.cfg;
    // Decrement the budget at send time. A nonzero remaining budget must
    // stay nonzero on the wire — 0 means "no deadline".
    let budget_us = match deadline {
        None => 0,
        Some(d) => {
            let rem = d.saturating_duration_since(Instant::now());
            if rem.is_zero() {
                return Err(ClientError::DeadlineExceeded);
            }
            (rem.as_micros() as u64).max(1)
        }
    };
    let mut conn = conns.lock()[i].take();
    if conn.is_none() {
        let mut c = NetClient::connect(shared.replicas[i].addr, cfg.connect_timeout)?;
        c.set_timeout(cfg.request_timeout);
        conn = Some(c);
    }
    let mut c = conn.expect("just connected");
    // The trace id rides the forwarded frame unchanged, so the replica's
    // spans land under the same id the client chose.
    let result = c.predict_traced_within(
        &req.indices,
        &req.values,
        req.k as usize,
        budget_us,
        req.trace_id,
    );
    // Return the socket to the pool unless it faulted (or a concurrent
    // attempt already repopulated the slot).
    if !matches!(&result, Err(e) if e.is_replica_fault()) {
        let mut pool = conns.lock();
        if pool[i].is_none() {
            pool[i] = Some(c);
        }
    }
    result
}

/// Forward one predict: deadline check, primary attempt, hedge after the
/// hedge delay, failover on replica faults — first answer wins, dedup by
/// req-id. Soft verdicts (`RetryLater`, `DeadlineExceeded` from a
/// replica) are deferred while another attempt is still in flight and
/// surfaced only if nothing wins.
fn forward_predict(
    shared: &Arc<RouterShared>,
    conns: &Arc<Mutex<Vec<Option<NetClient>>>>,
    req: &PredictRequest,
) -> Frame {
    let cfg = &shared.cfg;
    let t_rx = Instant::now();
    let ring = shared.obs.hub.ring();
    let q_start = ring.now_us();
    let req_id = req.req_id;
    let deadline = (req.deadline_us > 0).then(|| t_rx + Duration::from_micros(req.deadline_us));
    if deadline.is_some_and(|d| Instant::now() >= d) {
        // Expired on arrival: shed before touching any replica.
        shared.obs.deadline_exceeded.inc();
        return Frame::DeadlineExceeded { req_id };
    }
    let req = Arc::new(req.clone());
    let (tx, rx) = mpsc::channel();
    let mut attempted: Vec<usize> = Vec::new();
    let Some(first) = pick_replica(shared, &req.indices, &attempted) else {
        // No closed breaker anywhere: soft-shed so clients back off and
        // retry once health returns.
        return Frame::RetryLater {
            req_id,
            queue_depth: 0,
        };
    };
    spawn_attempt(shared, conns, &req, first, deadline, false, &tx);
    attempted.push(first);
    // Frame receipt → first attempt launched: the router's queueing hop.
    let q_dur = ring.now_us().saturating_sub(q_start);
    shared.obs.stage_router_queue.record(q_dur);
    ring.record(req.trace_id, Stage::RouterQueue, q_start, q_dur);
    let mut in_flight = 1usize;
    let mut hedge_at = (cfg.hedge && shared.replicas.len() > 1).then(|| match deadline {
        Some(d) => {
            t_rx + d
                .saturating_duration_since(t_rx)
                .mul_f64(cfg.hedge_fraction.clamp(0.0, 1.0))
        }
        None => t_rx + cfg.hedge_delay,
    });
    let mut soft: Option<Frame> = None;
    loop {
        if in_flight == 0 {
            // Every attempt resolved without a winner.
            return soft.unwrap_or(Frame::RetryLater {
                req_id,
                queue_depth: 0,
            });
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            // Budget gone: answer the client now and abandon the in-flight
            // attempts — they carry decremented budgets, so the replicas
            // shed the stragglers themselves (a hedged pair dies as a
            // pair). Late replies land on pooled sockets and are skipped
            // by req-id as stale.
            shared.obs.deadline_exceeded.inc();
            return Frame::DeadlineExceeded { req_id };
        }
        let mut wake = now + Duration::from_millis(20);
        if let Some(d) = deadline {
            wake = wake.min(d);
        }
        if let Some(h) = hedge_at {
            wake = wake.min(h);
        }
        let wait = wake
            .saturating_duration_since(now)
            .max(Duration::from_millis(1));
        match rx.recv_timeout(wait) {
            Ok(report) => {
                in_flight -= 1;
                match report.result {
                    Ok(ids) => {
                        if report.hedge {
                            shared.obs.hedge_wins.inc();
                        }
                        return Frame::TopK { req_id, ids };
                    }
                    Err(ClientError::RetryLater { queue_depth }) => {
                        // Backpressure verdict: keep it, but give any
                        // other attempt the chance to win outright.
                        soft.get_or_insert(Frame::RetryLater {
                            req_id,
                            queue_depth,
                        });
                    }
                    Err(ClientError::DeadlineExceeded) => {
                        // A downstream hop already shed it; the budget
                        // verdict beats a backpressure verdict.
                        soft = Some(Frame::DeadlineExceeded { req_id });
                    }
                    Err(ClientError::Server { code, message })
                        if !matches!(code, ErrorCode::Unavailable | ErrorCode::Internal) =>
                    {
                        // The request itself is bad; no other replica
                        // would disagree.
                        return Frame::Error {
                            req_id,
                            code,
                            message,
                        };
                    }
                    Err(_) => {
                        // Replica fault (already penalized in the attempt
                        // thread): fail over immediately if this was the
                        // last attempt standing.
                        if in_flight == 0 && attempted.len() < MAX_ATTEMPTS {
                            if let Some(j) = pick_replica(shared, &req.indices, &attempted) {
                                shared.obs.failovers.inc();
                                spawn_attempt(shared, conns, &req, j, deadline, false, &tx);
                                attempted.push(j);
                                in_flight += 1;
                            }
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Unreachable while we hold `tx`, but never hang on it.
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return soft.unwrap_or(Frame::RetryLater {
                    req_id,
                    queue_depth: 0,
                });
            }
        }
        if let Some(h) = hedge_at {
            if Instant::now() >= h && in_flight >= 1 && attempted.len() < MAX_ATTEMPTS {
                hedge_at = None;
                if let Some(j) = pick_replica(shared, &req.indices, &attempted) {
                    shared.obs.hedges.inc();
                    // Receipt → hedge launch: how long the primary was
                    // given before we paid for a backup attempt.
                    let h_dur = ring.now_us().saturating_sub(q_start);
                    shared.obs.stage_hedge_wait.record(h_dur);
                    ring.record(req.trace_id, Stage::HedgeWait, q_start, h_dur);
                    spawn_attempt(shared, conns, &req, j, deadline, true, &tx);
                    attempted.push(j);
                    in_flight += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_replicas() {
        let ring = build_ring(3);
        assert_eq!(ring, build_ring(3));
        assert_eq!(ring.len(), 3 * VNODES_PER_REPLICA as usize);
        for r in 0..3 {
            assert!(ring.iter().any(|&(_, i)| i == r));
        }
        // Positions are strictly sorted (splitmix collisions at 192 points
        // would be astronomically unlikely).
        assert!(ring.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn ring_pick_walks_past_excluded_replicas() {
        let ring = build_ring(3);
        let key = query_ring_key(&[1, 2, 3]);
        let first = ring_pick(&ring, key, |_| true).unwrap();
        let second = ring_pick(&ring, key, |r| r != first).unwrap();
        assert_ne!(first, second);
        assert!(ring_pick(&ring, key, |_| false).is_none());
        // Same key, same pick: routing is stable.
        assert_eq!(ring_pick(&ring, key, |_| true).unwrap(), first);
    }

    #[test]
    fn query_ring_key_depends_on_indices() {
        assert_eq!(query_ring_key(&[5, 9]), query_ring_key(&[5, 9]));
        assert_ne!(query_ring_key(&[5, 9]), query_ring_key(&[9, 5]));
        assert_ne!(query_ring_key(&[]), query_ring_key(&[0]));
    }

    fn test_cfg() -> RouterConfig {
        RouterConfig {
            breaker_backoff: Duration::from_millis(100),
            breaker_max_backoff: Duration::from_secs(2),
            ..Default::default()
        }
    }

    fn replica(idx: usize) -> ReplicaState {
        // Each call gets its own hub so counters never collide across tests.
        ReplicaState::new(idx, "127.0.0.1:1".parse().unwrap(), &ObsHub::new())
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let cfg = test_cfg();
        let rep = replica(0);
        assert!(rep.available());
        // One failure below the threshold: still closed.
        rep.record_failure(&cfg);
        assert!(rep.available());
        // Threshold reached: open, traffic and pings suppressed.
        rep.record_failure(&cfg);
        assert!(!rep.available());
        assert_eq!(rep.opens.get(), 1);
        assert!(!rep.probe_due(Instant::now()));
        // Backoff elapsed: half-open, the probe is admitted.
        assert!(rep.probe_due(Instant::now() + Duration::from_secs(3)));
        assert_eq!(rep.half_opens.get(), 1);
        assert!(!rep.available(), "half-open must not take traffic");
        // Probe succeeds: closed again.
        rep.record_success();
        assert!(rep.available());
        assert_eq!(rep.closes.get(), 1);
    }

    #[test]
    fn failed_probe_reopens_with_longer_backoff() {
        let cfg = test_cfg();
        let rep = replica(0);
        rep.record_failure(&cfg);
        rep.record_failure(&cfg);
        let until1 = match *rep.breaker.lock() {
            Breaker::Open { until, streak } => {
                assert_eq!(streak, 1);
                until
            }
            ref other => panic!("expected open, got {other:?}"),
        };
        assert!(rep.probe_due(Instant::now() + Duration::from_secs(3)));
        // The probe fails: streak 2, and the new deadline is further out
        // than streak 1's was (exponential growth dominates the ±25%
        // jitter at these sizes).
        rep.record_failure(&cfg);
        match *rep.breaker.lock() {
            Breaker::Open { until, streak } => {
                assert_eq!(streak, 2);
                assert!(until > until1);
            }
            ref other => panic!("expected reopened, got {other:?}"),
        }
        assert_eq!(rep.opens.get(), 2);
    }

    #[test]
    fn breaker_backoff_grows_then_caps() {
        let cfg = test_cfg();
        let b1 = breaker_backoff(&cfg, 0, 1);
        let b4 = breaker_backoff(&cfg, 0, 4);
        let b20 = breaker_backoff(&cfg, 0, 20);
        assert!(b4 > b1, "backoff must grow with the open streak");
        // Streak 20 is far past the cap: within jitter of max_backoff.
        assert!(b20 <= cfg.breaker_max_backoff.mul_f64(1.25));
        assert!(b20 >= cfg.breaker_max_backoff.mul_f64(0.75));
        // Jitter is deterministic per (replica, streak)...
        assert_eq!(breaker_backoff(&cfg, 0, 1), b1);
        // ...and desynchronizes distinct replicas.
        assert_ne!(breaker_backoff(&cfg, 1, 1), b1);
    }
}
