//! `slide_router`: a wire-protocol proxy that spreads predict traffic
//! across N replica daemons with health checks, ejection, and
//! one-retry failover.
//!
//! The router speaks the same frame protocol on both sides: clients connect
//! to it exactly as they would to a single `slide_netd`, and it forwards
//! each predict to a replica over a per-connection cached [`NetClient`].
//! Because the serving salt is content-derived (`slide_serve::query_salt`),
//! any replica of the same snapshot returns a bit-identical answer — which
//! is what makes transparent failover sound.
//!
//! **Health:** a background thread pings every replica each
//! `health_interval`. `eject_after` consecutive failures mark a replica
//! unhealthy (ejected from routing); a single successful ping readmits it.
//! Request-path replica faults also count toward ejection.
//!
//! **Failover:** a replica fault on the request path (socket death, wire
//! garbage, `Unavailable`) triggers exactly one retry on a *different*
//! healthy replica. `RetryLater` and `Invalid` pass through untouched —
//! they are verdicts about load and about the request, not about the
//! replica. No healthy replica ⇒ the client gets `RetryLater`.

use crate::client::{ClientError, NetClient};
use crate::server::NetConfig;
use crate::stream::{read_frame, write_frame, ReadOutcome};
use crate::wire::{ErrorCode, Frame, PongInfo, WireError};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the router picks a replica for a predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Fewest in-flight forwards among healthy replicas (power of all
    /// choices — replica counts are small).
    LeastLoad,
    /// Hash the query's feature indices onto a 64-vnode-per-replica ring;
    /// walk clockwise to the first healthy replica. Keeps a given query on
    /// a stable replica (cache/NUMA affinity) with minimal disruption when
    /// replicas come and go.
    ConsistentHash,
}

/// Router tunables.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Replica-selection policy.
    pub policy: RoutePolicy,
    /// Health-ping period.
    pub health_interval: Duration,
    /// Per-forward request timeout (each of the two attempts gets one).
    pub request_timeout: Duration,
    /// TCP connect timeout toward replicas.
    pub connect_timeout: Duration,
    /// Consecutive failures (pings or forwards) before ejection.
    pub eject_after: u32,
    /// Listener-side socket knobs.
    pub net: NetConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            policy: RoutePolicy::LeastLoad,
            health_interval: Duration::from_millis(200),
            request_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            eject_after: 2,
            net: NetConfig::default(),
        }
    }
}

/// One replica's live state, shared between the health thread and every
/// connection thread.
struct ReplicaState {
    addr: SocketAddr,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    inflight: AtomicUsize,
    forwarded: AtomicU64,
    failed: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
}

impl ReplicaState {
    fn mark_failure(&self, eject_after: u32) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        let fails = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if fails >= eject_after && self.healthy.swap(false, Ordering::AcqRel) {
            self.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn mark_ping_success(&self) {
        self.consecutive_failures.store(0, Ordering::Release);
        if !self.healthy.swap(true, Ordering::AcqRel) {
            self.readmissions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct RouterShared {
    cfg: RouterConfig,
    replicas: Vec<ReplicaState>,
    ring: Vec<(u64, usize)>,
    local_addr: SocketAddr,
    draining: AtomicBool,
    conn_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

const VNODES_PER_REPLICA: u64 = 64;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Build the consistent-hash ring: 64 virtual nodes per replica, positions
/// derived from (replica index, vnode index) so the ring is identical
/// across router restarts.
fn build_ring(n_replicas: usize) -> Vec<(u64, usize)> {
    let mut ring = Vec::with_capacity(n_replicas * VNODES_PER_REPLICA as usize);
    for r in 0..n_replicas {
        for v in 0..VNODES_PER_REPLICA {
            ring.push((splitmix64(((r as u64) << 32) | (v + 1)), r));
        }
    }
    ring.sort_unstable();
    ring
}

/// Hash a query's feature indices to a ring position.
fn query_ring_key(indices: &[u32]) -> u64 {
    let mut h = 0x5151_5151_5151_5151u64;
    for &i in indices {
        h = splitmix64(h ^ u64::from(i));
    }
    h
}

/// Walk the ring from `key` to the first replica passing `is_ok`.
fn ring_pick(ring: &[(u64, usize)], key: u64, is_ok: impl Fn(usize) -> bool) -> Option<usize> {
    if ring.is_empty() {
        return None;
    }
    let start = ring.partition_point(|&(pos, _)| pos < key);
    for off in 0..ring.len() {
        let (_, r) = ring[(start + off) % ring.len()];
        if is_ok(r) {
            return Some(r);
        }
    }
    None
}

/// The fleet front-end. Dropping it drains the listener and joins all
/// threads (replica daemons are left running — they are other processes'
/// responsibility).
pub struct Router {
    shared: Arc<RouterShared>,
    accept: Option<std::thread::JoinHandle<()>>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Bind `addr` and start routing to `replicas`.
    ///
    /// # Errors
    ///
    /// Any bind/spawn failure, as `std::io::Error`.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        replicas: &[SocketAddr],
        cfg: RouterConfig,
    ) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            replicas: replicas
                .iter()
                .map(|&addr| ReplicaState {
                    addr,
                    // Optimistic start: the first health cycle corrects it.
                    healthy: AtomicBool::new(true),
                    consecutive_failures: AtomicU32::new(0),
                    inflight: AtomicUsize::new(0),
                    forwarded: AtomicU64::new(0),
                    failed: AtomicU64::new(0),
                    ejections: AtomicU64::new(0),
                    readmissions: AtomicU64::new(0),
                })
                .collect(),
            ring: build_ring(replicas.len()),
            cfg,
            local_addr,
            draining: AtomicBool::new(false),
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-router-accept".into())
                .spawn(move || router_accept_loop(&listener, &shared))?
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-router-health".into())
                .spawn(move || health_loop(&shared))?
        };
        Ok(Router {
            shared,
            accept: Some(accept),
            health: Some(health),
        })
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Whether a drain has been requested (by [`Router::drain`] or a
    /// client's `Drain` frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// How many replicas currently pass health checks.
    pub fn healthy_replicas(&self) -> usize {
        self.shared
            .replicas
            .iter()
            .filter(|r| r.healthy.load(Ordering::Acquire))
            .count()
    }

    /// Per-replica counters as a JSON object (the router's `GetStats`
    /// response).
    pub fn stats_json(&self) -> String {
        router_stats_json(&self.shared)
    }

    /// Stop accepting and join every thread.
    pub fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        loop {
            let handles: Vec<_> = self.shared.conn_handles.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.drain();
    }
}

fn router_stats_json(shared: &RouterShared) -> String {
    let reps: Vec<String> = shared
        .replicas
        .iter()
        .map(|r| {
            format!(
                "{{\"addr\":\"{}\",\"healthy\":{},\"inflight\":{},\"forwarded\":{},\
                 \"failed\":{},\"ejections\":{},\"readmissions\":{}}}",
                r.addr,
                r.healthy.load(Ordering::Acquire),
                r.inflight.load(Ordering::Relaxed),
                r.forwarded.load(Ordering::Relaxed),
                r.failed.load(Ordering::Relaxed),
                r.ejections.load(Ordering::Relaxed),
                r.readmissions.load(Ordering::Relaxed),
            )
        })
        .collect();
    let healthy = shared
        .replicas
        .iter()
        .filter(|r| r.healthy.load(Ordering::Acquire))
        .count();
    format!(
        "{{\"role\":\"router\",\"policy\":\"{}\",\"replicas\":{},\"healthy\":{},\
         \"replica_stats\":[{}]}}",
        match shared.cfg.policy {
            RoutePolicy::LeastLoad => "least_load",
            RoutePolicy::ConsistentHash => "consistent_hash",
        },
        shared.replicas.len(),
        healthy,
        reps.join(",")
    )
}

fn health_loop(shared: &Arc<RouterShared>) {
    let mut nonce = 0u64;
    // Health connections are long-lived; reconnect lazily on failure.
    let mut conns: Vec<Option<NetClient>> = shared.replicas.iter().map(|_| None).collect();
    while !shared.draining.load(Ordering::Acquire) {
        for (i, rep) in shared.replicas.iter().enumerate() {
            nonce += 1;
            let ok = ping_replica(&mut conns[i], rep.addr, nonce, &shared.cfg);
            if ok {
                rep.mark_ping_success();
            } else {
                conns[i] = None;
                rep.mark_failure(shared.cfg.eject_after);
            }
        }
        std::thread::sleep(shared.cfg.health_interval);
    }
}

fn ping_replica(
    conn: &mut Option<NetClient>,
    addr: SocketAddr,
    nonce: u64,
    cfg: &RouterConfig,
) -> bool {
    if conn.is_none() {
        match NetClient::connect(addr, cfg.connect_timeout) {
            Ok(mut c) => {
                c.set_timeout(cfg.request_timeout);
                *conn = Some(c);
            }
            Err(_) => return false,
        }
    }
    match conn.as_mut().expect("just connected").ping(nonce) {
        // A draining replica still answers pings but must stop getting
        // traffic: treat it as a failed check.
        Ok(info) => !info.draining,
        Err(_) => false,
    }
}

fn router_accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("slide-router-conn-{peer}"))
                    .spawn(move || router_connection_loop(stream, &shared2));
                if let Ok(h) = handle {
                    let mut handles = shared.conn_handles.lock();
                    handles.retain(|h| !h.is_finished());
                    handles.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.net.poll_interval.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(shared.cfg.net.poll_interval),
        }
    }
}

fn router_connection_loop(mut stream: TcpStream, shared: &RouterShared) {
    let cfg = &shared.cfg;
    if stream
        .set_read_timeout(Some(cfg.net.poll_interval))
        .is_err()
        || stream
            .set_write_timeout(Some(cfg.net.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    // Replica connections are cached per client connection so a steady
    // client reuses warm sockets end to end.
    let mut replica_conns: Vec<Option<NetClient>> = shared.replicas.iter().map(|_| None).collect();
    loop {
        if shared.draining.load(Ordering::Acquire) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let frame = match read_frame(&mut stream, cfg.net.max_payload, cfg.net.frame_deadline) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Frame(f)) => f,
            Err(e) => {
                if !matches!(e, WireError::Stalled | WireError::Io(..)) {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Error {
                            req_id: 0,
                            code: ErrorCode::Protocol,
                            message: e.to_string(),
                        },
                    );
                }
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        let keep_going = match frame {
            Frame::Predict(req) => {
                let reply = forward_predict(shared, &mut replica_conns, &req);
                write_frame(&mut stream, &reply).is_ok()
            }
            Frame::Ping { nonce } => write_frame(
                &mut stream,
                &Frame::Pong(PongInfo {
                    nonce,
                    inflight: shared
                        .replicas
                        .iter()
                        .map(|r| r.inflight.load(Ordering::Relaxed) as u32)
                        .sum(),
                    draining: shared.draining.load(Ordering::Acquire),
                    precision: "router".into(),
                }),
            )
            .is_ok(),
            Frame::GetStats => {
                write_frame(&mut stream, &Frame::StatsJson(router_stats_json(shared))).is_ok()
            }
            Frame::Drain => {
                shared.draining.store(true, Ordering::Release);
                let _ = write_frame(&mut stream, &Frame::Drain);
                false
            }
            other => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error {
                        req_id: 0,
                        code: ErrorCode::Protocol,
                        message: format!(
                            "client sent a server-only frame (type {})",
                            other.type_byte()
                        ),
                    },
                );
                false
            }
        };
        if !keep_going {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
}

/// Pick a replica for `req`, excluding `avoid` (the failed first attempt).
fn pick_replica(shared: &RouterShared, indices: &[u32], avoid: Option<usize>) -> Option<usize> {
    let ok = |i: usize| Some(i) != avoid && shared.replicas[i].healthy.load(Ordering::Acquire);
    match shared.cfg.policy {
        RoutePolicy::LeastLoad => (0..shared.replicas.len())
            .filter(|&i| ok(i))
            .min_by_key(|&i| shared.replicas[i].inflight.load(Ordering::Relaxed)),
        RoutePolicy::ConsistentHash => ring_pick(&shared.ring, query_ring_key(indices), ok),
    }
}

/// Forward one predict with the failover policy: one retry on a different
/// healthy replica for replica faults; soft verdicts pass through.
fn forward_predict(
    shared: &RouterShared,
    conns: &mut [Option<NetClient>],
    req: &crate::wire::PredictRequest,
) -> Frame {
    let mut avoid: Option<usize> = None;
    for _attempt in 0..2 {
        let Some(i) = pick_replica(shared, &req.indices, avoid) else {
            break;
        };
        let rep = &shared.replicas[i];
        rep.inflight.fetch_add(1, Ordering::Relaxed);
        let result = forward_once(conns, i, rep.addr, &shared.cfg, req);
        rep.inflight.fetch_sub(1, Ordering::Relaxed);
        match result {
            Ok(ids) => {
                rep.forwarded.fetch_add(1, Ordering::Relaxed);
                rep.consecutive_failures.store(0, Ordering::Release);
                return Frame::TopK {
                    req_id: req.req_id,
                    ids,
                };
            }
            Err(ClientError::RetryLater { queue_depth }) => {
                // The replica is healthy but saturated — surface the
                // backpressure to the client untouched.
                rep.forwarded.fetch_add(1, Ordering::Relaxed);
                return Frame::RetryLater {
                    req_id: req.req_id,
                    queue_depth,
                };
            }
            Err(ClientError::Server { code, message })
                if !matches!(code, ErrorCode::Unavailable | ErrorCode::Internal) =>
            {
                // The request itself is bad; no other replica would
                // disagree.
                rep.forwarded.fetch_add(1, Ordering::Relaxed);
                return Frame::Error {
                    req_id: req.req_id,
                    code,
                    message,
                };
            }
            Err(_) => {
                // Replica fault: penalize, drop the dead socket, retry
                // once elsewhere.
                conns[i] = None;
                rep.mark_failure(shared.cfg.eject_after);
                avoid = Some(i);
            }
        }
    }
    if avoid.is_some() && pick_replica(shared, &req.indices, avoid).is_none() {
        // Both attempts failed and there is nowhere else to go.
        return Frame::Error {
            req_id: req.req_id,
            code: ErrorCode::Unavailable,
            message: "all healthy replicas failed".into(),
        };
    }
    match avoid {
        // Second pick failed too (or second attempt errored with peers
        // remaining) — tell the client the fleet is unavailable for now.
        Some(_) => Frame::Error {
            req_id: req.req_id,
            code: ErrorCode::Unavailable,
            message: "failover exhausted".into(),
        },
        // No healthy replica at all: soft-shed so clients back off and
        // retry once health returns.
        None => Frame::RetryLater {
            req_id: req.req_id,
            queue_depth: 0,
        },
    }
}

fn forward_once(
    conns: &mut [Option<NetClient>],
    i: usize,
    addr: SocketAddr,
    cfg: &RouterConfig,
    req: &crate::wire::PredictRequest,
) -> Result<Vec<u32>, ClientError> {
    if conns[i].is_none() {
        let mut c = NetClient::connect(addr, cfg.connect_timeout)?;
        c.set_timeout(cfg.request_timeout);
        conns[i] = Some(c);
    }
    conns[i]
        .as_mut()
        .expect("just connected")
        .predict(&req.indices, &req.values, req.k as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_replicas() {
        let ring = build_ring(3);
        assert_eq!(ring, build_ring(3));
        assert_eq!(ring.len(), 3 * VNODES_PER_REPLICA as usize);
        for r in 0..3 {
            assert!(ring.iter().any(|&(_, i)| i == r));
        }
        // Positions are strictly sorted (splitmix collisions at 192 points
        // would be astronomically unlikely).
        assert!(ring.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn ring_pick_walks_past_excluded_replicas() {
        let ring = build_ring(3);
        let key = query_ring_key(&[1, 2, 3]);
        let first = ring_pick(&ring, key, |_| true).unwrap();
        let second = ring_pick(&ring, key, |r| r != first).unwrap();
        assert_ne!(first, second);
        assert!(ring_pick(&ring, key, |_| false).is_none());
        // Same key, same pick: routing is stable.
        assert_eq!(ring_pick(&ring, key, |_| true).unwrap(), first);
    }

    #[test]
    fn query_ring_key_depends_on_indices() {
        assert_eq!(query_ring_key(&[5, 9]), query_ring_key(&[5, 9]));
        assert_ne!(query_ring_key(&[5, 9]), query_ring_key(&[9, 5]));
        assert_ne!(query_ring_key(&[]), query_ring_key(&[0]));
    }
}
