//! Property tests for the LSH substrate: table bookkeeping invariants and
//! hash determinism/range guarantees on arbitrary inputs.

use proptest::prelude::*;
use slide_hash::{BucketPolicy, DwtaConfig, DwtaHash, LshTables, SimHash, SimHashConfig};
use slide_mem::SparseVecRef;

fn sparse_input(dim: u32) -> impl Strategy<Value = (Vec<u32>, Vec<f32>)> {
    prop::collection::btree_set(0..dim, 0..40).prop_map(|set| {
        let idx: Vec<u32> = set.into_iter().collect();
        let val: Vec<f32> = idx.iter().map(|&i| ((i % 13) as f32) - 6.0 + 0.5).collect();
        (idx, val)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dwta_keys_always_in_range((idx, val) in sparse_input(2048), seed in any::<u64>()) {
        let h = DwtaHash::new(DwtaConfig { dim: 2048, key_bits: 7, tables: 16, bin_size: 8, seed });
        let mut scratch = h.make_scratch();
        let mut keys = vec![0u32; 16];
        h.keys_sparse(SparseVecRef::new(&idx, &val), &mut scratch, &mut keys);
        for k in keys {
            prop_assert!(k < 128);
        }
    }

    #[test]
    fn dwta_is_a_function((idx, val) in sparse_input(512)) {
        let h = DwtaHash::new(DwtaConfig { dim: 512, key_bits: 6, tables: 8, bin_size: 16, seed: 5 });
        let mut s1 = h.make_scratch();
        let mut s2 = h.make_scratch();
        let mut k1 = vec![0u32; 8];
        let mut k2 = vec![0u32; 8];
        let x = SparseVecRef::new(&idx, &val);
        h.keys_sparse(x, &mut s1, &mut k1);
        h.keys_sparse(x, &mut s2, &mut k2);
        prop_assert_eq!(k1, k2);
    }

    #[test]
    fn simhash_keys_always_in_range((idx, val) in sparse_input(4096), seed in any::<u64>()) {
        let h = SimHash::new(SimHashConfig { dim: 4096, key_bits: 9, tables: 12, seed });
        let mut scratch = h.make_scratch();
        let mut keys = vec![0u32; 12];
        h.keys_sparse(SparseVecRef::new(&idx, &val), &mut scratch, &mut keys);
        for k in keys {
            prop_assert!(k < 512);
        }
    }

    #[test]
    fn tables_query_returns_inserted_id(
        ids in prop::collection::btree_set(0u32..10_000, 1..50),
        seed in any::<u64>(),
    ) {
        let mut tables = LshTables::new(4, 6, 1024, BucketPolicy::Reservoir, seed);
        let key_of = |id: u32, t: u64| (slide_hash::mix::mix2(seed ^ t, id as u64) % 64) as u32;
        for &id in &ids {
            let keys: Vec<u32> = (0..4).map(|t| key_of(id, t)).collect();
            tables.insert(&keys, id);
        }
        // Bucket cap 1024 > #ids, so every id must be retrievable.
        for &id in &ids {
            let keys: Vec<u32> = (0..4).map(|t| key_of(id, t)).collect();
            let mut out = Vec::new();
            tables.query_into(&keys, &mut out);
            prop_assert!(out.contains(&id));
        }
        let stats = tables.stats();
        prop_assert_eq!(stats.stored, ids.len() * 4);
    }

    #[test]
    fn tables_remove_then_query_is_empty_of_id(
        ids in prop::collection::btree_set(0u32..1000, 1..30),
    ) {
        let mut tables = LshTables::new(3, 5, 512, BucketPolicy::Fifo, 9);
        let key_of = |id: u32, t: u64| (slide_hash::mix::mix2(t, id as u64) % 32) as u32;
        for &id in &ids {
            let keys: Vec<u32> = (0..3).map(|t| key_of(id, t)).collect();
            tables.insert(&keys, id);
        }
        let victim = *ids.iter().next().unwrap();
        let victim_keys: Vec<u32> = (0..3).map(|t| key_of(victim, t)).collect();
        tables.remove(&victim_keys, victim);
        let mut out = Vec::new();
        tables.query_into(&victim_keys, &mut out);
        prop_assert!(!out.contains(&victim));
        // Everyone else is still present.
        for &id in ids.iter().filter(|&&i| i != victim) {
            let keys: Vec<u32> = (0..3).map(|t| key_of(id, t)).collect();
            let mut out = Vec::new();
            tables.query_into(&keys, &mut out);
            prop_assert!(out.contains(&id));
        }
    }

    #[test]
    fn bucket_never_exceeds_cap(
        inserts in prop::collection::vec((0u32..8, 0u32..100_000), 0..300),
        policy_fifo in any::<bool>(),
    ) {
        let policy = if policy_fifo { BucketPolicy::Fifo } else { BucketPolicy::Reservoir };
        let mut tables = LshTables::new(1, 3, 5, policy, 77);
        for (key, id) in inserts {
            tables.insert(&[key], id);
        }
        for key in 0..8u32 {
            prop_assert!(tables.bucket(0, key).len() <= 5);
        }
    }
}
