//! Densified Winner-Take-All hashing (Chen & Shrivastava 2018), the LSH
//! family SLIDE uses for its sparse extreme-classification layers and the
//! function vectorized in §4.3.3 of the paper.
//!
//! The scheme: a fixed random map sends every coordinate index into one of
//! `bins * bin_size` slots (precomputed once, per §4.3.3 "we pre-compute the
//! random map of all the indices"). Each *bin* covers `bin_size` consecutive
//! slots; the hash value of a bin is the in-bin slot of the maximum-valued
//! coordinate that landed in it — a `log2(bin_size)`-bit code found with the
//! vectorized [`slide_simd::argmax_f32`] reduction. Bins that receive no
//! coordinate (common for very sparse inputs) are *densified*: they borrow
//! the value of a non-empty bin chosen by an iterated universal hash, which
//! restores the collision-probability guarantees of dense WTA.
//!
//! Each hash table consumes `bins_per_table` consecutive bins, concatenating
//! their codes into a `K`-bit bucket key.

use crate::mix::{mix3, reduce};
use slide_mem::SparseVecRef;

/// Maximum densification probes before giving up and emitting code 0.
const MAX_DENSIFY_ATTEMPTS: u32 = 64;

/// Configuration for a [`DwtaHash`] family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwtaConfig {
    /// Input dimensionality (indices must be `< dim`).
    pub dim: usize,
    /// Bits per table key `K` (tables have `2^K` buckets).
    pub key_bits: u32,
    /// Number of tables `L`.
    pub tables: usize,
    /// Slots per WTA bin; must be a power of two (16 exercises one full
    /// AVX-512 register per bin, the paper's vectorized max).
    pub bin_size: usize,
    /// Seed for the random index map and densification probes.
    pub seed: u64,
}

impl Default for DwtaConfig {
    fn default() -> Self {
        DwtaConfig {
            dim: 128,
            key_bits: 6,
            tables: 50,
            bin_size: 16,
            seed: 0x5EED_D17A,
        }
    }
}

/// Reusable per-thread scratch for [`DwtaHash`] computations.
#[derive(Debug, Clone)]
pub struct DwtaScratch {
    /// Best value seen per slot (NEG_INFINITY = empty).
    slot_vals: Vec<f32>,
    /// Slots touched by the current input (for cheap reset).
    touched: Vec<u32>,
    /// Per-bin winning code, NO_CODE when the bin is empty.
    codes: Vec<u32>,
    /// Per-bin winning value (for densification donors).
    bin_max: Vec<f32>,
}

const NO_CODE: u32 = u32::MAX;

impl DwtaScratch {
    fn new(total_bins: usize, bin_size: usize) -> Self {
        DwtaScratch {
            slot_vals: vec![f32::NEG_INFINITY; total_bins * bin_size],
            touched: Vec::with_capacity(256),
            codes: vec![NO_CODE; total_bins],
            bin_max: vec![f32::NEG_INFINITY; total_bins],
        }
    }
}

/// The densified winner-take-all LSH family.
///
/// # Examples
///
/// ```
/// use slide_hash::{DwtaConfig, DwtaHash};
///
/// let dwta = DwtaHash::new(DwtaConfig { dim: 64, key_bits: 6, tables: 10, ..Default::default() });
/// let mut scratch = dwta.make_scratch();
/// let mut keys = vec![0u32; 10];
/// let x: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
/// dwta.keys_dense(&x, &mut scratch, &mut keys);
/// assert!(keys.iter().all(|&k| k < 64));
/// ```
#[derive(Debug, Clone)]
pub struct DwtaHash {
    config: DwtaConfig,
    /// Precomputed random map: `(replica, coordinate) -> slot`, laid out
    /// replica-major (`map[rep * dim + i]`). The input is replicated
    /// `ceil(total_slots / dim)` times, as in the original DWTA, so that
    /// most slots receive a coordinate — otherwise (one slot per
    /// coordinate) the vast majority of slots stay empty whenever
    /// `L · bins · bin_size ≫ dim`, the per-bin argmax chooses among a
    /// handful of shared candidates, and key diversity collapses.
    index_map: Vec<u32>,
    replicas: usize,
    bins_per_table: usize,
    bits_per_bin: u32,
    total_bins: usize,
}

impl DwtaHash {
    /// Build the family, precomputing the random index map.
    ///
    /// # Panics
    ///
    /// Panics if `bin_size` is not a power of two ≥ 2, if `key_bits` is 0 or
    /// > 24, or if `dim`/`tables` is 0.
    pub fn new(config: DwtaConfig) -> Self {
        assert!(config.bin_size.is_power_of_two() && config.bin_size >= 2);
        assert!(config.key_bits > 0 && config.key_bits <= 24);
        assert!(config.dim > 0, "DwtaHash: dim must be positive");
        assert!(config.tables > 0, "DwtaHash: tables must be positive");
        let bits_per_bin = config.bin_size.trailing_zeros();
        let bins_per_table = config.key_bits.div_ceil(bits_per_bin) as usize;
        let total_bins = bins_per_table * config.tables;
        let total_slots = total_bins * config.bin_size;
        let replicas = total_slots.div_ceil(config.dim).max(1);
        let index_map = (0..replicas * config.dim)
            .map(|ri| {
                let rep = (ri / config.dim) as u64;
                let i = (ri % config.dim) as u64;
                reduce(mix3(config.seed, rep, i), total_slots) as u32
            })
            .collect();
        DwtaHash {
            config,
            index_map,
            replicas,
            bins_per_table,
            bits_per_bin,
            total_bins,
        }
    }

    /// The configuration this family was built with.
    pub fn config(&self) -> &DwtaConfig {
        &self.config
    }

    /// Number of tables (`L`).
    pub fn tables(&self) -> usize {
        self.config.tables
    }

    /// Bits per table key (`K`).
    pub fn key_bits(&self) -> u32 {
        self.config.key_bits
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// WTA bins concatenated per table key.
    pub fn bins_per_table(&self) -> usize {
        self.bins_per_table
    }

    /// Allocate scratch sized for this family.
    pub fn make_scratch(&self) -> DwtaScratch {
        DwtaScratch::new(self.total_bins, self.config.bin_size)
    }

    /// Compute the `L` table keys for a sparse input.
    ///
    /// # Panics
    ///
    /// Panics if `keys_out.len() != self.tables()` or an index is `>= dim`.
    pub fn keys_sparse(
        &self,
        x: SparseVecRef<'_>,
        scratch: &mut DwtaScratch,
        keys_out: &mut [u32],
    ) {
        self.scatter(
            |rep, f| {
                for (pos, &idx) in x.indices.iter().enumerate() {
                    f(rep, idx as usize, x.values[pos]);
                }
            },
            scratch,
        );
        self.finish(scratch, keys_out);
    }

    /// Compute the `L` table keys for a dense input of length `dim`
    /// (used when hashing neuron weight vectors and layer activations).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `keys_out.len() != self.tables()`.
    pub fn keys_dense(&self, x: &[f32], scratch: &mut DwtaScratch, keys_out: &mut [u32]) {
        assert_eq!(
            x.len(),
            self.config.dim,
            "DwtaHash: dense input dim mismatch"
        );
        self.scatter(
            |rep, f| {
                for (idx, &v) in x.iter().enumerate() {
                    f(rep, idx, v);
                }
            },
            scratch,
        );
        self.finish(scratch, keys_out);
    }

    /// Run the scatter phase: `visit(rep, emit)` is called once per replica
    /// and must invoke `emit(rep, idx, value)` for every non-zero.
    fn scatter(
        &self,
        visit: impl Fn(usize, &mut dyn FnMut(usize, usize, f32)),
        scratch: &mut DwtaScratch,
    ) {
        // Reset only what the previous input touched.
        for &s in &scratch.touched {
            scratch.slot_vals[s as usize] = f32::NEG_INFINITY;
        }
        scratch.touched.clear();
        let dim = self.config.dim;
        let map = &self.index_map;
        let slot_vals = &mut scratch.slot_vals;
        let touched = &mut scratch.touched;
        for rep in 0..self.replicas {
            let base = rep * dim;
            visit(rep, &mut |_rep, idx, v| {
                let slot = map[base + idx];
                let cur = &mut slot_vals[slot as usize];
                if *cur == f32::NEG_INFINITY {
                    touched.push(slot);
                    *cur = v;
                } else if v > *cur {
                    *cur = v;
                }
            });
        }
    }

    fn finish(&self, scratch: &mut DwtaScratch, keys_out: &mut [u32]) {
        assert_eq!(
            keys_out.len(),
            self.config.tables,
            "DwtaHash: keys_out length must equal tables()"
        );
        let bin_size = self.config.bin_size;
        // Winner per bin via the vectorized argmax (§4.3.3): bins whose best
        // value is still NEG_INFINITY are empty.
        for b in 0..self.total_bins {
            let bin = &scratch.slot_vals[b * bin_size..(b + 1) * bin_size];
            let (code, best) = slide_simd::argmax_f32(bin).expect("bin_size > 0");
            if best == f32::NEG_INFINITY {
                scratch.codes[b] = NO_CODE;
                scratch.bin_max[b] = f32::NEG_INFINITY;
            } else {
                scratch.codes[b] = code as u32;
                scratch.bin_max[b] = best;
            }
        }
        // Densify empty bins by probing other bins with a universal hash
        // chain (Chen & Shrivastava 2018).
        let key_mask = (1u64 << self.config.key_bits) - 1;
        for (t, key_out) in keys_out.iter_mut().enumerate().take(self.config.tables) {
            let mut key: u64 = 0;
            for j in 0..self.bins_per_table {
                let b = t * self.bins_per_table + j;
                let code = if scratch.codes[b] != NO_CODE {
                    scratch.codes[b]
                } else {
                    self.densify(b, &scratch.codes)
                };
                key = (key << self.bits_per_bin) | code as u64;
            }
            *key_out = (key & key_mask) as u32;
        }
    }

    fn densify(&self, bin: usize, codes: &[u32]) -> u32 {
        for attempt in 1..=MAX_DENSIFY_ATTEMPTS {
            let probe = reduce(
                mix3(self.config.seed ^ 0xDE45_1F1E, bin as u64, attempt as u64),
                self.total_bins,
            );
            if codes[probe] != NO_CODE {
                return codes[probe];
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(dim: usize) -> DwtaHash {
        DwtaHash::new(DwtaConfig {
            dim,
            key_bits: 6,
            tables: 32,
            bin_size: 16,
            seed: 7,
        })
    }

    fn keys_of(h: &DwtaHash, x: SparseVecRef<'_>) -> Vec<u32> {
        let mut scratch = h.make_scratch();
        let mut keys = vec![0u32; h.tables()];
        h.keys_sparse(x, &mut scratch, &mut keys);
        keys
    }

    #[test]
    fn deterministic_given_seed() {
        let h = family(1000);
        let idx = [3u32, 200, 777];
        let val = [1.0f32, -0.5, 2.0];
        let x = SparseVecRef::new(&idx, &val);
        assert_eq!(keys_of(&h, x), keys_of(&h, x));
        let h2 = family(1000);
        assert_eq!(keys_of(&h, x), keys_of(&h2, x));
    }

    #[test]
    fn keys_within_range() {
        let h = family(500);
        let idx: Vec<u32> = (0..50).map(|i| i * 7).collect();
        let val: Vec<f32> = (0..50).map(|i| (i as f32).cos()).collect();
        for k in keys_of(&h, SparseVecRef::new(&idx, &val)) {
            assert!(k < 64);
        }
    }

    #[test]
    fn empty_input_densifies_to_valid_keys() {
        let h = family(100);
        let keys = keys_of(&h, SparseVecRef::new(&[], &[]));
        assert_eq!(keys.len(), 32);
        assert!(keys.iter().all(|&k| k < 64));
    }

    #[test]
    fn dense_and_sparse_agree_on_full_support() {
        let h = family(64);
        let dense: Vec<f32> = (0..64).map(|i| ((i * 37 % 64) as f32) - 20.0).collect();
        let idx: Vec<u32> = (0..64).collect();
        let mut scratch = h.make_scratch();
        let mut dense_keys = vec![0u32; h.tables()];
        h.keys_dense(&dense, &mut scratch, &mut dense_keys);
        let sparse_keys = keys_of(&h, SparseVecRef::new(&idx, &dense));
        assert_eq!(dense_keys, sparse_keys);
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        let h = family(256);
        let mut scratch = h.make_scratch();
        let mut k1 = vec![0u32; h.tables()];
        let mut k2 = vec![0u32; h.tables()];
        let mut k3 = vec![0u32; h.tables()];
        let a_idx = [1u32, 50, 200];
        let a_val = [3.0f32, 1.0, -1.0];
        let b_idx = [7u32, 90];
        let b_val = [0.5f32, 0.25];
        h.keys_sparse(SparseVecRef::new(&a_idx, &a_val), &mut scratch, &mut k1);
        h.keys_sparse(SparseVecRef::new(&b_idx, &b_val), &mut scratch, &mut k2);
        h.keys_sparse(SparseVecRef::new(&a_idx, &a_val), &mut scratch, &mut k3);
        assert_eq!(k1, k3, "state leaked between computations");
        assert_ne!(k1, k2, "different inputs should (overwhelmingly) differ");
    }

    #[test]
    fn similar_inputs_collide_more_than_dissimilar() {
        // LSH property (statistical): vectors sharing most mass collide on
        // more tables than near-orthogonal ones.
        let h = DwtaHash::new(DwtaConfig {
            dim: 512,
            key_bits: 6,
            tables: 128,
            bin_size: 16,
            seed: 99,
        });
        let base_idx: Vec<u32> = (0..64).map(|i| i * 8).collect();
        let base_val: Vec<f32> = (0..64).map(|i| 1.0 + (i as f32 * 0.1).sin()).collect();
        // Similar: same support, values perturbed slightly.
        let sim_val: Vec<f32> = base_val.iter().map(|v| v + 0.01).collect();
        // Dissimilar: disjoint support.
        let dis_idx: Vec<u32> = (0..64).map(|i| i * 8 + 3).collect();
        let dis_val: Vec<f32> = (0..64).map(|i| 1.0 + (i as f32 * 0.3).cos()).collect();

        let kb = keys_of(&h, SparseVecRef::new(&base_idx, &base_val));
        let ks = keys_of(&h, SparseVecRef::new(&base_idx, &sim_val));
        let kd = keys_of(&h, SparseVecRef::new(&dis_idx, &dis_val));
        let collide = |a: &[u32], b: &[u32]| a.iter().zip(b).filter(|(x, y)| x == y).count();
        let sim_c = collide(&kb, &ks);
        let dis_c = collide(&kb, &kd);
        assert!(
            sim_c > dis_c + 16,
            "similar pairs should collide far more: sim={sim_c} dis={dis_c}"
        );
    }

    #[test]
    fn key_bits_not_multiple_of_bin_bits() {
        // key_bits = 6, bin_size = 4 (2 bits/bin) -> 3 bins per table.
        let h = DwtaHash::new(DwtaConfig {
            dim: 100,
            key_bits: 6,
            tables: 4,
            bin_size: 4,
            seed: 1,
        });
        assert_eq!(h.bins_per_table(), 3);
        let idx = [5u32, 50];
        let val = [1.0f32, 2.0];
        for k in keys_of(&h, SparseVecRef::new(&idx, &val)) {
            assert!(k < 64);
        }
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn dense_wrong_dim_panics() {
        let h = family(64);
        let mut s = h.make_scratch();
        let mut keys = vec![0u32; h.tables()];
        h.keys_dense(&[1.0; 32], &mut s, &mut keys);
    }
}
