//! Runtime-selected LSH family: SLIDE picks DWTA or SimHash per layer based
//! on the workload (DWTA for Amazon-670K/WikiLSH-325K, SimHash for Text8).

use crate::dwta::{DwtaConfig, DwtaHash, DwtaScratch};
use crate::srp::{SimHash, SimHashConfig, SimHashScratch};
use slide_mem::SparseVecRef;

/// An LSH family instance: either densified winner-take-all or signed random
/// projection, behind one dispatching API so layers are family-agnostic.
#[derive(Debug, Clone)]
pub enum LshFamily {
    /// Densified winner-take-all (§4.3.3).
    Dwta(DwtaHash),
    /// Signed random projection / SimHash.
    Srp(SimHash),
}

/// Reusable scratch matching the family that created it.
#[derive(Debug, Clone)]
pub enum LshScratch {
    /// Scratch for [`LshFamily::Dwta`].
    Dwta(DwtaScratch),
    /// Scratch for [`LshFamily::Srp`].
    Srp(SimHashScratch),
}

impl LshFamily {
    /// Build a DWTA family.
    pub fn dwta(config: DwtaConfig) -> Self {
        LshFamily::Dwta(DwtaHash::new(config))
    }

    /// Build a SimHash family.
    pub fn simhash(config: SimHashConfig) -> Self {
        LshFamily::Srp(SimHash::new(config))
    }

    /// Number of tables (`L`).
    pub fn tables(&self) -> usize {
        match self {
            LshFamily::Dwta(h) => h.tables(),
            LshFamily::Srp(h) => h.tables(),
        }
    }

    /// Bits per table key (`K`).
    pub fn key_bits(&self) -> u32 {
        match self {
            LshFamily::Dwta(h) => h.key_bits(),
            LshFamily::Srp(h) => h.key_bits(),
        }
    }

    /// Input dimensionality this family hashes.
    pub fn dim(&self) -> usize {
        match self {
            LshFamily::Dwta(h) => h.dim(),
            LshFamily::Srp(h) => h.dim(),
        }
    }

    /// Allocate scratch of the matching variant.
    pub fn make_scratch(&self) -> LshScratch {
        match self {
            LshFamily::Dwta(h) => LshScratch::Dwta(h.make_scratch()),
            LshFamily::Srp(h) => LshScratch::Srp(h.make_scratch()),
        }
    }

    /// Compute the `L` table keys for a dense input.
    ///
    /// # Panics
    ///
    /// Panics if the scratch variant does not match the family, the input
    /// length differs from [`LshFamily::dim`], or `keys_out.len()` differs
    /// from [`LshFamily::tables`].
    pub fn keys_dense(&self, x: &[f32], scratch: &mut LshScratch, keys_out: &mut [u32]) {
        match (self, scratch) {
            (LshFamily::Dwta(h), LshScratch::Dwta(s)) => h.keys_dense(x, s, keys_out),
            (LshFamily::Srp(h), LshScratch::Srp(s)) => h.keys_dense(x, s, keys_out),
            _ => panic!("LshFamily: scratch variant mismatch"),
        }
    }

    /// Compute the `L` table keys for a sparse input.
    ///
    /// # Panics
    ///
    /// As [`LshFamily::keys_dense`].
    pub fn keys_sparse(&self, x: SparseVecRef<'_>, scratch: &mut LshScratch, keys_out: &mut [u32]) {
        match (self, scratch) {
            (LshFamily::Dwta(h), LshScratch::Dwta(s)) => h.keys_sparse(x, s, keys_out),
            (LshFamily::Srp(h), LshScratch::Srp(s)) => h.keys_sparse(x, s, keys_out),
            _ => panic!("LshFamily: scratch variant mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_direct_calls() {
        let cfg = DwtaConfig {
            dim: 64,
            key_bits: 6,
            tables: 8,
            bin_size: 16,
            seed: 11,
        };
        let direct = DwtaHash::new(cfg);
        let fam = LshFamily::dwta(cfg);
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut ds = direct.make_scratch();
        let mut fs = fam.make_scratch();
        let mut dk = vec![0u32; 8];
        let mut fk = vec![0u32; 8];
        direct.keys_dense(&x, &mut ds, &mut dk);
        fam.keys_dense(&x, &mut fs, &mut fk);
        assert_eq!(dk, fk);
        assert_eq!(fam.tables(), 8);
        assert_eq!(fam.key_bits(), 6);
        assert_eq!(fam.dim(), 64);
    }

    #[test]
    fn srp_variant_dispatches() {
        let fam = LshFamily::simhash(SimHashConfig {
            dim: 16,
            key_bits: 5,
            tables: 4,
            seed: 2,
        });
        let mut scratch = fam.make_scratch();
        let mut keys = vec![0u32; 4];
        let x: Vec<f32> = (0..16).map(|i| i as f32 - 8.0).collect();
        fam.keys_dense(&x, &mut scratch, &mut keys);
        assert!(keys.iter().all(|&k| k < 32));
    }

    #[test]
    #[should_panic(expected = "scratch variant mismatch")]
    fn mismatched_scratch_panics() {
        let dwta = LshFamily::dwta(DwtaConfig {
            dim: 8,
            ..Default::default()
        });
        let srp = LshFamily::simhash(SimHashConfig {
            dim: 8,
            ..Default::default()
        });
        let mut wrong = srp.make_scratch();
        let mut keys = vec![0u32; dwta.tables()];
        dwta.keys_dense(&[0.0; 8], &mut wrong, &mut keys);
    }
}
