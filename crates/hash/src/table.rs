//! Multi-table LSH bucket storage — the structure queried on every SLIDE
//! forward pass and updated after every gradient step (§2, Figure 1).
//!
//! `L` tables, each with `2^K` buckets of neuron ids ("pointers only" in the
//! paper's figure). Buckets are bounded; when full, either FIFO-evict or
//! reservoir-sample — both policies exist in the original SLIDE code and are
//! exposed here for ablation.

use crate::mix::{mix3, reduce};

/// What to do when inserting into a full bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BucketPolicy {
    /// Evict the oldest entry (ring-buffer semantics).
    Fifo,
    /// Keep a uniform sample of everything ever inserted (SLIDE's default).
    #[default]
    Reservoir,
}

#[derive(Debug, Clone, Default)]
struct Bucket {
    items: Vec<u32>,
    /// Total insertions ever attempted (drives reservoir sampling).
    arrivals: u64,
}

/// A set of `L` LSH tables with `2^K` bounded buckets each.
///
/// # Examples
///
/// ```
/// use slide_hash::{BucketPolicy, LshTables};
///
/// let mut tables = LshTables::new(4, 6, 128, BucketPolicy::Reservoir, 42);
/// tables.insert(&[1, 2, 3, 4], 99); // neuron 99's key in each of the 4 tables
/// let mut out = Vec::new();
/// tables.query_into(&[1, 2, 3, 4], &mut out);
/// assert!(out.contains(&99));
/// ```
#[derive(Debug, Clone)]
pub struct LshTables {
    tables: Vec<Vec<Bucket>>,
    key_bits: u32,
    bucket_cap: usize,
    policy: BucketPolicy,
    seed: u64,
}

/// [`LshTables`] flattened to CSR arrays for snapshot persistence: the
/// three arrays map one-to-one onto the snapshot's LSH sections, so a
/// loaded model references them without re-hashing any rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TablesCsr {
    /// Prefix sums over all `L * 2^K` buckets (row-major by table);
    /// `offsets[b]..offsets[b+1]` indexes bucket `b`'s slice of `items`.
    pub offsets: Vec<u32>,
    /// Concatenated bucket contents, per-bucket order preserved.
    pub items: Vec<u32>,
    /// Per-bucket arrival counters (reservoir-sampling history).
    pub arrivals: Vec<u64>,
}

/// Occupancy statistics, used by tests and the bench harness to sanity-check
/// hash quality.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TableStats {
    /// Total ids stored across all tables.
    pub stored: usize,
    /// Buckets holding at least one id.
    pub occupied_buckets: usize,
    /// Total buckets across all tables.
    pub total_buckets: usize,
    /// Largest single bucket.
    pub max_bucket: usize,
}

impl LshTables {
    /// Create `tables` empty tables of `2^key_bits` buckets, each bounded to
    /// `bucket_cap` ids.
    ///
    /// # Panics
    ///
    /// Panics if `tables == 0`, `key_bits == 0` or `key_bits > 24`, or
    /// `bucket_cap == 0`.
    pub fn new(
        tables: usize,
        key_bits: u32,
        bucket_cap: usize,
        policy: BucketPolicy,
        seed: u64,
    ) -> Self {
        assert!(tables > 0, "LshTables: need at least one table");
        assert!(key_bits > 0 && key_bits <= 24, "LshTables: key_bits 1..=24");
        assert!(bucket_cap > 0, "LshTables: bucket_cap must be positive");
        let buckets = 1usize << key_bits;
        LshTables {
            tables: (0..tables)
                .map(|_| vec![Bucket::default(); buckets])
                .collect(),
            key_bits,
            bucket_cap,
            policy,
            seed,
        }
    }

    /// Number of tables (`L`).
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Bits per key (`K`); each table has `2^K` buckets.
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Maximum ids per bucket.
    pub fn bucket_cap(&self) -> usize {
        self.bucket_cap
    }

    /// The eviction policy in use.
    pub fn policy(&self) -> BucketPolicy {
        self.policy
    }

    /// Insert `id` into bucket `keys[t]` of every table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != self.tables()` or any key is `>= 2^K`.
    pub fn insert(&mut self, keys: &[u32], id: u32) {
        assert_eq!(keys.len(), self.tables.len(), "LshTables: keys per table");
        for (t, &key) in keys.iter().enumerate() {
            let bucket = &mut self.tables[t][key as usize];
            bucket.arrivals += 1;
            if bucket.items.len() < self.bucket_cap {
                bucket.items.push(id);
            } else {
                match self.policy {
                    BucketPolicy::Fifo => {
                        bucket.items.remove(0);
                        bucket.items.push(id);
                    }
                    BucketPolicy::Reservoir => {
                        // Uniform reservoir: replace a random slot with
                        // probability cap/arrivals, deterministically derived
                        // from (table, key, arrivals).
                        let r = reduce(
                            mix3(self.seed ^ (t as u64) << 32, key as u64, bucket.arrivals),
                            bucket.arrivals as usize,
                        );
                        if r < self.bucket_cap {
                            bucket.items[r] = id;
                        }
                    }
                }
            }
        }
    }

    /// Remove `id` from bucket `keys[t]` of every table `t` (no-op for
    /// tables where it is absent). Used when a neuron's weights change enough
    /// that it must move buckets ("deleted from the current bucket and
    /// re-added", §2).
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != self.tables()`.
    pub fn remove(&mut self, keys: &[u32], id: u32) {
        assert_eq!(keys.len(), self.tables.len(), "LshTables: keys per table");
        for (t, &key) in keys.iter().enumerate() {
            let bucket = &mut self.tables[t][key as usize];
            if let Some(pos) = bucket.items.iter().position(|&x| x == id) {
                bucket.items.swap_remove(pos);
            }
        }
    }

    /// Append the contents of bucket `keys[t]` of every table to `out`
    /// (duplicates across tables are *not* removed here — the active-set
    /// builder deduplicates with a stamp array).
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != self.tables()`.
    pub fn query_into(&self, keys: &[u32], out: &mut Vec<u32>) {
        assert_eq!(keys.len(), self.tables.len(), "LshTables: keys per table");
        for (t, &key) in keys.iter().enumerate() {
            out.extend_from_slice(&self.tables[t][key as usize].items);
        }
    }

    /// Multiprobe query: besides bucket `keys[t]`, also probe the buckets
    /// whose keys differ in one low-order bit, visiting up to `probes`
    /// buckets per table in total. Multiprobe trades extra bucket reads for
    /// fewer tables at equal recall (Lv et al. 2007) — an ablation knob on
    /// top of the paper's plain `L`-table query.
    ///
    /// `probes == 1` is identical to [`LshTables::query_into`].
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != self.tables()` or `probes == 0`.
    pub fn query_multiprobe_into(&self, keys: &[u32], probes: usize, out: &mut Vec<u32>) {
        assert_eq!(keys.len(), self.tables.len(), "LshTables: keys per table");
        assert!(probes > 0, "LshTables: probes must be positive");
        let max_extra = (probes - 1).min(self.key_bits as usize);
        for (t, &key) in keys.iter().enumerate() {
            out.extend_from_slice(&self.tables[t][key as usize].items);
            for bit in 0..max_extra {
                let neighbour = key ^ (1 << bit);
                out.extend_from_slice(&self.tables[t][neighbour as usize].items);
            }
        }
    }

    /// Contents of one bucket (test/inspection hook).
    pub fn bucket(&self, table: usize, key: u32) -> &[u32] {
        &self.tables[table][key as usize].items
    }

    /// A copy of these tables keeping only the ids for which `keep` returns
    /// true, preserving per-bucket order. This is how a sharded serving
    /// engine derives its per-shard tables from one frozen global build:
    /// because every surviving id keeps its bucket and relative position,
    /// the union of a partition's retrievals is exactly the original
    /// tables' retrieval set — bucket-cap eviction happened once, globally,
    /// before the split, so it cannot diverge between the partitions.
    ///
    /// `arrivals` counters are preserved; the copy is intended to be frozen
    /// (further inserts would reservoir-sample against the pre-split
    /// arrival history).
    pub fn retained(&self, keep: &dyn Fn(u32) -> bool) -> LshTables {
        let mut out = self.clone();
        for table in &mut out.tables {
            for bucket in table.iter_mut() {
                bucket.items.retain(|&id| keep(id));
            }
        }
        out
    }

    /// Remove every id from every bucket (rebuild prologue).
    pub fn clear(&mut self) {
        for table in &mut self.tables {
            for bucket in table.iter_mut() {
                bucket.items.clear();
                bucket.arrivals = 0;
            }
        }
    }

    /// Flatten the tables into CSR form for snapshot persistence: one
    /// prefix-sum `offsets` array over all `L * 2^K` buckets (row-major:
    /// table 0's buckets, then table 1's, …), the concatenated bucket
    /// `items`, and the per-bucket `arrivals` counters. Per-bucket item
    /// order is preserved, so a [`LshTables::from_csr`] round trip is
    /// bit-identical — including [`LshTables::retained`] partitions and
    /// reservoir behaviour on any further inserts (arrival history travels
    /// with the data).
    pub fn to_csr(&self) -> TablesCsr {
        let buckets = self.tables.len() << self.key_bits;
        let mut csr = TablesCsr {
            offsets: Vec::with_capacity(buckets + 1),
            items: Vec::with_capacity(self.stats().stored),
            arrivals: Vec::with_capacity(buckets),
        };
        csr.offsets.push(0);
        for table in &self.tables {
            for bucket in table {
                csr.items.extend_from_slice(&bucket.items);
                csr.offsets.push(csr.items.len() as u32);
                csr.arrivals.push(bucket.arrivals);
            }
        }
        csr
    }

    /// Rebuild tables from [`LshTables::to_csr`] output plus the structural
    /// parameters the CSR does not carry.
    ///
    /// # Errors
    ///
    /// Returns a message when the CSR shape disagrees with
    /// `tables`/`key_bits` (wrong array lengths, non-monotonic offsets, a
    /// bucket larger than `bucket_cap`) — snapshot corruption must surface
    /// as an error, never a panic.
    pub fn from_csr(
        tables: usize,
        key_bits: u32,
        bucket_cap: usize,
        policy: BucketPolicy,
        seed: u64,
        csr: &TablesCsr,
    ) -> Result<Self, String> {
        if tables == 0 || key_bits == 0 || key_bits > 24 || bucket_cap == 0 {
            return Err(format!(
                "LshTables csr: bad shape (tables={tables}, key_bits={key_bits}, bucket_cap={bucket_cap})"
            ));
        }
        let buckets = tables << key_bits;
        if csr.offsets.len() != buckets + 1 || csr.arrivals.len() != buckets {
            return Err(format!(
                "LshTables csr: {} offsets / {} arrivals for {buckets} buckets",
                csr.offsets.len(),
                csr.arrivals.len()
            ));
        }
        if csr.offsets[0] != 0 || *csr.offsets.last().expect("non-empty") != csr.items.len() as u32
        {
            return Err(format!(
                "LshTables csr: offsets span [{}, {}] over {} items",
                csr.offsets[0],
                csr.offsets.last().expect("non-empty"),
                csr.items.len()
            ));
        }
        let mut out = LshTables::new(tables, key_bits, bucket_cap, policy, seed);
        let per_table = 1usize << key_bits;
        for b in 0..buckets {
            let (start, end) = (csr.offsets[b] as usize, csr.offsets[b + 1] as usize);
            if end < start {
                return Err(format!("LshTables csr: offsets decrease at bucket {b}"));
            }
            if end - start > bucket_cap {
                return Err(format!(
                    "LshTables csr: bucket {b} holds {} ids, cap {bucket_cap}",
                    end - start
                ));
            }
            let bucket = &mut out.tables[b / per_table][b % per_table];
            bucket.items = csr.items[start..end].to_vec();
            bucket.arrivals = csr.arrivals[b];
        }
        Ok(out)
    }

    /// Occupancy statistics across all tables.
    pub fn stats(&self) -> TableStats {
        let mut s = TableStats::default();
        for table in &self.tables {
            for bucket in table {
                s.total_buckets += 1;
                if !bucket.items.is_empty() {
                    s.occupied_buckets += 1;
                }
                s.stored += bucket.items.len();
                s.max_bucket = s.max_bucket.max(bucket.items.len());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_roundtrip() {
        let mut t = LshTables::new(3, 4, 16, BucketPolicy::Reservoir, 1);
        t.insert(&[1, 2, 3], 7);
        t.insert(&[1, 0, 3], 8);
        let mut out = Vec::new();
        t.query_into(&[1, 2, 3], &mut out);
        assert!(out.contains(&7));
        assert!(out.contains(&8)); // shares bucket 1 in table 0 and 3 in table 2
        assert_eq!(out.iter().filter(|&&x| x == 7).count(), 3);
    }

    #[test]
    fn remove_deletes_from_every_table() {
        let mut t = LshTables::new(2, 4, 16, BucketPolicy::Fifo, 1);
        t.insert(&[5, 9], 42);
        t.remove(&[5, 9], 42);
        let mut out = Vec::new();
        t.query_into(&[5, 9], &mut out);
        assert!(out.is_empty());
        // Removing again is a no-op.
        t.remove(&[5, 9], 42);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut t = LshTables::new(1, 2, 3, BucketPolicy::Fifo, 1);
        for id in 0..5 {
            t.insert(&[1], id);
        }
        assert_eq!(t.bucket(0, 1), &[2, 3, 4]);
    }

    #[test]
    fn bucket_cap_is_respected_under_both_policies() {
        for policy in [BucketPolicy::Fifo, BucketPolicy::Reservoir] {
            let mut t = LshTables::new(1, 3, 4, policy, 9);
            for id in 0..100 {
                t.insert(&[5], id);
            }
            assert!(t.bucket(0, 5).len() <= 4, "{policy:?}");
        }
    }

    #[test]
    fn reservoir_keeps_late_and_early_items() {
        // A uniform reservoir over 1..=2000 should retain some items beyond
        // the first `cap` arrivals (FIFO-of-first would not).
        let mut t = LshTables::new(1, 1, 32, BucketPolicy::Reservoir, 123);
        for id in 0..2000 {
            t.insert(&[0], id);
        }
        let items = t.bucket(0, 0);
        assert_eq!(items.len(), 32);
        assert!(
            items.iter().any(|&id| id >= 1000),
            "reservoir never replaced: {items:?}"
        );
        let mean = items.iter().map(|&x| x as f64).sum::<f64>() / 32.0;
        assert!(
            (300.0..1700.0).contains(&mean),
            "reservoir badly skewed, mean={mean}"
        );
    }

    #[test]
    fn multiprobe_one_equals_plain_query() {
        let mut t = LshTables::new(3, 4, 16, BucketPolicy::Reservoir, 5);
        for id in 0..40 {
            t.insert(&[id % 16, (id + 1) % 16, (id + 2) % 16], id);
        }
        let keys = [3u32, 7, 11];
        let mut plain = Vec::new();
        let mut multi = Vec::new();
        t.query_into(&keys, &mut plain);
        t.query_multiprobe_into(&keys, 1, &mut multi);
        assert_eq!(plain, multi);
    }

    #[test]
    fn multiprobe_returns_superset_from_neighbour_buckets() {
        let mut t = LshTables::new(1, 4, 16, BucketPolicy::Reservoir, 5);
        t.insert(&[0b0101], 1); // exact bucket
        t.insert(&[0b0100], 2); // hamming-1 neighbour (bit 0)
        t.insert(&[0b0111], 3); // hamming-1 neighbour (bit 1)
        t.insert(&[0b1101], 4); // hamming-1 neighbour (bit 3) — beyond 3 probes
        let mut out = Vec::new();
        t.query_multiprobe_into(&[0b0101], 3, &mut out);
        assert!(out.contains(&1));
        assert!(out.contains(&2));
        assert!(out.contains(&3));
        assert!(!out.contains(&4), "bit 3 flip needs probes >= 4");
        // Probes capped by key-bits: huge probe counts are safe.
        let mut all = Vec::new();
        t.query_multiprobe_into(&[0b0101], 100, &mut all);
        assert!(all.contains(&4));
    }

    #[test]
    fn retained_partitions_exactly() {
        // Overflowing buckets force reservoir eviction; the even/odd
        // partition of the *frozen* tables must still union back to the
        // original retrieval set, in order.
        let mut t = LshTables::new(2, 2, 4, BucketPolicy::Reservoir, 77);
        for id in 0..64 {
            t.insert(&[id % 4, (id + 1) % 4], id);
        }
        let even = t.retained(&|id| id % 2 == 0);
        let odd = t.retained(&|id| id % 2 == 1);
        for table in 0..2 {
            for key in 0..4u32 {
                let original = t.bucket(table, key);
                let mut merged: Vec<u32> = Vec::new();
                let (mut e, mut o) = (0usize, 0usize);
                // Stable partition: replaying the original order consumes
                // both halves exactly.
                for &id in original {
                    if id % 2 == 0 {
                        assert_eq!(even.bucket(table, key)[e], id);
                        e += 1;
                    } else {
                        assert_eq!(odd.bucket(table, key)[o], id);
                        o += 1;
                    }
                    merged.push(id);
                }
                assert_eq!(e, even.bucket(table, key).len());
                assert_eq!(o, odd.bucket(table, key).len());
            }
        }
        assert_eq!(
            even.stats().stored + odd.stats().stored,
            t.stats().stored,
            "partition must cover every stored id exactly once"
        );
    }

    #[test]
    fn clear_empties_everything() {
        let mut t = LshTables::new(2, 3, 8, BucketPolicy::Reservoir, 5);
        for id in 0..20 {
            t.insert(&[id % 8, (id + 1) % 8], id);
        }
        assert!(t.stats().stored > 0);
        t.clear();
        let s = t.stats();
        assert_eq!(s.stored, 0);
        assert_eq!(s.occupied_buckets, 0);
        assert_eq!(s.total_buckets, 16);
    }

    #[test]
    fn stats_count_correctly() {
        let mut t = LshTables::new(2, 2, 8, BucketPolicy::Fifo, 5);
        t.insert(&[0, 1], 1);
        t.insert(&[0, 2], 2);
        let s = t.stats();
        assert_eq!(s.stored, 4);
        assert_eq!(s.occupied_buckets, 3); // table0/bucket0 (x2), table1/bucket1, table1/bucket2
        assert_eq!(s.max_bucket, 2);
        assert_eq!(s.total_buckets, 8);
    }

    #[test]
    #[should_panic(expected = "keys per table")]
    fn wrong_key_count_panics() {
        let mut t = LshTables::new(2, 2, 8, BucketPolicy::Fifo, 5);
        t.insert(&[0], 1);
    }

    #[test]
    fn csr_round_trip_is_bit_identical() {
        let mut t = LshTables::new(3, 4, 8, BucketPolicy::Reservoir, 0xBEEF);
        for id in 0..200 {
            t.insert(&[id % 16, (id * 7 + 1) % 16, (id * 3 + 5) % 16], id);
        }
        let csr = t.to_csr();
        let back = LshTables::from_csr(3, 4, 8, BucketPolicy::Reservoir, 0xBEEF, &csr).unwrap();
        assert_eq!(back.stats(), t.stats());
        for table in 0..3 {
            for key in 0..16u32 {
                assert_eq!(back.bucket(table, key), t.bucket(table, key));
            }
        }
        // Arrival history travels too: the same insert lands identically in
        // the original and the round-tripped copy (reservoir determinism).
        let mut a = t.clone();
        let mut b = back.clone();
        for id in 200..260 {
            a.insert(&[id % 16, (id * 7 + 1) % 16, (id * 3 + 5) % 16], id);
            b.insert(&[id % 16, (id * 7 + 1) % 16, (id * 3 + 5) % 16], id);
        }
        for table in 0..3 {
            for key in 0..16u32 {
                assert_eq!(a.bucket(table, key), b.bucket(table, key));
            }
        }
        assert_eq!(back.to_csr(), csr, "second export is stable");
    }

    #[test]
    fn csr_rejects_malformed_shapes() {
        let mut t = LshTables::new(2, 2, 4, BucketPolicy::Reservoir, 9);
        for id in 0..30 {
            t.insert(&[id % 4, (id + 1) % 4], id);
        }
        let good = t.to_csr();
        let from = |csr: &TablesCsr| LshTables::from_csr(2, 2, 4, BucketPolicy::Reservoir, 9, csr);
        assert!(from(&good).is_ok());

        let mut short = good.clone();
        short.offsets.pop();
        assert!(from(&short).unwrap_err().contains("offsets"));

        let mut overrun = good.clone();
        *overrun.offsets.last_mut().unwrap() += 1;
        assert!(from(&overrun).is_err());

        let mut fat = good.clone();
        // Cram every item into the first bucket: exceeds bucket_cap.
        let n = fat.items.len() as u32;
        for o in fat.offsets.iter_mut().skip(1) {
            *o = n;
        }
        assert!(from(&fat).unwrap_err().contains("cap"));

        let mut arrivals = good.clone();
        arrivals.arrivals.pop();
        assert!(from(&arrivals).is_err());

        assert!(
            LshTables::from_csr(0, 2, 4, BucketPolicy::Reservoir, 9, &good).is_err(),
            "zero tables is an error, not a panic"
        );
    }
}
