//! MinHash — the classic LSH family for *set* (binary presence) data,
//! provided alongside DWTA/SimHash because extreme-classification features
//! are often binary bags of tokens where Jaccard similarity is the natural
//! metric. (The original SLIDE codebase ships a WTA/DWTA/SRP/MinHash family
//! menu; we match it.)
//!
//! Each elementary hash is `min` over the input's indices of a universal
//! hash of the index; `K` of them concatenate into a table key. Values are
//! ignored — MinHash sees the support set only.

use crate::mix::mix3;
use slide_mem::SparseVecRef;

/// Configuration for a [`MinHash`] family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinHashConfig {
    /// Input dimensionality (indices must be `< dim`).
    pub dim: usize,
    /// Bits per table key `K`; each elementary min-hash contributes
    /// `bits_per_hash` of them.
    pub key_bits: u32,
    /// Bits taken from each elementary min-hash (1..=key_bits).
    pub bits_per_hash: u32,
    /// Number of tables `L`.
    pub tables: usize,
    /// Seed for the universal hash family.
    pub seed: u64,
}

impl Default for MinHashConfig {
    fn default() -> Self {
        MinHashConfig {
            dim: 128,
            key_bits: 6,
            bits_per_hash: 3,
            tables: 50,
            seed: 0x3121_4A58,
        }
    }
}

/// Reusable scratch for [`MinHash`] (currently stateless; kept for API
/// symmetry with the other families).
#[derive(Debug, Clone, Default)]
pub struct MinHashScratch {}

/// The MinHash LSH family over index sets.
///
/// # Examples
///
/// ```
/// use slide_hash::{MinHash, MinHashConfig};
/// use slide_mem::SparseVecRef;
///
/// let mh = MinHash::new(MinHashConfig { dim: 1000, tables: 8, ..Default::default() });
/// let mut scratch = mh.make_scratch();
/// let mut keys = vec![0u32; 8];
/// let idx = [3u32, 77, 450];
/// let val = [1.0f32, 1.0, 1.0];
/// mh.keys_sparse(SparseVecRef::new(&idx, &val), &mut scratch, &mut keys);
/// assert!(keys.iter().all(|&k| k < 64));
/// ```
#[derive(Debug, Clone)]
pub struct MinHash {
    config: MinHashConfig,
    hashes_per_table: usize,
}

impl MinHash {
    /// Build the family.
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is 0 or > 24, `bits_per_hash` is 0 or exceeds
    /// `key_bits`, or `dim`/`tables` is 0.
    pub fn new(config: MinHashConfig) -> Self {
        assert!(config.key_bits > 0 && config.key_bits <= 24);
        assert!(
            config.bits_per_hash > 0 && config.bits_per_hash <= config.key_bits,
            "MinHash: bits_per_hash must be in 1..=key_bits"
        );
        assert!(config.dim > 0, "MinHash: dim must be positive");
        assert!(config.tables > 0, "MinHash: tables must be positive");
        let hashes_per_table = config.key_bits.div_ceil(config.bits_per_hash) as usize;
        MinHash {
            config,
            hashes_per_table,
        }
    }

    /// The configuration this family was built with.
    pub fn config(&self) -> &MinHashConfig {
        &self.config
    }

    /// Number of tables (`L`).
    pub fn tables(&self) -> usize {
        self.config.tables
    }

    /// Bits per table key (`K`).
    pub fn key_bits(&self) -> u32 {
        self.config.key_bits
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Elementary min-hashes concatenated per key.
    pub fn hashes_per_table(&self) -> usize {
        self.hashes_per_table
    }

    /// Allocate scratch (stateless, for API symmetry).
    pub fn make_scratch(&self) -> MinHashScratch {
        MinHashScratch::default()
    }

    /// Compute the `L` table keys for a sparse input (values ignored; the
    /// support set defines the hash). Empty inputs hash to key 0.
    ///
    /// # Panics
    ///
    /// Panics if `keys_out.len() != self.tables()`.
    pub fn keys_sparse(
        &self,
        x: SparseVecRef<'_>,
        _scratch: &mut MinHashScratch,
        keys_out: &mut [u32],
    ) {
        assert_eq!(
            keys_out.len(),
            self.config.tables,
            "MinHash: keys_out length must equal tables()"
        );
        let mask = (1u64 << self.config.key_bits) - 1;
        let hash_mask = (1u64 << self.config.bits_per_hash) - 1;
        for (t, key) in keys_out.iter_mut().enumerate() {
            let mut bits: u64 = 0;
            for h in 0..self.hashes_per_table {
                let hash_id = (t * self.hashes_per_table + h) as u64;
                let mut best = u64::MAX;
                for &idx in x.indices {
                    let v = mix3(self.config.seed, hash_id, idx as u64);
                    if v < best {
                        best = v;
                    }
                }
                let code = if best == u64::MAX {
                    0
                } else {
                    best & hash_mask
                };
                bits = (bits << self.config.bits_per_hash) | code;
            }
            *key = (bits & mask) as u32;
        }
    }

    /// Compute keys for a dense vector: the support set is every coordinate
    /// with a non-zero value.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `keys_out.len() != self.tables()`.
    pub fn keys_dense(&self, x: &[f32], scratch: &mut MinHashScratch, keys_out: &mut [u32]) {
        assert_eq!(
            x.len(),
            self.config.dim,
            "MinHash: dense input dim mismatch"
        );
        let indices: Vec<u32> = (0..x.len() as u32)
            .filter(|&i| x[i as usize] != 0.0)
            .collect();
        let values = vec![1.0_f32; indices.len()];
        self.keys_sparse(SparseVecRef::new(&indices, &values), scratch, keys_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(dim: usize, tables: usize) -> MinHash {
        MinHash::new(MinHashConfig {
            dim,
            key_bits: 6,
            bits_per_hash: 3,
            tables,
            seed: 11,
        })
    }

    fn keys_of(h: &MinHash, idx: &[u32]) -> Vec<u32> {
        let vals = vec![1.0_f32; idx.len()];
        let mut scratch = h.make_scratch();
        let mut keys = vec![0u32; h.tables()];
        h.keys_sparse(SparseVecRef::new(idx, &vals), &mut scratch, &mut keys);
        keys
    }

    #[test]
    fn deterministic_and_in_range() {
        let h = family(10_000, 16);
        let idx = [5u32, 900, 7777];
        assert_eq!(keys_of(&h, &idx), keys_of(&h, &idx));
        assert!(keys_of(&h, &idx).iter().all(|&k| k < 64));
    }

    #[test]
    fn values_are_ignored() {
        let h = family(100, 8);
        let idx = [1u32, 50, 99];
        let a = {
            let mut scratch = h.make_scratch();
            let mut keys = vec![0u32; 8];
            h.keys_sparse(
                SparseVecRef::new(&idx, &[1.0, 1.0, 1.0]),
                &mut scratch,
                &mut keys,
            );
            keys
        };
        let b = {
            let mut scratch = h.make_scratch();
            let mut keys = vec![0u32; 8];
            h.keys_sparse(
                SparseVecRef::new(&idx, &[9.0, -3.0, 0.5]),
                &mut scratch,
                &mut keys,
            );
            keys
        };
        assert_eq!(a, b);
    }

    #[test]
    fn jaccard_similar_sets_collide_more() {
        let h = family(10_000, 256);
        let base: Vec<u32> = (0..60).map(|i| i * 37).collect();
        // High-Jaccard variant: drop 6 elements.
        let similar: Vec<u32> = base[..54].to_vec();
        // Low-Jaccard set: disjoint support.
        let dissimilar: Vec<u32> = (0..60).map(|i| i * 37 + 13).collect();
        let kb = keys_of(&h, &base);
        let ks = keys_of(&h, &similar);
        let kd = keys_of(&h, &dissimilar);
        let collide = |a: &[u32], b: &[u32]| a.iter().zip(b).filter(|(x, y)| x == y).count();
        let sim = collide(&kb, &ks);
        let dis = collide(&kb, &kd);
        assert!(sim > dis + 10, "similar {sim} vs dissimilar {dis}");
    }

    #[test]
    fn empty_set_hashes_to_zero_keys() {
        let h = family(100, 4);
        assert_eq!(keys_of(&h, &[]), vec![0; 4]);
    }

    #[test]
    fn dense_and_sparse_agree() {
        let h = family(32, 8);
        let mut dense = vec![0.0_f32; 32];
        for i in [1usize, 7, 30] {
            dense[i] = 2.0;
        }
        let mut scratch = h.make_scratch();
        let mut dense_keys = vec![0u32; 8];
        h.keys_dense(&dense, &mut scratch, &mut dense_keys);
        assert_eq!(dense_keys, keys_of(&h, &[1, 7, 30]));
    }

    #[test]
    #[should_panic(expected = "bits_per_hash")]
    fn invalid_bits_per_hash_panics() {
        MinHash::new(MinHashConfig {
            bits_per_hash: 9,
            key_bits: 6,
            ..Default::default()
        });
    }
}
