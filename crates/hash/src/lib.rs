//! Locality-sensitive hashing substrate for the SLIDE reproduction.
//!
//! SLIDE replaces the full-softmax inner-product search with approximate
//! maximum-inner-product sampling: neurons are indexed into `L` hash tables
//! of `2^K` buckets keyed by an LSH family, and each input queries the tables
//! to retrieve a tiny "active set" of high-activation neurons (§2 of
//! "Accelerating SLIDE Deep Learning on Modern CPUs", after Chen et al. 2019).
//!
//! This crate provides:
//!
//! * [`DwtaHash`] — densified winner-take-all hashing (Chen & Shrivastava
//!   2018), vectorized per §4.3.3, used for the extreme-classification
//!   workloads (`K = 6, L = 400` on Amazon-670K in the paper),
//! * [`SimHash`] — signed random projection, used for Text8
//!   (`K = 9, L = 50`),
//! * [`LshFamily`] — runtime selector between the two,
//! * [`LshTables`] — the `L x 2^K` bounded-bucket index with FIFO and
//!   reservoir insertion policies, insert/remove/query/rebuild,
//! * [`mix`] — the universal integer-hash family underlying all of it.
//!
//! # Examples
//!
//! Index a few "neurons" by their weight vectors and retrieve candidates for
//! a query:
//!
//! ```
//! use slide_hash::{BucketPolicy, DwtaConfig, LshFamily, LshTables};
//!
//! let family = LshFamily::dwta(DwtaConfig { dim: 32, key_bits: 6, tables: 8, ..Default::default() });
//! let mut tables = LshTables::new(8, 6, 64, BucketPolicy::Reservoir, 7);
//! let mut scratch = family.make_scratch();
//! let mut keys = vec![0u32; 8];
//!
//! let neuron_weights: Vec<Vec<f32>> = (0..10)
//!     .map(|n| (0..32).map(|c| ((n * 13 + c * 7) % 11) as f32).collect())
//!     .collect();
//! for (id, w) in neuron_weights.iter().enumerate() {
//!     family.keys_dense(w, &mut scratch, &mut keys);
//!     tables.insert(&keys, id as u32);
//! }
//!
//! // Querying with neuron 3's own weights must retrieve neuron 3.
//! family.keys_dense(&neuron_weights[3], &mut scratch, &mut keys);
//! let mut candidates = Vec::new();
//! tables.query_into(&keys, &mut candidates);
//! assert!(candidates.contains(&3));
//! ```

mod dwta;
mod family;
mod minhash;
pub mod mix;
mod srp;
mod table;

pub use dwta::{DwtaConfig, DwtaHash, DwtaScratch};
pub use family::{LshFamily, LshScratch};
pub use minhash::{MinHash, MinHashConfig, MinHashScratch};
pub use srp::{SimHash, SimHashConfig, SimHashScratch};
pub use table::{BucketPolicy, LshTables, TableStats, TablesCsr};
