//! Fast, deterministic integer mixers used as the universal hash family
//! behind DWTA index mapping, densification probing, SimHash sign bits, and
//! reservoir sampling. All derived from the SplitMix64 finalizer, which has
//! full avalanche and costs a handful of cycles.

/// SplitMix64 finalizer: bijective 64-bit avalanche mix.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mix a seed with one value.
#[inline]
pub fn mix2(seed: u64, a: u64) -> u64 {
    mix64(seed ^ mix64(a))
}

/// Mix a seed with two values.
#[inline]
pub fn mix3(seed: u64, a: u64, b: u64) -> u64 {
    mix64(seed ^ mix64(a).wrapping_add(mix64(b).rotate_left(17)))
}

/// Map a 64-bit hash onto `[0, n)` without modulo bias (Lemire reduction).
#[inline]
pub fn reduce(h: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    (((h as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_eq!(mix2(1, 2), mix2(1, 2));
        assert_eq!(mix3(1, 2, 3), mix3(1, 2, 3));
    }

    #[test]
    fn mix_differs_across_inputs_and_seeds() {
        assert_ne!(mix2(1, 2), mix2(1, 3));
        assert_ne!(mix2(1, 2), mix2(2, 2));
        assert_ne!(mix3(1, 2, 3), mix3(1, 3, 2));
    }

    #[test]
    fn reduce_stays_in_range_and_spreads() {
        let n = 97;
        let mut counts = vec![0usize; n];
        for i in 0..97_000u64 {
            let r = reduce(mix64(i), n);
            assert!(r < n);
            counts[r] += 1;
        }
        // Each cell expects ~1000; allow generous slack.
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
    }

    #[test]
    fn avalanche_flips_about_half_the_bits() {
        let mut total = 0u32;
        for i in 0..1000u64 {
            total += (mix64(i) ^ mix64(i ^ 1)).count_ones();
        }
        let avg = total as f64 / 1000.0;
        assert!((24.0..40.0).contains(&avg), "avg flipped bits {avg}");
    }
}
