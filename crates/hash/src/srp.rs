//! SimHash (signed random projection) — the LSH family the paper uses for
//! the Text8 word2vec workload (`K = 9`, `L = 50`).
//!
//! Each hash bit is the sign of a projection onto an implicit ±1 hyperplane:
//! the sign for (bit, coordinate) is drawn from a universal hash, so no dense
//! random matrix is materialized even for million-dimensional inputs. 64 sign
//! bits are generated per mix call, which keeps the per-coordinate cost at
//! `ceil(K*L/64)` integer mixes.

use crate::mix::mix3;
use slide_mem::SparseVecRef;

/// Configuration for a [`SimHash`] family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimHashConfig {
    /// Input dimensionality.
    pub dim: usize,
    /// Bits per table key `K` (tables have `2^K` buckets).
    pub key_bits: u32,
    /// Number of tables `L`.
    pub tables: usize,
    /// Seed for the implicit hyperplanes.
    pub seed: u64,
}

impl Default for SimHashConfig {
    fn default() -> Self {
        SimHashConfig {
            dim: 128,
            key_bits: 9,
            tables: 50,
            seed: 0x51A1_4A5E,
        }
    }
}

/// Reusable per-thread scratch for [`SimHash`] computations.
#[derive(Debug, Clone)]
pub struct SimHashScratch {
    /// One accumulator per hash bit (K*L total).
    acc: Vec<f32>,
}

/// The signed-random-projection LSH family.
///
/// # Examples
///
/// ```
/// use slide_hash::{SimHash, SimHashConfig};
///
/// let srp = SimHash::new(SimHashConfig { dim: 32, key_bits: 9, tables: 8, ..Default::default() });
/// let mut scratch = srp.make_scratch();
/// let mut keys = vec![0u32; 8];
/// let x: Vec<f32> = (0..32).map(|i| i as f32 - 16.0).collect();
/// srp.keys_dense(&x, &mut scratch, &mut keys);
/// assert!(keys.iter().all(|&k| k < 512));
/// ```
#[derive(Debug, Clone)]
pub struct SimHash {
    config: SimHashConfig,
    total_bits: usize,
}

impl SimHash {
    /// Build the family.
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is 0 or > 24, or if `dim`/`tables` is 0.
    pub fn new(config: SimHashConfig) -> Self {
        assert!(config.key_bits > 0 && config.key_bits <= 24);
        assert!(config.dim > 0, "SimHash: dim must be positive");
        assert!(config.tables > 0, "SimHash: tables must be positive");
        let total_bits = config.key_bits as usize * config.tables;
        SimHash { config, total_bits }
    }

    /// The configuration this family was built with.
    pub fn config(&self) -> &SimHashConfig {
        &self.config
    }

    /// Number of tables (`L`).
    pub fn tables(&self) -> usize {
        self.config.tables
    }

    /// Bits per table key (`K`).
    pub fn key_bits(&self) -> u32 {
        self.config.key_bits
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Allocate scratch sized for this family.
    pub fn make_scratch(&self) -> SimHashScratch {
        SimHashScratch {
            acc: vec![0.0; self.total_bits],
        }
    }

    /// Compute the `L` table keys for a sparse input.
    ///
    /// # Panics
    ///
    /// Panics if `keys_out.len() != self.tables()`.
    pub fn keys_sparse(
        &self,
        x: SparseVecRef<'_>,
        scratch: &mut SimHashScratch,
        keys_out: &mut [u32],
    ) {
        scratch.acc.fill(0.0);
        for (idx, v) in x.iter() {
            self.accumulate(idx as usize, v, &mut scratch.acc);
        }
        self.collect_keys(&scratch.acc, keys_out);
    }

    /// Compute the `L` table keys for a dense input of length `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or `keys_out.len() != self.tables()`.
    pub fn keys_dense(&self, x: &[f32], scratch: &mut SimHashScratch, keys_out: &mut [u32]) {
        assert_eq!(
            x.len(),
            self.config.dim,
            "SimHash: dense input dim mismatch"
        );
        scratch.acc.fill(0.0);
        for (idx, &v) in x.iter().enumerate() {
            if v != 0.0 {
                self.accumulate(idx, v, &mut scratch.acc);
            }
        }
        self.collect_keys(&scratch.acc, keys_out);
    }

    #[inline]
    fn accumulate(&self, idx: usize, v: f32, acc: &mut [f32]) {
        let words = self.total_bits.div_ceil(64);
        for w in 0..words {
            let mut bits = mix3(self.config.seed, idx as u64, w as u64);
            let base = w * 64;
            let end = (base + 64).min(self.total_bits);
            for slot in acc[base..end].iter_mut() {
                // +v when the sign bit is set, -v otherwise (branchless-ish).
                let sign = if bits & 1 == 1 { v } else { -v };
                *slot += sign;
                bits >>= 1;
            }
        }
    }

    fn collect_keys(&self, acc: &[f32], keys_out: &mut [u32]) {
        assert_eq!(
            keys_out.len(),
            self.config.tables,
            "SimHash: keys_out length must equal tables()"
        );
        let k = self.config.key_bits as usize;
        for (t, key) in keys_out.iter_mut().enumerate() {
            let mut bits: u32 = 0;
            for j in 0..k {
                bits = (bits << 1) | (acc[t * k + j] > 0.0) as u32;
            }
            *key = bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(dim: usize, tables: usize) -> SimHash {
        SimHash::new(SimHashConfig {
            dim,
            key_bits: 9,
            tables,
            seed: 3,
        })
    }

    fn keys_sparse_of(h: &SimHash, idx: &[u32], val: &[f32]) -> Vec<u32> {
        let mut scratch = h.make_scratch();
        let mut keys = vec![0u32; h.tables()];
        h.keys_sparse(SparseVecRef::new(idx, val), &mut scratch, &mut keys);
        keys
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let h = family(1000, 16);
        let idx = [1u32, 500, 999];
        let val = [1.0f32, -2.0, 0.5];
        assert_eq!(
            keys_sparse_of(&h, &idx, &val),
            keys_sparse_of(&h, &idx, &val)
        );
        let h2 = SimHash::new(SimHashConfig {
            seed: 4,
            ..*h.config()
        });
        assert_ne!(
            keys_sparse_of(&h, &idx, &val),
            keys_sparse_of(&h2, &idx, &val)
        );
    }

    #[test]
    fn keys_in_range() {
        let h = family(100, 32);
        let idx: Vec<u32> = (0..20).map(|i| i * 5).collect();
        let val = vec![1.0f32; 20];
        for k in keys_sparse_of(&h, &idx, &val) {
            assert!(k < 512);
        }
    }

    #[test]
    fn scaling_input_preserves_signs() {
        // SimHash depends only on direction, not magnitude. Use power-of-two
        // values and a power-of-two scale so f32 sums are exact and sign
        // flips cannot come from rounding.
        let h = family(64, 16);
        let idx: Vec<u32> = (0..10).collect();
        let val: Vec<f32> = (0..10)
            .map(|i| {
                let mag = [0.25_f32, 0.5, 1.0, 2.0, 4.0][i % 5];
                if i % 3 == 0 {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        let scaled: Vec<f32> = val.iter().map(|v| v * 4.0).collect();
        assert_eq!(
            keys_sparse_of(&h, &idx, &val),
            keys_sparse_of(&h, &idx, &scaled)
        );
    }

    #[test]
    fn dense_and_sparse_agree() {
        let h = family(32, 8);
        let dense: Vec<f32> = (0..32).map(|i| ((i % 5) as f32) - 2.0).collect();
        let idx: Vec<u32> = (0..32).filter(|&i| dense[i as usize] != 0.0).collect();
        let val: Vec<f32> = idx.iter().map(|&i| dense[i as usize]).collect();
        let mut scratch = h.make_scratch();
        let mut dense_keys = vec![0u32; 8];
        h.keys_dense(&dense, &mut scratch, &mut dense_keys);
        assert_eq!(dense_keys, keys_sparse_of(&h, &idx, &val));
    }

    #[test]
    fn cosine_similar_vectors_collide_more() {
        let h = family(256, 128);
        let base: Vec<f32> = (0..256).map(|i| ((i * 31 % 17) as f32) - 8.0).collect();
        let idx: Vec<u32> = (0..256).collect();
        // Slightly perturbed copy vs an unrelated vector.
        let similar: Vec<f32> = base.iter().map(|v| v + 0.05).collect();
        let unrelated: Vec<f32> = (0..256).map(|i| ((i * 57 % 23) as f32) - 11.0).collect();
        let kb = keys_sparse_of(&h, &idx, &base);
        let ks = keys_sparse_of(&h, &idx, &similar);
        let ku = keys_sparse_of(&h, &idx, &unrelated);
        let collide = |a: &[u32], b: &[u32]| a.iter().zip(b).filter(|(x, y)| x == y).count();
        assert!(
            collide(&kb, &ks) > collide(&kb, &ku),
            "similar {} vs unrelated {}",
            collide(&kb, &ks),
            collide(&kb, &ku)
        );
    }

    #[test]
    fn one_hot_inputs_hash_differently() {
        // Text8's input is one-hot; distinct words must spread across buckets.
        let h = family(1000, 4);
        let mut distinct = std::collections::HashSet::new();
        for w in 0..100u32 {
            distinct.insert(keys_sparse_of(&h, &[w], &[1.0]));
        }
        assert!(
            distinct.len() > 90,
            "only {} distinct key sets",
            distinct.len()
        );
    }
}
