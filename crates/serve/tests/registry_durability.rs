//! Registry durability (ISSUE satellite): the `.slsnap` + `ModelRegistry`
//! combination must degrade *loudly* — a torn or bit-flipped file is a
//! checksum rejection, never undefined behavior — and publish must be
//! atomic from a concurrent loader's point of view: the loader sees the
//! old model or the new model, never a hybrid.
//!
//! The snapshots here are real engines built through the unified
//! `slide_quant::Snapshot` API (dev-only dependency cycle, same as the
//! shard-invariance suite), so a "load" below is the full mmap → CRC
//! verify → instantiate path that `slide_netd --snapshot` runs.

use slide_core::{LshConfig, Network, NetworkConfig};
use slide_mem::SparseVecRef;
use slide_quant::Snapshot;
use slide_serve::{FrozenModel, ModelRegistry, SnapshotError, SnapshotSpec};
use std::sync::Arc;

fn tiny_net(seed: u64) -> Network {
    let mut cfg = NetworkConfig::standard(128, 16, 64);
    cfg.seed = seed;
    cfg.lsh = LshConfig {
        tables: 10,
        key_bits: 4,
        min_active: 16,
        ..cfg.lsh
    };
    Network::new(cfg).expect("tiny network")
}

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("slide_durability_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic answer battery: enough queries that two differently
/// seeded models virtually cannot agree on all of them.
fn answers(model: &Arc<dyn FrozenModel>) -> Vec<Vec<u32>> {
    let mut scratch = model.make_scratch_any();
    (0..32u32)
        .map(|q| {
            let idx = [q % 128, (q * 7 + 3) % 128, (q * 31 + 11) % 128];
            let val = [1.0f32, -0.5, 0.25];
            model.predict_any(
                SparseVecRef::new(&idx, &val),
                5,
                &mut *scratch,
                u64::from(q),
            )
        })
        .collect()
}

#[test]
fn torn_and_flipped_files_are_checksum_rejections_not_ub() {
    let root = tmp_root("torn");
    let registry = ModelRegistry::open(&root).expect("open registry");
    let net = tiny_net(7);
    let snap = Snapshot::build(&net, &SnapshotSpec::i8()).expect("build snapshot");
    let version = registry.publish(snap.bytes()).expect("publish");
    let path = registry.version_path(version);
    let pristine = std::fs::read(&path).expect("read published file");

    // Sanity: the pristine file loads.
    slide_quant::snapshot::load(&path).expect("pristine snapshot loads");

    // Torn writes: every truncation point must be a typed rejection.
    for cut in [0, 1, 37, 64, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&path, &pristine[..cut]).expect("truncate");
        let err = slide_quant::snapshot::load(&path).expect_err("truncated file accepted");
        assert!(
            matches!(err, SnapshotError::Corrupt(_)),
            "cut at {cut}: expected Corrupt, got {err}"
        );
    }

    // Bit flips: header, section table, payload, and the final byte. A
    // flip in the version field reads as an unknown format rather than a
    // CRC mismatch — either way it must be a typed refusal.
    for flip in [4, 40, 70, pristine.len() / 2, pristine.len() - 1] {
        let mut bytes = pristine.clone();
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = slide_quant::snapshot::load(&path).expect_err("flipped byte accepted");
        assert!(
            matches!(
                err,
                SnapshotError::Corrupt(_) | SnapshotError::Unsupported(_)
            ),
            "flip at {flip}: expected Corrupt/Unsupported, got {err}"
        );
    }

    // The pristine bytes still load after all that abuse.
    std::fs::write(&path, &pristine).expect("restore");
    slide_quant::snapshot::load(&path).expect("restored snapshot loads");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn publish_is_atomic_under_a_concurrent_loader() {
    let root = tmp_root("atomic");
    let registry = ModelRegistry::open(&root).expect("open registry");

    // Two distinguishable models; the loader must only ever see one of
    // their answer sets, never an error and never a mixture.
    let snap_a = Snapshot::build(&tiny_net(1), &SnapshotSpec::f32()).expect("snapshot a");
    let snap_b = Snapshot::build(&tiny_net(2), &SnapshotSpec::f32()).expect("snapshot b");
    let want_a = answers(&snap_a.model().expect("model a"));
    let want_b = answers(&snap_b.model().expect("model b"));
    assert_ne!(want_a, want_b, "seeds 1 and 2 built identical models");
    registry.publish(snap_a.bytes()).expect("publish v1");

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let loader = scope.spawn(|| {
            let mut seen_a = 0u32;
            let mut seen_b = 0u32;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let path = registry
                    .current_path()
                    .expect("current pointer readable")
                    .expect("published before the loader started");
                // The loader may race a publish: the version file itself is
                // immutable once the pointer lands, so load must succeed.
                let model = slide_quant::snapshot::load(&path).expect("mid-publish load");
                let got = answers(&model);
                if got == want_a {
                    seen_a += 1;
                } else if got == want_b {
                    seen_b += 1;
                } else {
                    panic!("loader observed a model that is neither A nor B");
                }
            }
            (seen_a, seen_b)
        });
        // Publisher: alternate the two images as fast as the disk allows.
        for i in 0..20 {
            let image = if i % 2 == 0 {
                snap_b.bytes()
            } else {
                snap_a.bytes()
            };
            registry.publish(image).expect("publish");
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        let (seen_a, seen_b) = loader.join().expect("loader thread");
        assert!(
            seen_a + seen_b > 0,
            "loader never completed a load during the publish storm"
        );
    });
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crashed_publish_is_swept_on_open_and_registry_state_is_unaffected() {
    let root = tmp_root("crash_sweep");
    let registry = ModelRegistry::open(&root).expect("open registry");
    let snap = Snapshot::build(&tiny_net(3), &SnapshotSpec::f32()).expect("snapshot");
    let want = answers(&snap.model().expect("model"));
    registry.publish(snap.bytes()).expect("publish v1");

    // Simulate a publisher that died between temp-write and rename: a
    // fully written temp for the never-published v2 (dead pid) plus a torn
    // CURRENT temp in the root. u32::MAX can never be a live pid.
    let versions_dir = root.join("versions");
    let orphan_ver = versions_dir.join(format!(".v000002.slsnap.tmp.{}.0", u32::MAX));
    let orphan_cur = root.join(format!(".CURRENT.tmp.{}.1", u32::MAX));
    std::fs::write(&orphan_ver, snap.bytes()).expect("write orphan");
    std::fs::write(&orphan_cur, b"2").expect("write orphan pointer");

    // Re-open (a restarted publisher or a fresh loader): orphans gone,
    // published state byte-identical.
    let registry = ModelRegistry::open(&root).expect("re-open registry");
    assert!(!orphan_ver.exists(), "orphaned version temp not swept");
    assert!(!orphan_cur.exists(), "orphaned CURRENT temp not swept");
    assert_eq!(registry.versions().expect("versions"), vec![1]);
    assert_eq!(registry.current_version().expect("current"), Some(1));
    let model =
        slide_quant::snapshot::load(&registry.current_path().expect("path").expect("published"))
            .expect("v1 still loads after sweep");
    assert_eq!(answers(&model), want, "sweep must not disturb v1's bytes");

    // The next publish after the crash allocates v2 cleanly.
    assert_eq!(registry.publish(snap.bytes()).expect("publish v2"), 2);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rollback_round_trips_to_the_previous_models_answers() {
    let root = tmp_root("rollback");
    let registry = ModelRegistry::open(&root).expect("open registry");
    let snap_a = Snapshot::build(&tiny_net(1), &SnapshotSpec::i8()).expect("snapshot a");
    let snap_b = Snapshot::build(&tiny_net(2), &SnapshotSpec::i8()).expect("snapshot b");
    let want_a = answers(&snap_a.model().expect("model a"));
    let want_b = answers(&snap_b.model().expect("model b"));

    let load_current = || {
        let path = registry
            .current_path()
            .expect("current readable")
            .expect("something published");
        slide_quant::snapshot::load(&path).expect("load current")
    };

    registry.publish(snap_a.bytes()).expect("publish a");
    registry.publish(snap_b.bytes()).expect("publish b");
    assert_eq!(answers(&load_current()), want_b, "live model should be B");

    let live = registry.rollback().expect("rollback");
    assert_eq!(live, 1);
    assert_eq!(
        answers(&load_current()),
        want_a,
        "rollback must serve the previous model's exact answers"
    );

    // Roll forward again via activate: the pair is fully reversible.
    registry.activate(2).expect("activate v2");
    assert_eq!(answers(&load_current()), want_b);
    let _ = std::fs::remove_dir_all(&root);
}
