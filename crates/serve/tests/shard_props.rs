//! Shard-invariance property suite (ISSUE 5 acceptance battery).
//!
//! * On a *trained* snapshot, for N ∈ {1, 2, 3, 7} shards, contiguous and
//!   strided plans, f32 and i8 precisions: `predict_sparse` top-k ids and
//!   P@1 are **identical** to the unsharded engine of the same precision.
//! * Proptest generalization: arbitrary (untrained) network seeds and
//!   query batteries keep the sharded/unsharded top-k equal.
//! * Mixed-precision hot-swap stress: 5 client threads hammer a
//!   [`BatchingServer`] over one sharded model while 4 rounds of per-shard
//!   publishes flip alternating shards f32↔i8 — 0 errors, no torn reads
//!   (every response well-formed), extending the PR 4 `quant_props` stress
//!   pattern to per-shard granularity.
//!
//! The whole file runs green under forced `SLIDE_SIMD={scalar,avx2,auto}`
//! (the CI matrix): equivalence is *within* one process's resolved kernel
//! set, which is exactly what serving guarantees.

use proptest::prelude::*;
use slide_core::{LshConfig, Network, NetworkConfig, Trainer, TrainerConfig};
use slide_data::{generate_synthetic, Dataset, SynthConfig};
use slide_mem::SparseVecRef;
use slide_quant::{i8_engines, p_at_1, shard_i8, QuantizedFrozenNetwork};
use slide_serve::{
    BatchConfig, BatchingServer, FrozenModel, FrozenNetwork, ShardPlan, ShardedFrozenModel,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn plans(shards: usize, rows: usize) -> [ShardPlan; 2] {
    [
        ShardPlan::contiguous(shards, rows).unwrap(),
        ShardPlan::strided(shards, rows).unwrap(),
    ]
}

fn untrained_net(seed: u64, hidden: usize) -> Network {
    let mut cfg = NetworkConfig::standard(256, hidden, 96);
    cfg.seed = seed;
    cfg.lsh = LshConfig {
        tables: 10,
        key_bits: 5,
        min_active: 24,
        ..Default::default()
    };
    Network::new(cfg).unwrap()
}

fn query_battery(n: usize, input_dim: usize) -> Vec<(Vec<u32>, Vec<f32>)> {
    (0..n)
        .map(|s| {
            let nnz = 2 + s % 6;
            let mut idx: Vec<u32> = (0..nnz)
                .map(|j| ((s * 37 + j * 101 + 7) % input_dim) as u32)
                .collect();
            idx.sort_unstable();
            idx.dedup();
            let val: Vec<f32> = idx
                .iter()
                .enumerate()
                .map(|(j, _)| 0.2 + ((s + j) % 5) as f32 * 0.4 - 0.4)
                .collect();
            (idx, val)
        })
        .collect()
}

/// One trained network + synthetic test split shared by the invariance
/// tests (training once keeps the battery fast under every SLIDE_SIMD leg).
fn trained() -> &'static (Network, Dataset) {
    static TRAINED: OnceLock<(Network, Dataset)> = OnceLock::new();
    TRAINED.get_or_init(|| {
        let data = generate_synthetic(&SynthConfig {
            feature_dim: 256,
            label_dim: 64,
            n_train: 600,
            n_test: 300,
            proto_nnz: 12,
            keep_fraction: 0.8,
            noise_nnz: 2,
            labels_per_sample: 1,
            zipf_exponent: 0.4,
            seed: 11,
        });
        let mut cfg = NetworkConfig::standard(256, 24, 64);
        cfg.lsh = LshConfig {
            tables: 12,
            key_bits: 5,
            min_active: 16,
            ..Default::default()
        };
        let mut tc = TrainerConfig {
            batch_size: 64,
            learning_rate: 2e-3,
            threads: 2,
            ..Default::default()
        };
        tc.rebuild.initial_period = 5;
        let mut trainer = Trainer::new(Network::new(cfg).unwrap(), tc).unwrap();
        for epoch in 0..6 {
            trainer.train_epoch(&data.train, epoch);
        }
        (trainer.into_network(), data.test)
    })
}

/// P@1 of the f32 sharded sampled path, same protocol as
/// `slide_quant::p_at_1` (salt = sample index).
fn p_at_1_sharded_f32(model: &ShardedFrozenModel, data: &Dataset) -> f64 {
    let mut scratch = model.make_scratch();
    let (mut hits, mut total) = (0usize, 0usize);
    for i in 0..data.len() {
        let labels = data.labels(i);
        if labels.is_empty() {
            continue;
        }
        let topk = model.predict_sparse(data.features(i), 1, &mut scratch, i as u64);
        total += 1;
        if topk.first().is_some_and(|p| labels.contains(p)) {
            hits += 1;
        }
    }
    hits as f64 / total.max(1) as f64
}

fn p_at_1_sharded_any(model: &ShardedFrozenModel, data: &Dataset) -> f64 {
    // Same loop through the type-erased entry point (what the server runs).
    let mut scratch = model.make_scratch_any();
    let (mut hits, mut total) = (0usize, 0usize);
    for i in 0..data.len() {
        let labels = data.labels(i);
        if labels.is_empty() {
            continue;
        }
        let topk = model.predict_any(data.features(i), 1, scratch.as_mut(), i as u64);
        total += 1;
        if topk.first().is_some_and(|p| labels.contains(p)) {
            hits += 1;
        }
    }
    hits as f64 / total.max(1) as f64
}

#[test]
fn trained_f32_sharding_is_invariant_in_topk_and_p_at_1() {
    let (net, test) = trained();
    let frozen = FrozenNetwork::freeze(net);
    let mut fs = frozen.make_scratch();
    let reference_p1 = {
        let mut hits = 0usize;
        let mut total = 0usize;
        for i in 0..test.len() {
            let labels = test.labels(i);
            if labels.is_empty() {
                continue;
            }
            let topk = frozen.predict_sparse(test.features(i), 1, &mut fs, i as u64);
            total += 1;
            if topk.first().is_some_and(|p| labels.contains(p)) {
                hits += 1;
            }
        }
        hits as f64 / total.max(1) as f64
    };
    assert!(reference_p1 > 0.3, "f32 reference P@1 {reference_p1:.3}");

    for shards in SHARD_COUNTS {
        for plan in plans(shards, 64) {
            let sharded = ShardedFrozenModel::shard_f32(net, plan).unwrap();
            let mut ss = sharded.make_scratch();
            for i in 0..test.len().min(64) {
                let x = test.features(i);
                assert_eq!(
                    sharded.predict_sparse(x, 5, &mut ss, i as u64),
                    frozen.predict_sparse(x, 5, &mut fs, i as u64),
                    "top-5 diverged: {shards} shards {} sample {i}",
                    plan.kind_label()
                );
            }
            let sharded_p1 = p_at_1_sharded_f32(&sharded, test);
            assert_eq!(
                sharded_p1,
                reference_p1,
                "P@1 diverged: {shards} shards {}",
                plan.kind_label()
            );
        }
    }
}

#[test]
fn trained_i8_sharding_is_invariant_in_topk_and_p_at_1() {
    let (net, test) = trained();
    let quant = QuantizedFrozenNetwork::quantize(net);
    let mut qs = quant.make_scratch();
    let reference_p1 = p_at_1(&quant, test);

    for shards in SHARD_COUNTS {
        for plan in plans(shards, 64) {
            let sharded = shard_i8(net, plan).unwrap();
            let mut ss = sharded.make_scratch();
            for i in 0..test.len().min(64) {
                let x = test.features(i);
                assert_eq!(
                    sharded.predict_sparse(x, 5, &mut ss, i as u64),
                    quant.predict_sparse(x, 5, &mut qs, i as u64),
                    "i8 top-5 diverged: {shards} shards {} sample {i}",
                    plan.kind_label()
                );
            }
            let sharded_p1 = p_at_1_sharded_any(&sharded, test);
            assert_eq!(
                sharded_p1,
                reference_p1,
                "i8 P@1 diverged: {shards} shards {}",
                plan.kind_label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Generative coverage beyond the trained snapshot: arbitrary network
    // seeds and hidden widths, every shard count and plan, both
    // precisions — the scatter-gather merge must reproduce the unsharded
    // top-k exactly.
    #[test]
    fn arbitrary_networks_shard_invariantly(seed in 0u64..1000, hidden in 16usize..64) {
        let net = untrained_net(seed, hidden);
        let frozen = FrozenNetwork::freeze(&net);
        let quant = QuantizedFrozenNetwork::quantize(&net);
        let queries = query_battery(12, 256);
        let mut fs = frozen.make_scratch();
        let mut qs = quant.make_scratch();
        for shards in SHARD_COUNTS {
            for plan in plans(shards, 96) {
                let sharded_f32 = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
                let sharded_i8 = shard_i8(&net, plan).unwrap();
                let mut sf = sharded_f32.make_scratch();
                let mut si = sharded_i8.make_scratch();
                for (s, (idx, val)) in queries.iter().enumerate() {
                    let x = SparseVecRef::new(idx, val);
                    // An all-zero hidden activation against untrained zero
                    // biases ties every logit at exactly 0.0; tie order is
                    // shard-major vs table-major and explicitly outside the
                    // bit-equality contract (slide_serve::shard docs).
                    frozen.forward_hidden(x, &mut fs);
                    if fs.acts.last().unwrap().as_slice().iter().all(|&v| v == 0.0) {
                        continue;
                    }
                    prop_assert_eq!(
                        sharded_f32.predict_sparse(x, 4, &mut sf, s as u64),
                        frozen.predict_sparse(x, 4, &mut fs, s as u64),
                        "f32 {} shards {} sample {}", shards, plan.kind_label(), s
                    );
                    prop_assert_eq!(
                        sharded_i8.predict_sparse(x, 4, &mut si, s as u64),
                        quant.predict_sparse(x, 4, &mut qs, s as u64),
                        "i8 {} shards {} sample {}", shards, plan.kind_label(), s
                    );
                }
            }
        }
    }
}

/// Mixed-precision per-shard hot-swap under sustained load: 5 clients ×
/// 4 publish rounds flipping alternating shards f32↔i8, 0 errors, every
/// response well-formed, and the final precision stamp proves the swaps
/// landed.
#[test]
fn per_shard_precision_hot_swap_under_load_never_errors() {
    let (net, test) = trained();
    let plan = ShardPlan::contiguous(4, 64).unwrap();
    let model = Arc::new(ShardedFrozenModel::shard_f32(net, plan).unwrap());
    let f32_shards = ShardedFrozenModel::f32_engines(net, &plan).unwrap();
    let i8_shards = i8_engines(net, &plan).unwrap();

    let server = Arc::new(
        BatchingServer::start(
            model.clone() as Arc<dyn FrozenModel>,
            BatchConfig {
                max_batch: 32,
                max_wait: Duration::from_micros(300),
                queue_cap: 256,
                threads: 2,
            },
        )
        .unwrap(),
    );
    assert_eq!(server.stats().precision, "f32");

    let stop = Arc::new(AtomicBool::new(false));
    let clients = 5usize;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut n = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let x = test.features((c * 31 + n) % test.len());
                    let topk = server
                        .predict(x.indices, x.values, 3)
                        .expect("request failed during per-shard hot-swap");
                    assert_eq!(topk.len(), 3, "torn response");
                    n += 1;
                }
            });
        }
        // 4 publish rounds: each flips two alternating shards to the other
        // precision while traffic is in flight.
        for round in 0..4usize {
            std::thread::sleep(Duration::from_millis(40));
            let (a, b) = if round % 2 == 0 { (0, 2) } else { (1, 3) };
            if round < 2 {
                model.publish_shard(a, i8_shards[a].clone()).unwrap();
                model.publish_shard(b, i8_shards[b].clone()).unwrap();
            } else {
                model.publish_shard(a, f32_shards[a].clone()).unwrap();
                model.publish_shard(b, f32_shards[b].clone()).unwrap();
            }
        }
        // Land on a mixed configuration so the stamp proves per-shard
        // granularity survived the churn.
        model.publish_shard(1, i8_shards[1].clone()).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        stop.store(true, Ordering::Relaxed);
    });

    let stats = server.stats();
    assert_eq!(stats.errors, 0, "per-shard hot-swap produced errors");
    assert!(stats.served > clients as u64 * 10);
    assert_eq!(stats.precision, "mixed");
    assert_eq!(model.shard_precision_label(), "f32|i8|f32|f32");
}
