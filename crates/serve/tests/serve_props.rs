//! Cross-crate serving properties:
//!
//! * the frozen forward pass is equivalent across SIMD dispatch levels
//!   (scalar reference vs the best level this host offers) — the serving
//!   twin of `slide-simd`'s kernel-equivalence suite, exercised through the
//!   whole hash → active-set → fused-forward pipeline;
//! * the micro-batching server survives sustained concurrent load with
//!   hot-swaps landing mid-traffic, without a single request error;
//! * a frozen snapshot of a *trained* network actually serves accurate
//!   predictions (P@1 parity with the trainer's own sampled evaluation).

use slide_core::{EvalMode, LshConfig, Network, NetworkConfig, Trainer, TrainerConfig};
use slide_data::{generate_synthetic, SynthConfig};
use slide_mem::SparseVecRef;
use slide_serve::{BatchConfig, BatchingServer, FrozenNetwork};
use slide_simd::{detected_level, policy, set_policy, SimdLevel, SimdPolicy};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that mutate or depend on the process-wide SIMD policy
/// (the default test runner interleaves tests on threads).
fn policy_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_queries(n: usize, input_dim: usize) -> Vec<(Vec<u32>, Vec<f32>)> {
    (0..n)
        .map(|s| {
            let nnz = 3 + s % 5;
            let idx: Vec<u32> = (0..nnz)
                .map(|j| ((s * 31 + j * 97 + 13) % input_dim) as u32)
                .collect();
            let mut idx = idx;
            idx.sort_unstable();
            idx.dedup();
            let val: Vec<f32> = idx
                .iter()
                .enumerate()
                .map(|(j, _)| 0.25 + ((s + j) % 7) as f32 * 0.3)
                .collect();
            (idx, val)
        })
        .collect()
}

fn frozen_net(seed: u64) -> FrozenNetwork {
    let mut cfg = NetworkConfig::standard(512, 32, 256);
    cfg.seed = seed;
    cfg.lsh = LshConfig {
        tables: 12,
        key_bits: 5,
        min_active: 32,
        ..Default::default()
    };
    FrozenNetwork::freeze(&Network::new(cfg).unwrap())
}

/// Scalar vs best-available SIMD: hidden activations must agree within
/// float-reassociation tolerance and the retrieved top-k must agree on the
/// overwhelming majority of queries (hash keys are computed from those
/// activations, so bit-level drift can flip a rare borderline bucket).
#[test]
fn predict_sparse_is_equivalent_across_simd_levels() {
    let _guard = policy_guard();
    let best = detected_level();
    if best == SimdLevel::Scalar {
        return; // nothing to compare on a scalar-only host
    }
    // Restore whatever policy the process runs under (e.g. a forced
    // SLIDE_SIMD CI leg) — resetting to Auto here would silently un-force
    // every later test in this binary.
    let prior = policy();
    let frozen = frozen_net(42);
    let queries = test_queries(64, frozen.input_dim());

    let run_at = |p: SimdPolicy| {
        set_policy(p);
        let mut scratch = frozen.make_scratch();
        let mut acts: Vec<Vec<f32>> = Vec::new();
        let mut topk: Vec<Vec<u32>> = Vec::new();
        for (s, (idx, val)) in queries.iter().enumerate() {
            let x = SparseVecRef::new(idx, val);
            frozen.forward_hidden(x, &mut scratch);
            acts.push(scratch.acts.last().unwrap().as_slice().to_vec());
            topk.push(frozen.predict_sparse(x, 5, &mut scratch, s as u64));
        }
        (acts, topk)
    };

    let (scalar_acts, scalar_topk) = run_at(SimdPolicy::Force(SimdLevel::Scalar));
    let (simd_acts, simd_topk) = run_at(SimdPolicy::Auto);
    set_policy(prior);

    for (q, (a, b)) in scalar_acts.iter().zip(&simd_acts).enumerate() {
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            let tol = 1e-4_f32.max(1e-4 * x.abs());
            assert!(
                (x - y).abs() <= tol,
                "query {q} act[{i}]: scalar {x} vs simd {y}"
            );
        }
    }
    let agree = scalar_topk
        .iter()
        .zip(&simd_topk)
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        agree * 10 >= queries.len() * 9,
        "only {agree}/{} top-k agreements between scalar and {best}",
        queries.len()
    );
}

/// Many concurrent readers on one `Arc<FrozenNetwork>` (no server in the
/// way) must see identical results to a serial run — the `&self` lock-free
/// contract.
#[test]
fn concurrent_readers_match_serial_results() {
    let _guard = policy_guard();
    let frozen = Arc::new(frozen_net(7));
    let queries = Arc::new(test_queries(48, frozen.input_dim()));
    let mut scratch = frozen.make_scratch();
    let serial: Vec<Vec<u32>> = queries
        .iter()
        .enumerate()
        .map(|(s, (idx, val))| {
            frozen.predict_sparse(SparseVecRef::new(idx, val), 4, &mut scratch, s as u64)
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..6 {
            let frozen = Arc::clone(&frozen);
            let queries = Arc::clone(&queries);
            let serial = serial.clone();
            scope.spawn(move || {
                let mut scratch = frozen.make_scratch();
                for (s, (idx, val)) in queries.iter().enumerate() {
                    let topk = frozen.predict_sparse(
                        SparseVecRef::new(idx, val),
                        4,
                        &mut scratch,
                        s as u64,
                    );
                    assert_eq!(topk, serial[s], "query {s} diverged under concurrency");
                }
            });
        }
    });
}

/// The acceptance scenario: ≥4 client threads hammer the micro-batcher
/// while snapshots are hot-swapped mid-traffic; every request must succeed.
#[test]
fn hot_swap_under_concurrent_load_never_errors() {
    let server = Arc::new(
        BatchingServer::start(
            frozen_net(1),
            BatchConfig {
                max_batch: 32,
                max_wait: Duration::from_micros(300),
                queue_cap: 256,
                threads: 2,
            },
        )
        .unwrap(),
    );
    let queries = Arc::new(test_queries(32, 512));
    let stop = Arc::new(AtomicBool::new(false));
    let clients = 5usize;

    std::thread::scope(|scope| {
        for c in 0..clients {
            let server = Arc::clone(&server);
            let queries = Arc::clone(&queries);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (idx, val) = &queries[(c * 7 + n as usize) % queries.len()];
                    let topk = server
                        .predict(idx, val, 3)
                        .expect("request failed during hot-swap load");
                    assert_eq!(topk.len(), 3);
                    n += 1;
                }
                n
            });
        }
        // Publish fresh snapshots while traffic is in flight.
        for swap in 0..4u64 {
            std::thread::sleep(Duration::from_millis(60));
            server.publish(frozen_net(100 + swap));
        }
        std::thread::sleep(Duration::from_millis(60));
        stop.store(true, Ordering::Relaxed);
    });

    let stats = server.stats();
    assert_eq!(stats.errors, 0, "hot-swap load produced request errors");
    assert_eq!(stats.hot_swaps, 4);
    assert!(
        stats.served > clients as u64 * 10,
        "suspiciously little traffic: {}",
        stats.served
    );
    assert!(stats.latency.p50_us > 0 && stats.latency.p50_us <= stats.latency.p99_us);
}

/// Freeze a *trained* network and check the frozen sampled path tracks the
/// trainer's own sampled evaluation — the end-to-end accuracy contract of
/// the serving snapshot.
#[test]
fn frozen_snapshot_of_trained_network_serves_accurately() {
    let data = generate_synthetic(&SynthConfig {
        feature_dim: 256,
        label_dim: 64,
        n_train: 600,
        n_test: 150,
        proto_nnz: 12,
        keep_fraction: 0.8,
        noise_nnz: 2,
        labels_per_sample: 1,
        zipf_exponent: 0.4,
        seed: 11,
    });
    let mut cfg = NetworkConfig::standard(256, 24, 64);
    cfg.lsh = LshConfig {
        tables: 12,
        key_bits: 5,
        min_active: 16,
        ..Default::default()
    };
    let mut tc = TrainerConfig {
        batch_size: 64,
        learning_rate: 2e-3,
        threads: 2,
        ..Default::default()
    };
    tc.rebuild.initial_period = 5;
    let mut trainer = Trainer::new(Network::new(cfg).unwrap(), tc).unwrap();
    for epoch in 0..8 {
        trainer.train_epoch(&data.train, epoch);
    }
    let trainer_sampled = trainer.evaluate(&data.test, 1, EvalMode::Sampled, None);

    let frozen = FrozenNetwork::freeze(trainer.network());
    let mut scratch = frozen.make_scratch();
    let mut hits = 0usize;
    let mut total = 0usize;
    for i in 0..data.test.len() {
        let labels = data.test.labels(i);
        if labels.is_empty() {
            continue;
        }
        let topk = frozen.predict_sparse(data.test.features(i), 1, &mut scratch, i as u64);
        total += 1;
        if topk.first().is_some_and(|p| labels.contains(p)) {
            hits += 1;
        }
    }
    let frozen_p1 = hits as f64 / total as f64;
    assert!(
        frozen_p1 > 0.3,
        "frozen P@1 {frozen_p1:.3} should beat chance by a wide margin"
    );
    assert!(
        frozen_p1 > trainer_sampled * 0.8,
        "frozen P@1 {frozen_p1:.3} lags trainer sampled eval {trainer_sampled:.3}"
    );
}
