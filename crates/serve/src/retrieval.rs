//! LSH active-set retrieval shared by every frozen serving engine.
//!
//! The f32 [`crate::FrozenNetwork`] and the int8 engine in `slide-quant`
//! score different arenas but retrieve the *same* active sets: hash the last
//! hidden activation, probe the frozen tables, dedup, and pad
//! deterministically up to `min_active` — exactly what training-time
//! retrieval does minus label forcing. [`ActiveSetSelector`] owns that logic
//! once, so a quantized snapshot retrieves identically to the f32 snapshot
//! it was built from and any P@1 difference between the two is attributable
//! to scoring precision alone.

use slide_core::{LshConfig, StampSet};
use slide_hash::{mix::mix3, LshFamily, LshScratch, LshTables, TableStats};

/// Frozen LSH tables plus the retrieval policy (probes, dedup, padding)
/// around them. Built once at snapshot time; `&self` thereafter.
#[derive(Debug)]
pub struct ActiveSetSelector {
    family: LshFamily,
    tables: LshTables,
    min_active: usize,
    max_active: Option<usize>,
    probes: usize,
    pad_seed: u64,
    rows: usize,
}

/// Per-caller mutable state for [`ActiveSetSelector`] queries (and for
/// inserting rows at build time). One lives inside each engine's serve
/// scratch.
#[derive(Debug)]
pub struct SelectorScratch {
    lsh: LshScratch,
    keys: Vec<u32>,
    candidates: Vec<u32>,
    dedup: StampSet,
}

/// Serving-table seed salt: the tables a selector builds (or loads) for
/// network seed `s` are salted `s ^ TABLE_SEED_SALT`, distinct from the
/// training-side tables. The snapshot loader re-derives it when
/// reconstructing tables from CSR sections.
pub(crate) const TABLE_SEED_SALT: u64 = 0xF0_7AB1;

impl ActiveSetSelector {
    /// Empty tables configured from the network's LSH block. `rows` is the
    /// output dimensionality (padding universe and `min_active` clamp);
    /// `seed` is the network seed (table salt and pad stream derive from it
    /// exactly as the pre-refactor `FrozenNetwork::freeze` did, so frozen
    /// retrieval is bit-compatible with earlier snapshots).
    pub fn new(family: LshFamily, lsh: &LshConfig, rows: usize, seed: u64) -> Self {
        let tables = LshTables::new(
            lsh.tables,
            lsh.key_bits,
            lsh.bucket_cap,
            lsh.policy,
            seed ^ TABLE_SEED_SALT,
        );
        ActiveSetSelector {
            min_active: lsh.min_active.min(rows),
            max_active: lsh.max_active,
            probes: lsh.probes.max(1),
            pad_seed: seed ^ 0x9AD5,
            family,
            tables,
            rows,
        }
    }

    /// Rebuild a selector around already-populated tables — the snapshot
    /// load path. `family`, `lsh`, `rows`, and `seed` must be the ones the
    /// original build used (a snapshot stores the full `NetworkConfig`, so
    /// all of them are reconstructible); `tables` is the frozen table state
    /// itself, round-tripped through `slide_hash::TablesCsr`. The derived
    /// policy fields (`min_active` clamp, probe floor, pad stream) are
    /// computed exactly as [`ActiveSetSelector::new`] computes them, so a
    /// loaded selector retrieves bit-identically to the built one.
    pub fn from_tables(
        family: LshFamily,
        lsh: &LshConfig,
        rows: usize,
        seed: u64,
        tables: LshTables,
    ) -> Self {
        ActiveSetSelector {
            min_active: lsh.min_active.min(rows),
            max_active: lsh.max_active,
            probes: lsh.probes.max(1),
            pad_seed: seed ^ 0x9AD5,
            family,
            tables,
            rows,
        }
    }

    /// The frozen tables themselves (snapshot serialization hook).
    pub fn tables(&self) -> &LshTables {
        &self.tables
    }

    /// Allocate query scratch sized for this selector's family and universe.
    pub fn make_scratch(&self) -> SelectorScratch {
        SelectorScratch {
            lsh: self.family.make_scratch(),
            keys: vec![0; self.family.tables()],
            candidates: Vec::with_capacity(1024),
            dedup: StampSet::new(self.rows),
        }
    }

    /// Hash `row` (output unit `r`'s weight vector, widened to f32) into
    /// every table — the build-time half of the selector.
    pub fn insert(&mut self, r: u32, row: &[f32], scratch: &mut SelectorScratch) {
        self.family
            .keys_dense(row, &mut scratch.lsh, &mut scratch.keys);
        self.tables.insert(&scratch.keys, r);
    }

    /// Occupancy statistics of the frozen tables.
    pub fn stats(&self) -> TableStats {
        self.tables.stats()
    }

    /// Output-unit universe (`rows` at construction).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Retrieval floor: active sets are padded up to this many rows.
    pub fn min_active(&self) -> usize {
        self.min_active
    }

    /// Optional hard cap on the active-set size.
    pub fn max_active(&self) -> Option<usize> {
        self.max_active
    }

    /// Seed of the deterministic cold-table padding stream (exposed so a
    /// sharded model can replay the exact same stream globally at merge
    /// time — see `slide_serve::shard`).
    pub fn pad_seed(&self) -> u64 {
        self.pad_seed
    }

    /// Split this selector into `shards` per-shard retrieval selectors:
    /// shard `s` keeps exactly the ids with `assign(id) == s`, derived by
    /// filtering the *frozen* tables (see `LshTables::retained`) so the
    /// union of the shards' retrievals is bit-for-bit the global retrieval
    /// set. Padding and capping are deliberately absent from the returned
    /// [`ShardSelector`]s: they are global policies the sharded model
    /// applies once, after merging.
    pub fn partition_by(&self, shards: usize, assign: &dyn Fn(u32) -> usize) -> Vec<ShardSelector> {
        (0..shards)
            .map(|s| ShardSelector {
                family: self.family.clone(),
                tables: self.tables.retained(&|id| assign(id) == s),
                probes: self.probes,
            })
            .collect()
    }

    /// Build the active set for hidden activation `h` into `active`:
    /// deduplicated (multi-probe) table retrievals, then deterministic
    /// pseudo-random padding up to `min_active`, capped at `max_active`.
    /// `salt` decorrelates the cold-table padding across queries.
    pub fn select_into(
        &self,
        h: &[f32],
        scratch: &mut SelectorScratch,
        active: &mut Vec<u32>,
        salt: u64,
    ) {
        self.family
            .keys_dense(h, &mut scratch.lsh, &mut scratch.keys);
        scratch.candidates.clear();
        if self.probes > 1 {
            self.tables
                .query_multiprobe_into(&scratch.keys, self.probes, &mut scratch.candidates);
        } else {
            self.tables
                .query_into(&scratch.keys, &mut scratch.candidates);
        }
        scratch.dedup.begin();
        active.clear();
        let cap = self.max_active.unwrap_or(usize::MAX);
        for i in 0..scratch.candidates.len() {
            if active.len() >= cap {
                break;
            }
            let c = scratch.candidates[i];
            if scratch.dedup.insert(c) {
                active.push(c);
            }
        }
        let n = self.rows as u64;
        let want = self.min_active.min(cap);
        let mut attempt = 0u64;
        while active.len() < want {
            let r = (mix3(self.pad_seed, salt, attempt) % n) as u32;
            attempt += 1;
            if scratch.dedup.insert(r) {
                active.push(r);
            }
        }
    }
}

/// One shard's slice of a frozen [`ActiveSetSelector`]: the same family
/// (hence the same per-query keys) over tables holding only the shard's
/// rows. Produces *raw* retrievals — duplicates across tables included,
/// no padding, no cap — because deduplication and padding are global
/// policies the sharded model applies after merging every shard's
/// candidates (see [`ActiveSetSelector::partition_by`]).
#[derive(Debug)]
pub struct ShardSelector {
    family: LshFamily,
    tables: LshTables,
    probes: usize,
}

/// Per-caller mutable state for [`ShardSelector`] queries.
#[derive(Debug)]
pub struct ShardSelectorScratch {
    lsh: LshScratch,
    keys: Vec<u32>,
}

impl ShardSelector {
    /// Allocate query scratch sized for this selector's family.
    pub fn make_scratch(&self) -> ShardSelectorScratch {
        ShardSelectorScratch {
            lsh: self.family.make_scratch(),
            keys: vec![0; self.family.tables()],
        }
    }

    /// Append this shard's raw candidates for hidden activation `h` to
    /// `out` (global row ids; may repeat across tables).
    pub fn retrieve_into(&self, h: &[f32], scratch: &mut ShardSelectorScratch, out: &mut Vec<u32>) {
        self.family
            .keys_dense(h, &mut scratch.lsh, &mut scratch.keys);
        if self.probes > 1 {
            self.tables
                .query_multiprobe_into(&scratch.keys, self.probes, out);
        } else {
            self.tables.query_into(&scratch.keys, out);
        }
    }

    /// Occupancy statistics of this shard's tables.
    pub fn stats(&self) -> TableStats {
        self.tables.stats()
    }
}
