//! Typed build/publish and request errors for the serving tier.
//!
//! Before the snapshot-persistence PR these were ad-hoc `Result<_, String>`s
//! scattered across `BatchingServer::start`, the shard-plan constructors,
//! and the per-shard engine checks. [`ServeBuildError`] replaces them with
//! one enum whose `Display` text preserves the old messages (they are
//! asserted on in tests and surfaced to operators), while callers that care
//! can now match on the variant instead of substring-sniffing.
//!
//! [`ServeError`] (per-request failures) lives here too so the request and
//! build error surfaces share one module; it is re-exported at the crate
//! root unchanged.

use std::fmt;

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server was closed before (or while) handling the request.
    Closed,
    /// The query did not fit the model (bad index, length mismatch, k == 0).
    Invalid(String),
    /// The admission queue was full and the caller asked not to block
    /// ([`crate::BatchingServer::try_predict`]): shed the request instead of
    /// buffering it. Carries the queue depth observed at rejection.
    Overloaded(usize),
    /// The request's deadline expired before it reached compute — at
    /// admission, or while queued (the dispatcher sheds stale requests from
    /// the drain loop rather than scoring answers nobody is waiting for).
    /// Distinct from [`ServeError::Overloaded`]: retrying immediately is
    /// pointless, the *budget* was exhausted, not the queue.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Closed => f.write_str("server closed"),
            ServeError::Invalid(msg) => write!(f, "invalid query: {msg}"),
            ServeError::Overloaded(depth) => {
                write!(f, "server overloaded: {depth} requests queued")
            }
            ServeError::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a serving engine, shard plan, or batching server could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeBuildError {
    /// A [`crate::BatchConfig`] field failed validation.
    InvalidBatchConfig(String),
    /// The dispatcher thread could not be spawned.
    Spawn(String),
    /// A [`crate::ShardPlan`] was constructed with zero shards.
    PlanNeedsShards,
    /// A [`crate::ShardPlan`] spreads too few rows over too many shards.
    PlanLeavesEmptyShards {
        /// Requested shard count.
        shards: usize,
        /// Rows available to spread.
        rows: usize,
    },
    /// The plan's row universe disagrees with the network's output layer.
    PlanRowsMismatch {
        /// Rows the plan covers.
        plan_rows: usize,
        /// The network's output dimensionality.
        output_dim: usize,
    },
    /// Sharded serving cannot honour a global `lsh.max_active` cap.
    MaxActiveUnsupported,
    /// Wrong number of shard engines for the plan.
    ShardCount {
        /// Engines supplied.
        engines: usize,
        /// Shards the plan defines.
        shards: usize,
    },
    /// A shard engine was cut from a different row universe than the plan.
    ShardUniverse {
        /// Which shard.
        shard: usize,
        /// Rows of the model the engine was cut from.
        engine_rows: usize,
        /// Rows the plan covers.
        plan_rows: usize,
    },
    /// A shard engine owns a different row set than the plan assigns.
    ShardRows {
        /// Which shard.
        shard: usize,
        /// Rows the engine owns.
        owned: usize,
        /// Rows the plan assigns to it.
        assigned: usize,
    },
    /// A shard engine scores a different hidden width than the trunk emits.
    ShardCols {
        /// Which shard.
        shard: usize,
        /// Columns the engine scores.
        cols: usize,
        /// Columns the trunk produces.
        trunk_cols: usize,
    },
    /// `publish_shard` addressed a shard index outside the plan.
    ShardOutOfRange {
        /// The requested shard.
        shard: usize,
        /// Shards in the plan.
        shards: usize,
    },
}

impl fmt::Display for ServeBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeBuildError::InvalidBatchConfig(msg) => write!(f, "{msg}"),
            ServeBuildError::Spawn(msg) => write!(f, "spawn dispatcher: {msg}"),
            ServeBuildError::PlanNeedsShards => {
                write!(f, "ShardPlan: need at least one shard")
            }
            ServeBuildError::PlanLeavesEmptyShards { shards, rows } => write!(
                f,
                "ShardPlan: {shards} shards over {rows} rows would leave empty shards"
            ),
            ServeBuildError::PlanRowsMismatch {
                plan_rows,
                output_dim,
            } => write!(
                f,
                "ShardPlan covers {plan_rows} rows, network outputs {output_dim}"
            ),
            ServeBuildError::MaxActiveUnsupported => write!(
                f,
                "sharded serving requires lsh.max_active = None: the global cap truncates \
                 in table-encounter order, which a scatter-gather merge cannot reproduce"
            ),
            ServeBuildError::ShardCount { engines, shards } => {
                write!(f, "{engines} engines for a {shards}-shard plan")
            }
            ServeBuildError::ShardUniverse {
                shard,
                engine_rows,
                plan_rows,
            } => write!(
                f,
                "shard {shard}: engine cut from a {engine_rows}-row model, plan covers {plan_rows}"
            ),
            ServeBuildError::ShardRows {
                shard,
                owned,
                assigned,
            } => write!(
                f,
                "shard {shard}: engine owns {owned} rows, plan assigns {assigned}"
            ),
            ServeBuildError::ShardCols {
                shard,
                cols,
                trunk_cols,
            } => write!(
                f,
                "shard {shard} scores {cols} columns, trunk produces {trunk_cols}"
            ),
            ServeBuildError::ShardOutOfRange { shard, shards } => write!(
                f,
                "publish_shard: shard {shard} out of range ({shards} shards)"
            ),
        }
    }
}

impl std::error::Error for ServeBuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_operator_messages() {
        // Messages are part of the operator-facing contract (logs, tests,
        // router error frames); variants may grow, texts must not drift.
        let cases: Vec<(ServeBuildError, &str)> = vec![
            (
                ServeBuildError::PlanNeedsShards,
                "ShardPlan: need at least one shard",
            ),
            (
                ServeBuildError::PlanLeavesEmptyShards { shards: 9, rows: 4 },
                "ShardPlan: 9 shards over 4 rows would leave empty shards",
            ),
            (
                ServeBuildError::PlanRowsMismatch {
                    plan_rows: 32,
                    output_dim: 64,
                },
                "ShardPlan covers 32 rows, network outputs 64",
            ),
            (
                ServeBuildError::ShardCount {
                    engines: 2,
                    shards: 4,
                },
                "2 engines for a 4-shard plan",
            ),
            (
                ServeBuildError::ShardOutOfRange {
                    shard: 5,
                    shards: 4,
                },
                "publish_shard: shard 5 out of range (4 shards)",
            ),
            (
                ServeBuildError::ShardRows {
                    shard: 1,
                    owned: 10,
                    assigned: 16,
                },
                "shard 1: engine owns 10 rows, plan assigns 16",
            ),
        ];
        for (err, expect) in cases {
            assert_eq!(err.to_string(), expect);
        }
        assert!(ServeBuildError::MaxActiveUnsupported
            .to_string()
            .contains("max_active"));
        assert!(ServeBuildError::Spawn("boom".into())
            .to_string()
            .contains("spawn dispatcher: boom"));
    }
}
