//! Sharded frozen serving: scatter–gather top-k over N output-layer shards.
//!
//! Extreme-classification output layers put 10⁵–10⁶ rows behind one set of
//! LSH tables and one arena; a [`ShardedFrozenModel`] splits that layer
//! row-wise into `N` shards, each owning its *own* 64-byte-aligned arena,
//! its own LSH tables (holding only its rows), and its own retrieval
//! scratch — so a query fans out across shards (via a
//! [`slide_core::ThreadPool`] when one is attached), each shard retrieves
//! and scores locally, and a k-way merge produces the global top-k with
//! global-row-id remapping. Shards are precision-independent (the f32
//! engine lives here; the int8 engine in `slide-quant`) and individually
//! hot-swappable through [`ShardedFrozenModel::publish_shard`], so a
//! background trainer can re-quantize one shard at a time under live
//! traffic.
//!
//! # Exact equivalence with the unsharded engines
//!
//! The acceptance bar is *bit-equal top-k*: for any shard count and plan,
//! the sharded model must return exactly what the unsharded
//! `FrozenNetwork` / `QuantizedFrozenNetwork` of the same network returns.
//! Three constructions make that hold:
//!
//! 1. **Partitioned tables, not re-built tables.** Each shard's tables are
//!    derived by filtering one frozen global build
//!    ([`crate::ActiveSetSelector::partition_by`]); bucket-cap eviction
//!    happened once, globally, so the union of per-shard retrievals is
//!    exactly the global retrieval set.
//! 2. **Global padding at merge time.** Per-shard retrieval never pads;
//!    after the merge deduplicates the union, the model replays the
//!    unsharded selector's deterministic pad stream (`mix3(pad_seed, salt,
//!    attempt) % rows`) against a global membership stamp — the same final
//!    active *set* as the unsharded query.
//! 3. **Per-row-pure scoring.** Every score kernel computes row scores
//!    independently of their position in the candidate list (the property
//!    the kernel-variant equivalence suite already enforces), so scoring a
//!    partition of the active set yields the same per-row logits as
//!    scoring it whole. Integer (i8) scoring is exactly associative;
//!    f32 scoring relies on the per-row purity of the gather kernels.
//!
//! One deliberate caveat: on *exact* f32 score ties at the top-k boundary
//! the returned order may differ from the unsharded engine — the merge
//! visits candidates shard-major while the unsharded path scores them in
//! table-encounter order, and `top_k_indices` keeps the first-seen id
//! among equals (the original per-bucket positions are not recoverable
//! from a partition). Distinct trained rows essentially never tie in f32;
//! the corner is reachable only through degenerate inputs (an all-zero
//! hidden activation against untrained zero biases ties every logit at
//! 0.0) or bit-duplicate output rows. The invariance suite excludes
//! exactly that degenerate case and asserts bit-equality everywhere else.
//!
//! `max_active` caps are rejected at construction: a global cap truncates
//! in table-encounter order, which a scatter–gather merge cannot reproduce.

use crate::error::ServeBuildError;
use crate::frozen::FrozenLayer;
use crate::model::FrozenModel;
use crate::retrieval::{ActiveSetSelector, ShardSelector, ShardSelectorScratch};
use parking_lot::{Mutex, RwLock};
use slide_core::{relu, Network, StampSet, ThreadPool};
use slide_data::top_k_indices;
use slide_hash::mix::mix3;
use slide_hash::TableStats;
use slide_mem::{AlignedVec, SparseVecRef};
use slide_obs::StageSample;
use slide_simd::{KernelSet, RowGather};
use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

/// How the output layer's rows are assigned to shards. Both policies are
/// snapshot-time: the plan is fixed when the model is built and every
/// published shard must honor it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlanKind {
    /// Shard `s` owns one contiguous row range (balanced to within one
    /// row). Best locality for label spaces with clustered hot heads.
    Contiguous,
    /// Row `g` belongs to shard `g % N`. Spreads head labels evenly across
    /// shards when the label distribution is Zipf-skewed.
    Strided,
}

/// A row-partitioning plan: `rows` output units split across `shards`
/// shards under a [`ShardPlanKind`] policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    kind: ShardPlanKind,
    shards: usize,
    rows: usize,
}

impl ShardPlan {
    /// A contiguous (range) plan.
    ///
    /// # Errors
    ///
    /// [`ServeBuildError::PlanNeedsShards`] /
    /// [`ServeBuildError::PlanLeavesEmptyShards`] if `shards` is zero or
    /// exceeds `rows`.
    pub fn contiguous(shards: usize, rows: usize) -> Result<Self, ServeBuildError> {
        Self::new(ShardPlanKind::Contiguous, shards, rows)
    }

    /// A strided (modulo) plan.
    ///
    /// # Errors
    ///
    /// As [`ShardPlan::contiguous`].
    pub fn strided(shards: usize, rows: usize) -> Result<Self, ServeBuildError> {
        Self::new(ShardPlanKind::Strided, shards, rows)
    }

    fn new(kind: ShardPlanKind, shards: usize, rows: usize) -> Result<Self, ServeBuildError> {
        if shards == 0 {
            return Err(ServeBuildError::PlanNeedsShards);
        }
        if shards > rows {
            return Err(ServeBuildError::PlanLeavesEmptyShards { shards, rows });
        }
        Ok(ShardPlan { kind, shards, rows })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Global output dimensionality the plan partitions.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The partitioning policy.
    pub fn kind(&self) -> ShardPlanKind {
        self.kind
    }

    /// Policy label for logs and bench meta (`"contiguous"` / `"strided"`).
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            ShardPlanKind::Contiguous => "contiguous",
            ShardPlanKind::Strided => "strided",
        }
    }

    /// The shard owning global row `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is outside the plan's row universe.
    #[inline]
    pub fn shard_of(&self, g: u32) -> usize {
        let g = g as usize;
        assert!(g < self.rows, "ShardPlan::shard_of: row {g} out of range");
        match self.kind {
            ShardPlanKind::Strided => g % self.shards,
            ShardPlanKind::Contiguous => {
                let base = self.rows / self.shards;
                let rem = self.rows % self.shards;
                let fat = rem * (base + 1);
                if g < fat {
                    g / (base + 1)
                } else {
                    rem + (g - fat) / base
                }
            }
        }
    }

    /// The O(1) global→local indexer for shard `s` (see [`ShardIndexer`]).
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn indexer(&self, s: usize) -> ShardIndexer {
        assert!(s < self.shards, "ShardPlan::indexer: shard out of range");
        match self.kind {
            ShardPlanKind::Strided => ShardIndexer::Strided {
                shards: self.shards as u32,
                shard: s as u32,
            },
            ShardPlanKind::Contiguous => {
                let base = self.rows / self.shards;
                let rem = self.rows % self.shards;
                let start = s * base + s.min(rem);
                let len = base + usize::from(s < rem);
                ShardIndexer::Contiguous {
                    start: start as u32,
                    len: len as u32,
                }
            }
        }
    }

    /// The global row ids shard `s` owns, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn shard_rows(&self, s: usize) -> Vec<u32> {
        assert!(s < self.shards, "ShardPlan::shard_rows: shard out of range");
        match self.kind {
            ShardPlanKind::Strided => ((s as u32)..self.rows as u32)
                .step_by(self.shards)
                .collect(),
            ShardPlanKind::Contiguous => {
                let base = self.rows / self.shards;
                let rem = self.rows % self.shards;
                let start = s * base + s.min(rem);
                let len = base + usize::from(s < rem);
                (start as u32..(start + len) as u32).collect()
            }
        }
    }
}

/// O(1) global→local row indexing for one shard — the arithmetic inverse
/// of its plan's ownership map, carried by every shard engine so the
/// scoring hot path never searches a mapping table (DESIGN.md §8's "pure
/// arithmetic" promise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardIndexer {
    /// One contiguous range: `local = global - start`.
    Contiguous {
        /// First owned global row.
        start: u32,
        /// Owned row count.
        len: u32,
    },
    /// Modulo ownership: `local = global / shards`.
    Strided {
        /// Total shard count (the stride).
        shards: u32,
        /// This shard's residue class.
        shard: u32,
    },
}

impl ShardIndexer {
    /// Local (arena) index of global row `g`. Callers must only pass rows
    /// the shard owns — debug builds assert ownership; in release an
    /// out-of-contract id either trips the arena bounds check or gathers a
    /// wrong owned row, like any other misuse of a row id.
    #[inline]
    pub fn local_of(self, g: u32) -> usize {
        match self {
            ShardIndexer::Contiguous { start, len } => {
                debug_assert!(
                    g >= start && g - start < len,
                    "ShardIndexer: row {g} not in [{start}, {})",
                    start + len
                );
                (g - start) as usize
            }
            ShardIndexer::Strided { shards, shard } => {
                debug_assert!(
                    g % shards == shard,
                    "ShardIndexer: row {g} not in residue class {shard} (mod {shards})"
                );
                (g / shards) as usize
            }
        }
    }
}

/// Per-caller, per-shard mutable query state. One concrete type shared by
/// every [`ShardEngine`] implementation (both precisions), so a per-shard
/// precision hot-swap never invalidates a worker's scratch.
#[derive(Debug)]
pub struct ShardScratch {
    /// LSH key scratch for this shard's selector.
    pub sel: ShardSelectorScratch,
    /// Raw per-shard retrievals (global ids, duplicates included).
    pub raw: Vec<u32>,
    /// Deduplicated + globally-padded active rows assigned to this shard.
    pub active: Vec<u32>,
    /// Scores for `active`, filled by [`ShardEngine::score_active`].
    pub logits: Vec<f32>,
    /// Row-gather pointer staging for the fused kernels.
    pub gather: RowGather,
    /// Quantized activation codes (used by i8 shards; sized to the hidden
    /// width so an f32 → i8 shard swap needs no scratch rebuild).
    pub xq: AlignedVec<u8>,
    /// Kernel dispatch table, resolved once per scratch.
    pub kernels: KernelSet,
}

/// One output-layer shard: arena + tables + scoring for a row subset.
/// Implemented by [`F32Shard`] here and by the int8 shard in `slide-quant`.
/// All methods take `&self` under the same lock-free multi-reader contract
/// as [`crate::FrozenModel`].
pub trait ShardEngine: Send + Sync + std::fmt::Debug + 'static {
    /// Storage-precision label (`"f32"` / `"i8"`).
    fn precision(&self) -> &'static str;

    /// The global row ids this shard owns, ascending.
    fn global_rows(&self) -> &[u32];

    /// Global output dimensionality of the model this shard was cut from.
    fn total_rows(&self) -> usize;

    /// Row width (last hidden dimension).
    fn cols(&self) -> usize;

    /// Bytes held by this shard's arenas.
    fn arena_bytes(&self) -> usize;

    /// Occupancy statistics of this shard's tables.
    fn table_stats(&self) -> TableStats;

    /// Allocate LSH key scratch sized for this shard's selector. Every
    /// precision cut from one network clones the same family, so scratch
    /// stays valid across per-shard precision swaps.
    fn selector_scratch(&self) -> ShardSelectorScratch;

    /// Append this shard's raw LSH candidates for `h` to `scratch.raw`
    /// (global ids; duplicates across tables included).
    fn retrieve(&self, h: &[f32], scratch: &mut ShardScratch);

    /// Score `scratch.active` (global ids owned by this shard) against `h`
    /// into `scratch.logits` (bias included).
    fn score_active(&self, h: &[f32], scratch: &mut ShardScratch);

    /// Score every owned row against `h` into `scratch.logits`
    /// (`logits[i]` is the score of `global_rows()[i]`, bias included) —
    /// the exact-argmax path.
    fn score_all(&self, h: &[f32], scratch: &mut ShardScratch);
}

/// The shared (unsharded) input + hidden stack run once per query to
/// produce the last hidden activation every shard retrieves and scores
/// against. Implemented by [`F32Trunk`] here and by the int8 trunk in
/// `slide-quant` (whose deep hidden stack quantizes activations exactly as
/// the unsharded quantized engine does).
pub trait ShardTrunk: Send + Sync + std::fmt::Debug + 'static {
    /// Storage-precision label of the trunk arenas.
    fn precision(&self) -> &'static str;

    /// Sparse input dimensionality accepted by queries.
    fn input_dim(&self) -> usize;

    /// Width of the last hidden activation.
    fn hidden_dim(&self) -> usize;

    /// Bytes held by the trunk arenas.
    fn arena_bytes(&self) -> usize;

    /// Allocate per-caller forward scratch, type-erased for the sharded
    /// model's scratch.
    fn make_scratch(&self) -> Box<dyn Any + Send>;

    /// Run input + hidden for `x`, writing the last hidden activation into
    /// `out` (`out.len() == self.hidden_dim()`).
    fn forward_into(&self, x: SparseVecRef<'_>, scratch: &mut (dyn Any + Send), out: &mut [f32]);
}

/// The f32 trunk: aligned frozen arenas, bit-identical forward to
/// [`crate::FrozenNetwork::forward_hidden`].
#[derive(Debug)]
pub struct F32Trunk {
    input: FrozenLayer,
    hidden: Vec<FrozenLayer>,
}

/// Forward scratch for [`F32Trunk`].
#[derive(Debug)]
struct F32TrunkScratch {
    acts: Vec<AlignedVec<f32>>,
    kernels: KernelSet,
}

impl F32Trunk {
    /// Snapshot the input + hidden stack of `net` (exactly as
    /// [`crate::FrozenNetwork::freeze`] snapshots them).
    pub fn from_network(net: &Network) -> Self {
        F32Trunk {
            input: FrozenLayer::from_params(net.input().params()),
            hidden: net
                .hidden_layers()
                .iter()
                .map(|l| FrozenLayer::from_params(l.params()))
                .collect(),
        }
    }

    /// Assemble a trunk from already-built layers — the snapshot load path.
    /// `input` is the transposed input layer (one row per feature, bias per
    /// column); `hidden` is the hidden stack in forward order.
    ///
    /// # Errors
    ///
    /// Returns a message if consecutive layer widths do not chain.
    pub fn from_parts(input: FrozenLayer, hidden: Vec<FrozenLayer>) -> Result<Self, String> {
        let mut width = input.cols();
        for (i, layer) in hidden.iter().enumerate() {
            if layer.cols() != width {
                return Err(format!(
                    "F32Trunk: hidden layer {i} consumes {} columns, predecessor emits {width}",
                    layer.cols()
                ));
            }
            width = layer.rows();
        }
        Ok(F32Trunk { input, hidden })
    }
}

impl ShardTrunk for F32Trunk {
    fn precision(&self) -> &'static str {
        "f32"
    }

    fn input_dim(&self) -> usize {
        self.input.rows()
    }

    fn hidden_dim(&self) -> usize {
        self.hidden
            .last()
            .map(FrozenLayer::rows)
            .unwrap_or_else(|| self.input.cols())
    }

    fn arena_bytes(&self) -> usize {
        self.input.arena_bytes()
            + self
                .hidden
                .iter()
                .map(FrozenLayer::arena_bytes)
                .sum::<usize>()
    }

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        let mut widths: Vec<usize> = vec![self.input.cols()];
        widths.extend(self.hidden.iter().map(FrozenLayer::rows));
        Box::new(F32TrunkScratch {
            acts: widths.iter().map(|&w| AlignedVec::zeroed(w)).collect(),
            kernels: KernelSet::resolve(),
        })
    }

    fn forward_into(&self, x: SparseVecRef<'_>, scratch: &mut (dyn Any + Send), out: &mut [f32]) {
        let scratch = scratch
            .downcast_mut::<F32TrunkScratch>()
            .expect("F32Trunk handed scratch built by a different trunk");
        let ks = scratch.kernels;
        let acts = &mut scratch.acts;
        acts[0].as_mut_slice().copy_from_slice(self.input.bias());
        for (j, v) in x.iter() {
            ks.axpy(v, self.input.row(j as usize), acts[0].as_mut_slice());
        }
        relu(acts[0].as_mut_slice());
        for (i, layer) in self.hidden.iter().enumerate() {
            let (src, dst) = acts.split_at_mut(i + 1);
            let (src, dst) = (src[i].as_slice(), dst[0].as_mut_slice());
            ks.gemv(layer.flat(), layer.stride(), src, layer.bias(), dst);
            relu(dst);
        }
        out.copy_from_slice(
            acts.last()
                .expect("at least the input activation")
                .as_slice(),
        );
    }
}

/// The f32 output-layer shard: a row-subset [`FrozenLayer`] arena plus the
/// shard's slice of the frozen LSH tables.
#[derive(Debug)]
pub struct F32Shard {
    layer: FrozenLayer,
    rows: Vec<u32>,
    indexer: ShardIndexer,
    total_rows: usize,
    selector: ShardSelector,
}

impl F32Shard {
    /// Cut all of `plan`'s f32 shards from `net` at once (one table
    /// partition pass over the global selector).
    fn build_all(net: &Network, global: &ActiveSetSelector, plan: &ShardPlan) -> Vec<F32Shard> {
        let selectors = global.partition_by(plan.shards(), &|id| plan.shard_of(id));
        selectors
            .into_iter()
            .enumerate()
            .map(|(s, selector)| {
                let rows = plan.shard_rows(s);
                let layer = FrozenLayer::from_params_rows(net.output().params(), &rows);
                F32Shard {
                    layer,
                    rows,
                    indexer: plan.indexer(s),
                    total_rows: plan.rows(),
                    selector,
                }
            })
            .collect()
    }

    /// Assemble shard `s` of `plan` from an already-built row-subset layer
    /// and the shard's table partition — the snapshot load path (the loader
    /// reconstructs the *global* selector from its CSR sections, partitions
    /// it exactly as the internal `F32Shard::build_all` does, and pairs each partition
    /// with its decoded arena).
    ///
    /// # Errors
    ///
    /// Returns a message if `s` is out of range or `layer` does not own
    /// exactly the rows `plan` assigns to shard `s`.
    pub fn from_parts(
        plan: &ShardPlan,
        s: usize,
        layer: FrozenLayer,
        selector: ShardSelector,
    ) -> Result<Self, String> {
        if s >= plan.shards() {
            return Err(format!(
                "F32Shard: shard {s} out of range ({} shards)",
                plan.shards()
            ));
        }
        let rows = plan.shard_rows(s);
        if layer.rows() != rows.len() {
            return Err(format!(
                "F32Shard: layer holds {} rows, plan assigns {} to shard {s}",
                layer.rows(),
                rows.len()
            ));
        }
        Ok(F32Shard {
            layer,
            rows,
            indexer: plan.indexer(s),
            total_rows: plan.rows(),
            selector,
        })
    }
}

impl ShardEngine for F32Shard {
    fn precision(&self) -> &'static str {
        "f32"
    }

    fn global_rows(&self) -> &[u32] {
        &self.rows
    }

    fn total_rows(&self) -> usize {
        self.total_rows
    }

    fn cols(&self) -> usize {
        self.layer.cols()
    }

    fn arena_bytes(&self) -> usize {
        self.layer.arena_bytes()
    }

    fn table_stats(&self) -> TableStats {
        self.selector.stats()
    }

    fn selector_scratch(&self) -> ShardSelectorScratch {
        self.selector.make_scratch()
    }

    fn retrieve(&self, h: &[f32], scratch: &mut ShardScratch) {
        self.selector
            .retrieve_into(h, &mut scratch.sel, &mut scratch.raw);
    }

    fn score_active(&self, h: &[f32], scratch: &mut ShardScratch) {
        scratch.gather.w_f32.clear();
        scratch.gather.rows.clear();
        for i in 0..scratch.active.len() {
            // O(1) arithmetic global→local; locals staged once and reused
            // by the bias pass below.
            let local = self.indexer.local_of(scratch.active[i]);
            scratch.gather.w_f32.push(self.layer.row(local).as_ptr());
            scratch.gather.rows.push(local as u32);
        }
        scratch.logits.clear();
        scratch.logits.resize(scratch.active.len(), 0.0);
        // SAFETY: every gathered pointer spans `cols` elements of the
        // frozen shard arena, which outlives the call.
        unsafe {
            scratch
                .kernels
                .score_rows_f32(&scratch.gather.w_f32, h, &mut scratch.logits)
        };
        let bias = self.layer.bias();
        for (z, &local) in scratch.logits.iter_mut().zip(scratch.gather.rows.iter()) {
            *z += bias[local as usize];
        }
    }

    fn score_all(&self, h: &[f32], scratch: &mut ShardScratch) {
        scratch.logits.clear();
        scratch.logits.resize(self.rows.len(), 0.0);
        scratch.kernels.gemv(
            self.layer.flat(),
            self.layer.stride(),
            h,
            self.layer.bias(),
            &mut scratch.logits,
        );
    }
}

/// Per-caller query scratch for a [`ShardedFrozenModel`]: the trunk's
/// forward scratch, one [`ShardScratch`] per shard, and the merge buffers.
#[derive(Debug)]
pub struct ShardedScratch {
    trunk: Box<dyn Any + Send>,
    h: AlignedVec<f32>,
    shards: Vec<ShardScratch>,
    stamp: StampSet,
    merged_ids: Vec<u32>,
    merged_scores: Vec<f32>,
    engines: Vec<Arc<dyn ShardEngine>>,
    full: Vec<f32>,
}

impl ShardedScratch {
    /// The active rows of the last query, per shard (inspection hook: the
    /// concatenation over shards is the global active set).
    pub fn active_per_shard(&self) -> impl Iterator<Item = &[u32]> {
        self.shards.iter().map(|s| s.active.as_slice())
    }

    /// Total active rows of the last query.
    pub fn active_len(&self) -> usize {
        self.shards.iter().map(|s| s.active.len()).sum()
    }
}

/// Sendable pointer to per-shard scratch slots; each fan-out worker touches
/// a disjoint subset of shard indices.
#[derive(Clone, Copy)]
struct ShardSlotPtr {
    base: *mut ShardScratch,
    len: usize,
}

// SAFETY: workers index disjoint slots (shard `s` is processed by exactly
// one worker per fan-out), and the backing Vec outlives the pool run.
unsafe impl Send for ShardSlotPtr {}
unsafe impl Sync for ShardSlotPtr {}

impl ShardSlotPtr {
    /// Exclusive access to shard `i`'s scratch.
    ///
    /// # Safety
    ///
    /// Each index must be used by at most one thread at a time and the
    /// backing slice must outlive the parallel section.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut ShardScratch {
        assert!(i < self.len, "ShardSlotPtr: shard index out of range");
        &mut *self.base.add(i)
    }
}

/// Global padding/merge policy replayed from the unsharded selector.
#[derive(Debug, Clone, Copy)]
struct MergePolicy {
    min_active: usize,
    pad_seed: u64,
    rows: usize,
}

/// A frozen serving engine whose output layer is split across N
/// independently-owned, independently-hot-swappable shards. Implements
/// [`FrozenModel`], so a [`crate::BatchingServer`] serves it unchanged and
/// sharding composes with micro-batching and whole-model hot-swap for free.
///
/// # Examples
///
/// ```
/// use slide_core::{Network, NetworkConfig};
/// use slide_serve::{ShardPlan, ShardedFrozenModel};
///
/// let net = Network::new(NetworkConfig::standard(256, 16, 64)).unwrap();
/// let plan = ShardPlan::contiguous(4, 64).unwrap();
/// let sharded = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
/// let mut scratch = sharded.make_scratch();
/// let idx = [1u32, 17];
/// let val = [1.0f32, 0.5];
/// let x = slide_mem::SparseVecRef::new(&idx, &val);
/// let topk = sharded.predict_sparse(x, 5, &mut scratch, 0);
/// assert_eq!(topk.len(), 5);
/// ```
pub struct ShardedFrozenModel {
    trunk: Box<dyn ShardTrunk>,
    shards: Vec<RwLock<Arc<dyn ShardEngine>>>,
    plan: ShardPlan,
    merge: MergePolicy,
    /// Fan-out worker pool. `try_lock` per query: a direct caller gets
    /// cross-shard parallelism; under the batching server (many workers
    /// querying concurrently) contended callers fall back to the
    /// sequential path — results are identical either way, parallelism
    /// then comes from the batch.
    fanout: Option<Mutex<ThreadPool>>,
}

impl std::fmt::Debug for ShardedFrozenModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The fan-out pool carries no meaningful state to print.
        f.debug_struct("ShardedFrozenModel")
            .field("trunk", &self.trunk)
            .field("plan", &self.plan)
            .field("shard_precisions", &self.shard_precisions())
            .finish_non_exhaustive()
    }
}

impl ShardedFrozenModel {
    /// Shard `net` into an all-f32 sharded serving model: freeze the trunk,
    /// build the global LSH tables once from the frozen output rows
    /// (exactly as [`crate::FrozenNetwork::freeze`] does), then cut per-shard
    /// arenas (via the range-restricted [`FrozenLayer::from_params_rows`])
    /// and per-shard table partitions.
    ///
    /// # Errors
    ///
    /// [`ServeBuildError::PlanRowsMismatch`] if the plan does not match the
    /// network's output dimensionality;
    /// [`ServeBuildError::MaxActiveUnsupported`] if the network configures
    /// `max_active` (a global encounter-order cap a scatter–gather merge
    /// cannot reproduce).
    pub fn shard_f32(net: &Network, plan: ShardPlan) -> Result<Self, ServeBuildError> {
        let global = build_global_selector(net)?;
        check_plan(net, &plan, &global)?;
        let trunk = Box::new(F32Trunk::from_network(net));
        let shards: Vec<RwLock<Arc<dyn ShardEngine>>> = F32Shard::build_all(net, &global, &plan)
            .into_iter()
            .map(|s| RwLock::new(Arc::new(s) as Arc<dyn ShardEngine>))
            .collect();
        Ok(Self::assemble(trunk, shards, plan, &global))
    }

    /// The f32 shard engines of `net` under `plan`, for per-shard
    /// publication into an existing model
    /// ([`ShardedFrozenModel::publish_shard`]).
    ///
    /// # Errors
    ///
    /// As [`ShardedFrozenModel::shard_f32`].
    pub fn f32_engines(
        net: &Network,
        plan: &ShardPlan,
    ) -> Result<Vec<Arc<dyn ShardEngine>>, ServeBuildError> {
        let global = build_global_selector(net)?;
        check_plan(net, plan, &global)?;
        Ok(F32Shard::build_all(net, &global, plan)
            .into_iter()
            .map(|s| Arc::new(s) as Arc<dyn ShardEngine>)
            .collect())
    }

    /// Assemble a sharded model from an explicit trunk and shard engines —
    /// the construction hook for other precisions (`slide-quant` builds
    /// its all-i8 model through this). The global padding policy is
    /// replayed from `global`, which must be the unsharded selector the
    /// shard tables were partitioned from.
    ///
    /// # Errors
    ///
    /// [`ServeBuildError::ShardCount`] / [`ServeBuildError::ShardRows`] /
    /// [`ServeBuildError::ShardCols`] if the engine count or any engine's
    /// row ownership or width disagrees with `plan` and `trunk`;
    /// [`ServeBuildError::MaxActiveUnsupported`] if `global` caps
    /// `max_active`.
    pub fn from_parts(
        trunk: Box<dyn ShardTrunk>,
        shards: Vec<Arc<dyn ShardEngine>>,
        plan: ShardPlan,
        global: &ActiveSetSelector,
    ) -> Result<Self, ServeBuildError> {
        if global.max_active().is_some() {
            return Err(ServeBuildError::MaxActiveUnsupported);
        }
        if shards.len() != plan.shards() {
            return Err(ServeBuildError::ShardCount {
                engines: shards.len(),
                shards: plan.shards(),
            });
        }
        for (s, engine) in shards.iter().enumerate() {
            check_engine(&plan, s, engine.as_ref())?;
            if engine.cols() != trunk.hidden_dim() {
                return Err(ServeBuildError::ShardCols {
                    shard: s,
                    cols: engine.cols(),
                    trunk_cols: trunk.hidden_dim(),
                });
            }
        }
        let shards = shards.into_iter().map(RwLock::new).collect();
        Ok(Self::assemble(trunk, shards, plan, global))
    }

    fn assemble(
        trunk: Box<dyn ShardTrunk>,
        shards: Vec<RwLock<Arc<dyn ShardEngine>>>,
        plan: ShardPlan,
        global: &ActiveSetSelector,
    ) -> Self {
        let merge = MergePolicy {
            min_active: global.min_active(),
            pad_seed: global.pad_seed(),
            rows: plan.rows(),
        };
        let fanout = (plan.shards() > 1).then(|| {
            let workers = plan.shards().min(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            );
            Mutex::new(ThreadPool::new(workers))
        });
        ShardedFrozenModel {
            trunk,
            shards,
            plan,
            merge,
            fanout,
        }
    }

    /// The row-partitioning plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine currently serving shard `s`.
    pub fn shard(&self, s: usize) -> Arc<dyn ShardEngine> {
        self.shards[s].read().clone()
    }

    /// Per-shard precision labels, in shard order.
    pub fn shard_precisions(&self) -> Vec<&'static str> {
        self.shards.iter().map(|s| s.read().precision()).collect()
    }

    /// Per-shard precision labels joined with `|` (bench meta stamp).
    pub fn shard_precision_label(&self) -> String {
        self.shard_precisions().join("|")
    }

    /// Publish a replacement engine for shard `s`; in-flight queries keep
    /// the engine they pinned, new queries pick the replacement up at
    /// their next shard read. The write lock is held only for the pointer
    /// swap. The replacement may change precision (f32 ↔ i8) but not row
    /// ownership or width — the scratch every worker holds stays valid.
    ///
    /// # Errors
    ///
    /// [`ServeBuildError::ShardOutOfRange`] if `s` is out of range;
    /// [`ServeBuildError::ShardRows`] / [`ServeBuildError::ShardCols`] if
    /// the engine's rows/width disagree with the plan.
    pub fn publish_shard(
        &self,
        s: usize,
        engine: Arc<dyn ShardEngine>,
    ) -> Result<(), ServeBuildError> {
        if s >= self.shards.len() {
            return Err(ServeBuildError::ShardOutOfRange {
                shard: s,
                shards: self.shards.len(),
            });
        }
        check_engine(&self.plan, s, engine.as_ref())?;
        if engine.cols() != self.trunk.hidden_dim() {
            return Err(ServeBuildError::ShardCols {
                shard: s,
                cols: engine.cols(),
                trunk_cols: self.trunk.hidden_dim(),
            });
        }
        *self.shards[s].write() = engine;
        Ok(())
    }

    /// Sparse input dimensionality accepted by queries.
    pub fn input_dim(&self) -> usize {
        self.trunk.input_dim()
    }

    /// Output (label) dimensionality (across all shards).
    pub fn output_dim(&self) -> usize {
        self.plan.rows()
    }

    /// Total bytes held in trunk + shard arenas.
    pub fn arena_bytes(&self) -> usize {
        self.trunk.arena_bytes()
            + self
                .shards
                .iter()
                .map(|s| s.read().arena_bytes())
                .sum::<usize>()
    }

    /// Allocate per-caller query scratch sized for this model.
    pub fn make_scratch(&self) -> ShardedScratch {
        let kernels = KernelSet::resolve();
        let cols = self.trunk.hidden_dim();
        let shards = self
            .shards
            .iter()
            .map(|s| {
                let engine = s.read();
                ShardScratch {
                    sel: engine.selector_scratch(),
                    raw: Vec::with_capacity(256),
                    active: Vec::with_capacity(256),
                    logits: Vec::with_capacity(256),
                    gather: RowGather::default(),
                    xq: AlignedVec::zeroed(cols),
                    kernels,
                }
            })
            .collect();
        ShardedScratch {
            trunk: self.trunk.make_scratch(),
            h: AlignedVec::zeroed(cols),
            shards,
            stamp: StampSet::new(self.plan.rows()),
            merged_ids: Vec::with_capacity(1024),
            merged_scores: Vec::with_capacity(1024),
            engines: Vec::with_capacity(self.shards.len()),
            full: Vec::new(),
        }
    }

    /// Check that a query fits this model's input space.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending index or length mismatch.
    pub fn validate_query(&self, indices: &[u32], values: &[f32]) -> Result<(), String> {
        if indices.len() != values.len() {
            return Err(format!(
                "query index/value length mismatch: {} vs {}",
                indices.len(),
                values.len()
            ));
        }
        let dim = self.trunk.input_dim() as u32;
        if let Some(&bad) = indices.iter().find(|&&i| i >= dim) {
            return Err(format!("query feature index {bad} >= input_dim {dim}"));
        }
        Ok(())
    }

    /// Run a per-shard closure over every shard, through the fan-out pool
    /// when it is attached and uncontended, sequentially otherwise. The
    /// closure sees `(shard index, engine, that shard's scratch)`;
    /// disjoint scratch slots make the parallel path race-free.
    fn for_each_shard(
        &self,
        engines: &[Arc<dyn ShardEngine>],
        scratch: &mut ShardedScratch,
        f: &(dyn Fn(usize, &dyn ShardEngine, &mut ShardScratch) + Sync),
    ) {
        let n = engines.len();
        if let Some(pool) = self.fanout.as_ref().and_then(|p| p.try_lock()) {
            let workers = pool.workers();
            let slots = ShardSlotPtr {
                base: scratch.shards.as_mut_ptr(),
                len: scratch.shards.len(),
            };
            pool.run(&|worker| {
                let mut s = worker;
                while s < n {
                    // SAFETY: shard `s` is visited by exactly one worker
                    // (stride partition) and the slots outlive the run.
                    let slot = unsafe { slots.get(s) };
                    f(s, engines[s].as_ref(), slot);
                    s += workers;
                }
            });
        } else {
            for (s, engine) in engines.iter().enumerate() {
                f(s, engine.as_ref(), &mut scratch.shards[s]);
            }
        }
    }

    /// Run the shared trunk and pin the current shard engines for one query.
    fn begin_query(&self, x: SparseVecRef<'_>, scratch: &mut ShardedScratch) {
        scratch.engines.clear();
        for s in &self.shards {
            scratch.engines.push(s.read().clone());
        }
        self.trunk
            .forward_into(x, scratch.trunk.as_mut(), scratch.h.as_mut_slice());
    }

    /// Predict the top-`k` labels for one sparse input: trunk forward once,
    /// scatter retrieval + scoring across shards, k-way merge back to
    /// global ids. Lock-free readers, `&self`; identical results whether
    /// the fan-out runs parallel or sequential. Returns exactly what the
    /// unsharded engine of the same network and precision returns, up to
    /// order among exactly-tied scores (see the module docs for why, and
    /// for the one degenerate tie case).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range feature indices and if `k == 0`.
    pub fn predict_sparse(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut ShardedScratch,
        salt: u64,
    ) -> Vec<u32> {
        let mut stages = StageSample::default();
        self.predict_sparse_timed(x, k, scratch, salt, &mut stages)
    }

    /// [`ShardedFrozenModel::predict_sparse`] with per-stage attribution:
    /// trunk forward + shard scoring count as kernel time, the per-shard
    /// retrieval scatter as retrieval time, and the dedup/pad plus global
    /// top-k gather as merge time.
    pub fn predict_sparse_timed(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut ShardedScratch,
        salt: u64,
        stages: &mut StageSample,
    ) -> Vec<u32> {
        let t0 = Instant::now();
        self.begin_query(x, scratch);
        let engines = std::mem::take(&mut scratch.engines);
        let h = std::mem::take(&mut scratch.h);
        let t1 = Instant::now();

        // Scatter: per-shard raw retrieval.
        self.for_each_shard(&engines, scratch, &|_s, engine, slot| {
            slot.raw.clear();
            engine.retrieve(h.as_slice(), slot);
        });
        let t2 = Instant::now();

        // Merge: global dedup in shard order, then the unsharded selector's
        // deterministic pad stream against global membership.
        scratch.stamp.begin();
        let mut total = 0usize;
        for slot in scratch.shards.iter_mut() {
            slot.active.clear();
            for i in 0..slot.raw.len() {
                let c = slot.raw[i];
                if scratch.stamp.insert(c) {
                    slot.active.push(c);
                    total += 1;
                }
            }
        }
        let rows = self.merge.rows as u64;
        let mut attempt = 0u64;
        while total < self.merge.min_active {
            let r = (mix3(self.merge.pad_seed, salt, attempt) % rows) as u32;
            attempt += 1;
            if scratch.stamp.insert(r) {
                scratch.shards[self.plan.shard_of(r)].active.push(r);
                total += 1;
            }
        }

        // Scatter: per-shard scoring of its assigned active rows.
        let t3 = Instant::now();
        self.for_each_shard(&engines, scratch, &|_s, engine, slot| {
            engine.score_active(h.as_slice(), slot);
        });
        let t4 = Instant::now();

        // Gather: global top-k over the per-shard (id, score) streams.
        scratch.merged_ids.clear();
        scratch.merged_scores.clear();
        for slot in scratch.shards.iter() {
            scratch.merged_ids.extend_from_slice(&slot.active);
            scratch.merged_scores.extend_from_slice(&slot.logits);
        }
        scratch.h = h;
        scratch.engines = engines;
        let out: Vec<u32> = top_k_indices(&scratch.merged_scores, k.min(total.max(1)))
            .into_iter()
            .map(|i| scratch.merged_ids[i as usize])
            .collect();
        *stages = StageSample {
            retrieval_us: (t2 - t1).as_micros() as u64,
            kernel_us: ((t1 - t0) + (t4 - t3)).as_micros() as u64,
            merge_us: ((t3 - t2) + t4.elapsed()).as_micros() as u64,
        };
        out
    }

    /// Predict the top-`k` labels scoring *every* output row (exact
    /// argmax): each shard sweeps its arena, scores scatter into one dense
    /// global buffer (so tie-breaking matches the unsharded exact path's
    /// global row order), and one top-k runs over it.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range feature indices and if `k == 0`.
    pub fn predict_full(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut ShardedScratch,
    ) -> Vec<u32> {
        self.begin_query(x, scratch);
        let engines = std::mem::take(&mut scratch.engines);
        let h = std::mem::take(&mut scratch.h);
        self.for_each_shard(&engines, scratch, &|_s, engine, slot| {
            engine.score_all(h.as_slice(), slot);
        });
        scratch.full.clear();
        scratch.full.resize(self.plan.rows(), 0.0);
        for (engine, slot) in engines.iter().zip(scratch.shards.iter()) {
            for (&g, &z) in engine.global_rows().iter().zip(slot.logits.iter()) {
                scratch.full[g as usize] = z;
            }
        }
        scratch.h = h;
        scratch.engines = engines;
        top_k_indices(&scratch.full, k)
    }
}

impl FrozenModel for ShardedFrozenModel {
    fn precision(&self) -> &'static str {
        // The trunk counts: a shard_f32 model whose shards were all
        // hot-swapped to i8 still runs an f32 hidden stack, and stamping
        // it "i8" would corrupt the precision axis in bench meta. Only a
        // model uniform across trunk AND shards gets the plain label.
        let precisions = self.shard_precisions();
        let first = precisions[0];
        if precisions.iter().all(|&p| p == first) && self.trunk.precision() == first {
            first
        } else {
            "mixed"
        }
    }

    fn input_dim(&self) -> usize {
        self.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.output_dim()
    }

    fn arena_bytes(&self) -> usize {
        self.arena_bytes()
    }

    fn validate_query(&self, indices: &[u32], values: &[f32]) -> Result<(), String> {
        self.validate_query(indices, values)
    }

    fn make_scratch_any(&self) -> Box<dyn Any + Send> {
        Box::new(self.make_scratch())
    }

    fn predict_any(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut (dyn Any + Send),
        salt: u64,
    ) -> Vec<u32> {
        let scratch = scratch
            .downcast_mut::<ShardedScratch>()
            .expect("ShardedFrozenModel handed scratch built by a different engine");
        self.predict_sparse(x, k, scratch, salt)
    }

    fn predict_any_timed(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut (dyn Any + Send),
        salt: u64,
        stages: &mut StageSample,
    ) -> Vec<u32> {
        let scratch = scratch
            .downcast_mut::<ShardedScratch>()
            .expect("ShardedFrozenModel handed scratch built by a different engine");
        self.predict_sparse_timed(x, k, scratch, salt, stages)
    }
}

/// Build the unsharded retrieval selector for `net` exactly as
/// [`crate::FrozenNetwork::freeze`] does (same seeds, same insertion order), so
/// partitioned shard tables are bit-compatible with the unsharded engine's.
/// Public for other-precision shard constructors (`slide-quant` hashes the
/// same original f32 rows before quantizing).
///
/// # Errors
///
/// [`ServeBuildError::MaxActiveUnsupported`] if the network configures
/// `max_active` (see the module docs).
pub fn build_global_selector(net: &Network) -> Result<ActiveSetSelector, ServeBuildError> {
    let config = net.config();
    if config.lsh.max_active.is_some() {
        return Err(ServeBuildError::MaxActiveUnsupported);
    }
    let out = net.output().params();
    let mut selector = ActiveSetSelector::new(
        net.output().family().clone(),
        &config.lsh,
        out.rows(),
        config.seed,
    );
    let mut sel_scratch = selector.make_scratch();
    let mut row_buf = vec![0.0f32; out.cols()];
    for r in 0..out.rows() {
        out.widen_row_into(r, &mut row_buf);
        selector.insert(r as u32, &row_buf, &mut sel_scratch);
    }
    Ok(selector)
}

fn check_plan(
    net: &Network,
    plan: &ShardPlan,
    global: &ActiveSetSelector,
) -> Result<(), ServeBuildError> {
    if plan.rows() != global.rows() || plan.rows() != net.config().output_dim {
        return Err(ServeBuildError::PlanRowsMismatch {
            plan_rows: plan.rows(),
            output_dim: net.config().output_dim,
        });
    }
    Ok(())
}

fn check_engine(
    plan: &ShardPlan,
    s: usize,
    engine: &dyn ShardEngine,
) -> Result<(), ServeBuildError> {
    if engine.total_rows() != plan.rows() {
        return Err(ServeBuildError::ShardUniverse {
            shard: s,
            engine_rows: engine.total_rows(),
            plan_rows: plan.rows(),
        });
    }
    let expect = plan.shard_rows(s);
    if engine.global_rows() != expect.as_slice() {
        return Err(ServeBuildError::ShardRows {
            shard: s,
            owned: engine.global_rows().len(),
            assigned: expect.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrozenNetwork;
    use slide_core::{LshConfig, NetworkConfig};

    fn tiny_net(seed: u64) -> Network {
        let mut cfg = NetworkConfig::standard(128, 16, 64);
        cfg.seed = seed;
        cfg.lsh = LshConfig {
            tables: 10,
            key_bits: 4,
            min_active: 16,
            ..Default::default()
        };
        Network::new(cfg).unwrap()
    }

    #[test]
    fn plan_partitions_cover_every_row_once() {
        for rows in [7usize, 64, 100] {
            for shards in [1usize, 2, 3, 7] {
                for plan in [
                    ShardPlan::contiguous(shards, rows).unwrap(),
                    ShardPlan::strided(shards, rows).unwrap(),
                ] {
                    let mut seen = vec![false; rows];
                    for s in 0..shards {
                        for &g in &plan.shard_rows(s) {
                            assert_eq!(plan.shard_of(g), s, "{plan:?} row {g}");
                            assert!(!seen[g as usize], "{plan:?} row {g} double-owned");
                            seen[g as usize] = true;
                        }
                    }
                    assert!(seen.iter().all(|&b| b), "{plan:?} left rows unowned");
                    // Balance: shard sizes differ by at most one row.
                    let sizes: Vec<usize> = (0..shards).map(|s| plan.shard_rows(s).len()).collect();
                    let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "{plan:?} unbalanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn plan_rejects_degenerate_shapes() {
        assert!(ShardPlan::contiguous(0, 8).is_err());
        assert!(ShardPlan::strided(9, 8).is_err());
        assert!(ShardPlan::contiguous(8, 8).is_ok());
    }

    #[test]
    fn sharded_model_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedFrozenModel>();
    }

    #[test]
    fn sharded_matches_unsharded_frozen_f32() {
        let net = tiny_net(3);
        let frozen = FrozenNetwork::freeze(&net);
        let mut fs = frozen.make_scratch();
        for shards in [1usize, 2, 4, 8] {
            for plan in [
                ShardPlan::contiguous(shards, 64).unwrap(),
                ShardPlan::strided(shards, 64).unwrap(),
            ] {
                let sharded = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
                let mut ss = sharded.make_scratch();
                for s in 0..24u32 {
                    let idx = [s % 128, (s * 7 + 3) % 128, (s * 31 + 11) % 128];
                    let val = [1.0f32, -0.5, 0.25];
                    let x = SparseVecRef::new(&idx, &val);
                    assert_eq!(
                        sharded.predict_sparse(x, 4, &mut ss, s as u64),
                        frozen.predict_sparse(x, 4, &mut fs, s as u64),
                        "sparse diverged: {shards} shards {} sample {s}",
                        plan.kind_label()
                    );
                    assert_eq!(
                        sharded.predict_full(x, 4, &mut ss),
                        frozen.predict_full(x, 4, &mut fs),
                        "full diverged: {shards} shards {} sample {s}",
                        plan.kind_label()
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_active_set_equals_unsharded() {
        let net = tiny_net(9);
        let frozen = FrozenNetwork::freeze(&net);
        let plan = ShardPlan::strided(4, 64).unwrap();
        let sharded = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
        let mut fs = frozen.make_scratch();
        let mut ss = sharded.make_scratch();
        for s in 0..16u32 {
            let idx = [s % 128, (s * 13 + 5) % 128];
            let val = [1.0f32, -0.75];
            let x = SparseVecRef::new(&idx, &val);
            frozen.predict_sparse(x, 4, &mut fs, s as u64);
            sharded.predict_sparse(x, 4, &mut ss, s as u64);
            let mut global: Vec<u32> = fs.active.clone();
            let mut merged: Vec<u32> = ss.active_per_shard().flatten().copied().collect();
            global.sort_unstable();
            merged.sort_unstable();
            assert_eq!(global, merged, "active sets diverged at sample {s}");
        }
    }

    #[test]
    fn shard_tables_partition_the_global_tables() {
        let net = tiny_net(5);
        let frozen = FrozenNetwork::freeze(&net);
        let plan = ShardPlan::contiguous(4, 64).unwrap();
        let sharded = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
        let global = frozen.table_stats().stored;
        let per_shard: usize = (0..4).map(|s| sharded.shard(s).table_stats().stored).sum();
        assert_eq!(global, per_shard);
        // Arena bytes: trunk + shard arenas land close to the unsharded
        // model (row padding may differ by alignment only).
        assert!(sharded.arena_bytes() > 0);
    }

    #[test]
    fn publish_shard_validates_ownership() {
        let net = tiny_net(1);
        let plan = ShardPlan::contiguous(4, 64).unwrap();
        let sharded = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
        let engines = ShardedFrozenModel::f32_engines(&net, &plan).unwrap();
        // Correct slot: accepted.
        sharded.publish_shard(2, engines[2].clone()).unwrap();
        // Wrong slot: row ownership mismatch.
        assert!(sharded.publish_shard(1, engines[2].clone()).is_err());
        // Out of range.
        assert!(sharded.publish_shard(9, engines[0].clone()).is_err());
        // Wrong plan shape.
        let other =
            ShardedFrozenModel::f32_engines(&net, &ShardPlan::strided(4, 64).unwrap()).unwrap();
        assert!(sharded.publish_shard(1, other[1].clone()).is_err());
    }

    #[test]
    fn publish_shard_swaps_under_the_same_scratch() {
        let net = tiny_net(2);
        let retrained = tiny_net(12);
        let plan = ShardPlan::strided(2, 64).unwrap();
        let sharded = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
        let mut scratch = sharded.make_scratch();
        let idx = [3u32, 40];
        let val = [1.0f32, -0.5];
        let before = sharded.predict_sparse(SparseVecRef::new(&idx, &val), 3, &mut scratch, 7);
        let engines = ShardedFrozenModel::f32_engines(&retrained, &plan).unwrap();
        sharded.publish_shard(0, engines[0].clone()).unwrap();
        // Same scratch keeps working across the swap.
        let after = sharded.predict_sparse(SparseVecRef::new(&idx, &val), 3, &mut scratch, 7);
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn serves_through_the_model_trait_and_server() {
        let net = tiny_net(4);
        let plan = ShardPlan::contiguous(4, 64).unwrap();
        let sharded = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
        assert_eq!(FrozenModel::precision(&sharded), "f32");
        let server = crate::BatchingServer::start(
            sharded,
            crate::BatchConfig {
                max_batch: 8,
                max_wait: std::time::Duration::from_micros(200),
                queue_cap: 64,
                threads: 2,
            },
        )
        .unwrap();
        for q in 0..20u32 {
            let topk = server.predict(&[q % 128], &[1.0], 3).unwrap();
            assert_eq!(topk.len(), 3);
        }
        assert_eq!(server.stats().errors, 0);
    }

    #[test]
    fn max_active_is_rejected() {
        let mut cfg = NetworkConfig::standard(128, 16, 64);
        cfg.lsh.max_active = Some(32);
        let net = Network::new(cfg).unwrap();
        let err =
            ShardedFrozenModel::shard_f32(&net, ShardPlan::contiguous(2, 64).unwrap()).unwrap_err();
        assert_eq!(err, ServeBuildError::MaxActiveUnsupported);
        assert!(err.to_string().contains("max_active"), "{err}");
    }
}
