//! Read-only inference snapshots of a trained SLIDE network.
//!
//! Training needs racy HOGWILD parameter views, gradient/moment arenas, and
//! locked hash tables that follow the drifting weights. Serving needs none
//! of that: a [`FrozenNetwork`] copies the weights into contiguous,
//! 64-byte-aligned, row-padded f32 arenas (the Figure-3 flat-layout
//! discipline, minus every mutable companion array), builds its LSH tables
//! once from the frozen weights, and then answers queries through `&self`
//! with zero locks and zero allocation on the hot path — safe to share
//! across any number of threads via `Arc`.

use crate::retrieval::{ActiveSetSelector, SelectorScratch};
use slide_core::{relu, Network, NetworkConfig, Precision};
use slide_data::top_k_indices;
use slide_hash::TableStats;
use slide_mem::{AlignedVec, ArenaView, SparseVecRef};
use slide_obs::StageSample;
use slide_simd::{KernelSet, RowGather};
use std::time::Instant;

/// One layer's frozen weights: a contiguous arena whose rows are padded to
/// a 64-byte stride so every row starts on a cache-line boundary (whole-line
/// AVX-512 loads, no split lines — §4.1 of the paper).
///
/// Since the snapshot-persistence PR the arenas are [`ArenaView`]s: a layer
/// frozen from a live network views a buffer it just filled, a layer loaded
/// from a snapshot views the mmapped file directly — same scoring code,
/// zero weight copies on the load path. Cloning shares the arenas.
#[derive(Debug, Clone)]
pub struct FrozenLayer {
    weights: ArenaView<f32>,
    bias: ArenaView<f32>,
    rows: usize,
    cols: usize,
    stride: usize,
}

/// f32 elements per 64-byte cache line; row strides round up to this.
const LANE: usize = slide_simd::CACHE_LINE_BYTES / std::mem::size_of::<f32>();

/// The padded arena stride (in f32 elements) for a row of `cols` elements.
pub(crate) fn f32_stride(cols: usize) -> usize {
    cols.div_ceil(LANE) * LANE
}

impl FrozenLayer {
    /// Snapshot a training-layer parameter block (bf16 weights are widened
    /// to f32 — this layer type always computes at full precision; the
    /// source precision is recorded on the owning network). Public so other
    /// frozen engines (e.g. `slide-quant`, which keeps its sparse-input
    /// layer in f32) can reuse the arena discipline.
    pub fn from_params(p: &slide_core::LayerParams) -> Self {
        let (rows, cols) = (p.rows(), p.cols());
        let stride = f32_stride(cols);
        let mut weights = AlignedVec::<f32>::zeroed(rows * stride);
        for r in 0..rows {
            p.widen_row_into(
                r,
                &mut weights.as_mut_slice()[r * stride..r * stride + cols],
            );
        }
        FrozenLayer {
            weights: ArenaView::from_vec(weights),
            bias: ArenaView::from_vec(AlignedVec::from_slice(p.bias_slice())),
            rows,
            cols,
            stride,
        }
    }

    /// Range-restricted snapshot: copy only the gathered `rows` of a
    /// training-layer parameter block into a fresh aligned arena (row `i`
    /// of the result is source row `rows[i]`, widened to f32). This is how
    /// a shard builds its arena straight from the network — the full
    /// output-layer arena is never materialized, only each shard's slice.
    ///
    /// # Panics
    ///
    /// Panics if any row id is out of range for `p`.
    pub fn from_params_rows(p: &slide_core::LayerParams, rows: &[u32]) -> Self {
        let cols = p.cols();
        let stride = f32_stride(cols);
        let mut weights = AlignedVec::<f32>::zeroed(rows.len() * stride);
        p.widen_rows_into(rows, stride, weights.as_mut_slice());
        let mut bias = AlignedVec::<f32>::zeroed(rows.len());
        p.bias_gather_into(rows, bias.as_mut_slice());
        FrozenLayer {
            weights: ArenaView::from_vec(weights),
            bias: ArenaView::from_vec(bias),
            rows: rows.len(),
            cols,
            stride,
        }
    }

    /// Assemble a layer over existing arena views — the snapshot load path
    /// (the views typically point straight into an mmapped image). The
    /// stride is recomputed from `cols`, so `weights` must hold exactly
    /// `rows` cache-line-padded rows.
    ///
    /// # Errors
    ///
    /// Returns a message when the view lengths disagree with the declared
    /// shape (the snapshot layer reports it as corruption).
    pub fn from_views(
        weights: ArenaView<f32>,
        bias: ArenaView<f32>,
        rows: usize,
        cols: usize,
    ) -> Result<Self, String> {
        let stride = f32_stride(cols);
        if weights.len() != rows * stride {
            return Err(format!(
                "frozen layer: {} weights for {rows} rows x {stride} stride",
                weights.len()
            ));
        }
        // The bias is per-row for row-major layers but per-column for the
        // transposed sparse-input layer; accept either length.
        if bias.len() != rows && bias.len() != cols {
            return Err(format!(
                "frozen layer: {} bias elements for {rows} rows x {cols} cols",
                bias.len()
            ));
        }
        Ok(FrozenLayer {
            weights,
            bias,
            rows,
            cols,
            stride,
        })
    }

    /// Storage rows (output units for row-major layers, input features for
    /// the column-major input layer).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width in meaningful elements (excluding alignment padding).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Weight row `r` (cache-line aligned, `cols` elements).
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.weights.as_slice()[r * self.stride..r * self.stride + self.cols]
    }

    /// Elements between consecutive row starts (`cols` rounded up to a
    /// cache line) — the stride the blocked gemv kernel walks.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The whole padded arena as one flat slice (rows at [`Self::stride`]).
    pub fn flat(&self) -> &[f32] {
        self.weights.as_slice()
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        self.bias.as_slice()
    }

    /// Bytes held by this layer's arenas (padding included).
    pub fn arena_bytes(&self) -> usize {
        (self.weights.len() + self.bias.len()) * std::mem::size_of::<f32>()
    }
}

/// Per-caller mutable state for [`FrozenNetwork`] queries. Allocate one per
/// serving thread ([`FrozenNetwork::make_scratch`]) and reuse it: the
/// steady-state query path performs no heap allocation besides the returned
/// top-k vector.
#[derive(Debug)]
pub struct ServeScratch {
    /// Activation buffer per hidden layer (aligned, layer-width slices).
    pub acts: Vec<AlignedVec<f32>>,
    sel: SelectorScratch,
    /// Active output neurons for the current query (inspection hook).
    pub active: Vec<u32>,
    logits: Vec<f32>,
    /// Row-gather pointer list for the fused active-set scoring kernel.
    gather: RowGather,
    /// Kernel dispatch table, resolved once per scratch (≈ once per serving
    /// thread per snapshot) so the query hot path carries no policy loads.
    kernels: KernelSet,
}

/// An immutable, share-everywhere inference snapshot of a trained
/// [`Network`].
///
/// # Examples
///
/// ```
/// use slide_core::{Network, NetworkConfig};
/// use slide_serve::FrozenNetwork;
///
/// let net = Network::new(NetworkConfig::standard(256, 16, 64)).unwrap();
/// let frozen = FrozenNetwork::freeze(&net);
/// let mut scratch = frozen.make_scratch();
/// let idx = [1u32, 17];
/// let val = [1.0f32, 0.5];
/// let x = slide_mem::SparseVecRef::new(&idx, &val);
/// let topk = frozen.predict_sparse(x, 5, &mut scratch, 0);
/// assert_eq!(topk.len(), 5);
/// ```
#[derive(Debug)]
pub struct FrozenNetwork {
    config: NetworkConfig,
    input: FrozenLayer,
    hidden: Vec<FrozenLayer>,
    output: FrozenLayer,
    selector: ActiveSetSelector,
}

impl FrozenNetwork {
    /// Snapshot `net` into a read-only serving engine: copy all weights into
    /// aligned arenas (widening bf16) and build fresh hash tables from the
    /// frozen output rows using the network's own LSH family, so retrieval
    /// quality matches what the trainer's last rebuild would produce.
    pub fn freeze(net: &Network) -> Self {
        let config = net.config().clone();
        let input = FrozenLayer::from_params(net.input().params());
        let hidden: Vec<FrozenLayer> = net
            .hidden_layers()
            .iter()
            .map(|l| FrozenLayer::from_params(l.params()))
            .collect();
        let output = FrozenLayer::from_params(net.output().params());
        let family = net.output().family().clone();

        let mut selector = ActiveSetSelector::new(family, &config.lsh, output.rows(), config.seed);
        let mut sel_scratch = selector.make_scratch();
        for r in 0..output.rows() {
            selector.insert(r as u32, output.row(r), &mut sel_scratch);
        }

        FrozenNetwork {
            config,
            input,
            hidden,
            output,
            selector,
        }
    }

    /// Assemble a snapshot from already-built parts — the load path (the
    /// layers view an on-disk image, the selector was reconstructed from
    /// stored tables). `freeze` followed by a save/load round trip yields
    /// an engine that predicts bit-identically to the original.
    ///
    /// # Errors
    ///
    /// Returns a message when the parts disagree with `config` (layer
    /// count, output dimensionality, selector universe).
    pub fn from_parts(
        config: NetworkConfig,
        input: FrozenLayer,
        hidden: Vec<FrozenLayer>,
        output: FrozenLayer,
        selector: ActiveSetSelector,
    ) -> Result<Self, String> {
        if hidden.len() + 1 != config.hidden_dims.len() {
            return Err(format!(
                "frozen network: {} dense hidden layers for {} configured dims \
                 (the input layer covers the first)",
                hidden.len(),
                config.hidden_dims.len()
            ));
        }
        if input.rows() != config.input_dim || output.rows() != config.output_dim {
            return Err(format!(
                "frozen network: {}x{} layers for a {}->{} config",
                input.rows(),
                output.rows(),
                config.input_dim,
                config.output_dim
            ));
        }
        if selector.rows() != output.rows() {
            return Err(format!(
                "frozen network: selector over {} rows, output has {}",
                selector.rows(),
                output.rows()
            ));
        }
        Ok(FrozenNetwork {
            config,
            input,
            hidden,
            output,
            selector,
        })
    }

    /// The hidden-layer stack (snapshot serialization hook).
    pub fn hidden_layers(&self) -> &[FrozenLayer] {
        &self.hidden
    }

    /// The frozen sparse-input layer (snapshot serialization hook).
    pub fn input_layer(&self) -> &FrozenLayer {
        &self.input
    }

    /// The precision the source network stored its weights in. The frozen
    /// arenas always hold f32 (bf16 is widened at snapshot time), but the
    /// provenance is recorded so serve logs and bench meta can say what the
    /// snapshot came from instead of silently reporting everything as f32.
    pub fn source_precision(&self) -> Precision {
        self.config.precision
    }

    /// Human-readable precision label for logs and `BENCH_serve.json` meta
    /// (see [`crate::FrozenModel::precision`]).
    pub fn precision_label(&self) -> &'static str {
        match self.config.precision {
            // bf16-activations trains with f32 weights; the snapshot is a
            // plain f32 copy.
            Precision::Fp32 | Precision::Bf16Activations => "f32",
            Precision::Bf16Both => "bf16-widened-f32",
        }
    }

    /// The configuration of the network this snapshot was frozen from.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Sparse input dimensionality accepted by queries.
    pub fn input_dim(&self) -> usize {
        self.input.rows()
    }

    /// Output (label) dimensionality.
    pub fn output_dim(&self) -> usize {
        self.output.rows()
    }

    /// The frozen output layer (row access for equivalence tests and
    /// table-construction inspection).
    pub fn output_layer(&self) -> &FrozenLayer {
        &self.output
    }

    /// The frozen LSH retrieval machinery (partitioning hook for
    /// [`crate::ShardedFrozenModel`] and inspection in tests).
    pub fn selector(&self) -> &ActiveSetSelector {
        &self.selector
    }

    /// Occupancy statistics of the frozen hash tables.
    pub fn table_stats(&self) -> TableStats {
        self.selector.stats()
    }

    /// Total bytes held in weight/bias arenas across all layers.
    pub fn arena_bytes(&self) -> usize {
        self.input.arena_bytes()
            + self
                .hidden
                .iter()
                .map(FrozenLayer::arena_bytes)
                .sum::<usize>()
            + self.output.arena_bytes()
    }

    /// Allocate query scratch sized for this snapshot.
    pub fn make_scratch(&self) -> ServeScratch {
        let mut widths: Vec<usize> = vec![self.input.cols()];
        widths.extend(self.hidden.iter().map(FrozenLayer::rows));
        ServeScratch {
            acts: widths.iter().map(|&w| AlignedVec::zeroed(w)).collect(),
            sel: self.selector.make_scratch(),
            active: Vec::with_capacity(1024),
            logits: Vec::with_capacity(1024),
            gather: RowGather::default(),
            kernels: KernelSet::resolve(),
        }
    }

    /// Check that a query fits this snapshot's input space.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending index or length mismatch.
    pub fn validate_query(&self, indices: &[u32], values: &[f32]) -> Result<(), String> {
        if indices.len() != values.len() {
            return Err(format!(
                "query index/value length mismatch: {} vs {}",
                indices.len(),
                values.len()
            ));
        }
        let dim = self.input.rows() as u32;
        if let Some(&bad) = indices.iter().find(|&&i| i >= dim) {
            return Err(format!("query feature index {bad} >= input_dim {dim}"));
        }
        Ok(())
    }

    /// Run the input + hidden stack, leaving the last hidden activation in
    /// `scratch.acts.last()`.
    ///
    /// # Panics
    ///
    /// Panics if a feature index is out of range or the scratch was built
    /// for a different shape.
    pub fn forward_hidden(&self, x: SparseVecRef<'_>, scratch: &mut ServeScratch) {
        let ks = scratch.kernels;
        let acts = &mut scratch.acts;
        acts[0].as_mut_slice().copy_from_slice(self.input.bias());
        for (j, v) in x.iter() {
            ks.axpy(v, self.input.row(j as usize), acts[0].as_mut_slice());
        }
        relu(acts[0].as_mut_slice());
        for (i, layer) in self.hidden.iter().enumerate() {
            let (src, dst) = acts.split_at_mut(i + 1);
            let (src, dst) = (src[i].as_slice(), dst[0].as_mut_slice());
            // One blocked gemv over the cache-line-strided arena instead of
            // a dispatched dot per unit.
            ks.gemv(layer.flat(), layer.stride(), src, layer.bias(), dst);
            relu(dst);
        }
    }

    /// Build the active set for hidden activation `h` into `scratch.active`:
    /// deduplicated table retrievals, then deterministic pseudo-random
    /// padding up to `min_active` (capped at `max_active`), exactly as the
    /// training-time retrieval does minus label forcing. `h` is passed
    /// separately so it may alias `scratch.acts` through a prior copy.
    pub fn select_active(&self, h: &[f32], scratch: &mut ServeScratch, salt: u64) {
        self.selector
            .select_into(h, &mut scratch.sel, &mut scratch.active, salt);
    }

    /// Predict the top-`k` labels for one sparse input, scoring only the
    /// LSH-retrieved active set (SLIDE inference). Lock-free and `&self`:
    /// any number of threads may call this concurrently on the same
    /// snapshot, each with its own scratch. `salt` decorrelates the
    /// cold-table padding across queries.
    ///
    /// Returns up to `k` label ids, highest logit first (fewer than `k`
    /// only if the active set itself is smaller).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range feature indices (see
    /// [`FrozenNetwork::validate_query`]) and if `k == 0`.
    pub fn predict_sparse(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut ServeScratch,
        salt: u64,
    ) -> Vec<u32> {
        let mut stages = StageSample::default();
        self.predict_sparse_timed(x, k, scratch, salt, &mut stages)
    }

    /// [`FrozenNetwork::predict_sparse`] with per-stage attribution for the
    /// observability trace path: hidden forward + output scoring count as
    /// kernel time, LSH active-set selection as retrieval time. A single
    /// engine has no cross-shard merge, so `merge_us` stays 0.
    pub fn predict_sparse_timed(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut ServeScratch,
        salt: u64,
        stages: &mut StageSample,
    ) -> Vec<u32> {
        let t0 = Instant::now();
        self.forward_hidden(x, scratch);
        let (head, last) = split_acts(scratch);
        let t1 = Instant::now();
        self.selector.select_into(last, head.sel, head.active, salt);
        let t2 = Instant::now();
        head.gather.w_f32.clear();
        for &r in head.active.iter() {
            head.gather.w_f32.push(self.output.row(r as usize).as_ptr());
        }
        head.logits.clear();
        head.logits.resize(head.active.len(), 0.0);
        // SAFETY: every gathered pointer spans `cols` elements of the frozen
        // arena, which outlives the call; fused multi-row scoring with
        // next-block prefetch replaces one dispatched dot per active row.
        unsafe {
            head.kernels
                .score_rows_f32(&head.gather.w_f32, last, head.logits)
        };
        let bias = self.output.bias();
        for (z, &r) in head.logits.iter_mut().zip(head.active.iter()) {
            *z += bias[r as usize];
        }
        let out = top_k_indices(head.logits, k.min(head.active.len().max(1)))
            .into_iter()
            .map(|i| head.active[i as usize])
            .collect();
        *stages = StageSample {
            retrieval_us: (t2 - t1).as_micros() as u64,
            kernel_us: ((t1 - t0) + t2.elapsed()).as_micros() as u64,
            merge_us: 0,
        };
        out
    }

    /// Predict the top-`k` labels scoring *every* output unit (exact
    /// argmax; the accuracy reference for [`FrozenNetwork::predict_sparse`]
    /// and the cross-level equivalence tests).
    pub fn predict_full(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut ServeScratch,
    ) -> Vec<u32> {
        self.forward_hidden(x, scratch);
        let (head, last) = split_acts(scratch);
        head.logits.clear();
        head.logits.resize(self.output.rows(), 0.0);
        head.kernels.gemv(
            self.output.flat(),
            self.output.stride(),
            last,
            self.output.bias(),
            head.logits,
        );
        top_k_indices(head.logits, k)
    }
}

/// Disjoint mutable views of a [`ServeScratch`] minus its activation
/// buffers, so the last activation can be borrowed immutably alongside.
struct ScratchParts<'a> {
    sel: &'a mut SelectorScratch,
    active: &'a mut Vec<u32>,
    logits: &'a mut Vec<f32>,
    gather: &'a mut RowGather,
    kernels: KernelSet,
}

fn split_acts(scratch: &mut ServeScratch) -> (ScratchParts<'_>, &[f32]) {
    let ServeScratch {
        acts,
        sel,
        active,
        logits,
        gather,
        kernels,
    } = scratch;
    let last = acts.last().expect("at least one hidden layer").as_slice();
    (
        ScratchParts {
            sel,
            active,
            logits,
            gather,
            kernels: *kernels,
        },
        last,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_core::LshConfig;

    fn tiny_net() -> Network {
        let mut cfg = NetworkConfig::standard(128, 16, 64);
        cfg.lsh = LshConfig {
            tables: 10,
            key_bits: 4,
            min_active: 16,
            ..Default::default()
        };
        Network::new(cfg).unwrap()
    }

    #[test]
    fn frozen_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenNetwork>();
    }

    #[test]
    fn rows_are_cache_line_aligned() {
        let frozen = FrozenNetwork::freeze(&tiny_net());
        let out = frozen.output_layer();
        for r in [0usize, 1, 33, 63] {
            assert_eq!(out.row(r).as_ptr() as usize % 64, 0, "row {r}");
        }
        assert!(frozen.arena_bytes() > 0);
    }

    #[test]
    fn freeze_preserves_weights_and_bias() {
        let net = tiny_net();
        let frozen = FrozenNetwork::freeze(&net);
        for r in [0usize, 7, 63] {
            assert_eq!(
                frozen.output_layer().row(r),
                net.output().params().row_f32(r)
            );
        }
        assert_eq!(
            frozen.output_layer().bias(),
            net.output().params().bias_slice()
        );
        assert_eq!(frozen.input_dim(), 128);
        assert_eq!(frozen.output_dim(), 64);
    }

    #[test]
    fn frozen_tables_cover_all_neurons() {
        let frozen = FrozenNetwork::freeze(&tiny_net());
        let stats = frozen.table_stats();
        assert_eq!(stats.stored, 64 * 10);
    }

    #[test]
    fn predict_full_matches_training_exact_path() {
        let net = tiny_net();
        let frozen = FrozenNetwork::freeze(&net);
        let mut fs = frozen.make_scratch();
        let mut ts = net.make_scratch();
        for s in 0..20u32 {
            let idx = [s % 128, (s * 7 + 3) % 128, (s * 31 + 11) % 128];
            let val = [1.0f32, -0.5, 0.25];
            let x = SparseVecRef::new(&idx, &val);
            let frozen_top = frozen.predict_full(x, 3, &mut fs);
            let train_top = net.predict(x, 3, &mut ts, /*exact=*/ true, 0);
            assert_eq!(frozen_top, train_top, "sample {s}");
        }
    }

    #[test]
    fn neuron_retrieves_itself_through_frozen_tables() {
        let net = tiny_net();
        let frozen = FrozenNetwork::freeze(&net);
        let mut scratch = frozen.make_scratch();
        for r in [0usize, 17, 63] {
            let w = frozen.output_layer().row(r).to_vec();
            frozen.select_active(&w, &mut scratch, 0);
            assert!(
                scratch.active.contains(&(r as u32)),
                "neuron {r} missing from its own active set"
            );
        }
    }

    #[test]
    fn predict_agrees_across_kernel_variants() {
        // The fused gather/gemv path and the pre-fusion single-row path
        // must retrieve and rank identically on the same snapshot.
        let frozen = FrozenNetwork::freeze(&tiny_net());
        let level = slide_simd::effective_level();
        let run = |variant: slide_simd::KernelVariant| {
            let mut scratch = frozen.make_scratch();
            scratch.kernels = slide_simd::KernelSet::for_level_variant(level, variant);
            let mut out = Vec::new();
            for s in 0..16u32 {
                let idx = [s % 128, (s * 13 + 5) % 128];
                let val = [1.0f32, -0.75];
                let x = SparseVecRef::new(&idx, &val);
                out.push((
                    frozen.predict_sparse(x, 4, &mut scratch, s as u64),
                    frozen.predict_full(x, 4, &mut scratch),
                ));
            }
            out
        };
        let fused = run(slide_simd::KernelVariant::Fused);
        let single = run(slide_simd::KernelVariant::SingleRow);
        let blocked = run(slide_simd::KernelVariant::Blocked);
        assert_eq!(fused, single);
        assert_eq!(fused, blocked);
    }

    #[test]
    fn predict_sparse_pads_to_min_active_and_dedups() {
        let frozen = FrozenNetwork::freeze(&tiny_net());
        let mut scratch = frozen.make_scratch();
        let idx = [5u32];
        let val = [0.0f32]; // zero input: tables may return little
        let topk = frozen.predict_sparse(SparseVecRef::new(&idx, &val), 4, &mut scratch, 9);
        assert!(topk.len() <= 4);
        assert!(scratch.active.len() >= 16, "min_active padding");
        let mut seen = std::collections::HashSet::new();
        assert!(scratch.active.iter().all(|&a| seen.insert(a)));
    }

    #[test]
    fn validate_query_reports_bad_input() {
        let frozen = FrozenNetwork::freeze(&tiny_net());
        assert!(frozen.validate_query(&[0, 127], &[1.0, 2.0]).is_ok());
        let err = frozen.validate_query(&[128], &[1.0]).unwrap_err();
        assert!(err.contains("128"), "{err}");
        assert!(frozen.validate_query(&[0], &[]).is_err());
    }

    #[test]
    fn bf16_network_freezes_to_widened_f32() {
        let mut cfg = NetworkConfig::standard(64, 8, 32);
        cfg.precision = slide_core::Precision::Bf16Both;
        cfg.lsh.tables = 6;
        cfg.lsh.key_bits = 4;
        let net = Network::new(cfg).unwrap();
        let frozen = FrozenNetwork::freeze(&net);
        assert_eq!(
            frozen.output_layer().row(3),
            net.output().params().row_f32(3)
        );
        // The widening is no longer silent: provenance is recorded for
        // serve logs and bench meta.
        assert_eq!(frozen.source_precision(), slide_core::Precision::Bf16Both);
        assert_eq!(frozen.precision_label(), "bf16-widened-f32");
    }

    #[test]
    fn f32_network_reports_f32_precision() {
        let frozen = FrozenNetwork::freeze(&tiny_net());
        assert_eq!(frozen.precision_label(), "f32");
    }

    #[test]
    fn deep_network_freezes_and_predicts() {
        let mut cfg = NetworkConfig::standard(64, 16, 32);
        cfg.hidden_dims = vec![16, 12, 8];
        cfg.lsh.tables = 6;
        cfg.lsh.key_bits = 4;
        cfg.lsh.min_active = 8;
        let net = Network::new(cfg).unwrap();
        let frozen = FrozenNetwork::freeze(&net);
        let mut scratch = frozen.make_scratch();
        let idx = [3u32, 40];
        let val = [1.0f32, -0.5];
        let topk = frozen.predict_sparse(SparseVecRef::new(&idx, &val), 3, &mut scratch, 0);
        assert_eq!(topk.len(), 3);
        // Exact path agrees with the training network's exact path on depth.
        let mut ts = net.make_scratch();
        assert_eq!(
            frozen.predict_full(SparseVecRef::new(&idx, &val), 3, &mut scratch),
            net.predict(SparseVecRef::new(&idx, &val), 3, &mut ts, true, 0)
        );
    }
}
