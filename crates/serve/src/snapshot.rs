//! The `.slsnap` on-disk snapshot format: checksummed, 64-byte-aligned,
//! mmap-friendly serving images.
//!
//! Before this format existed, every serving process rebuilt its engine
//! from a live [`slide_core::Network`] — retrain (or at least re-freeze,
//! re-quantize, re-hash) on every cold start. A snapshot instead persists
//! the *frozen* artifacts — padded weight arenas, biases, quantized codes,
//! and the LSH tables in CSR form — in exactly the in-memory layout the
//! engines score from, so loading is `mmap` + header/CRC verification +
//! pointer arithmetic: the arenas are never parsed, transposed, or copied
//! (see DESIGN.md §10 for the full layout and the one honest caveat: CRC
//! verification is a sequential read pass over the file, it is *parsing*
//! that is eliminated, not page-ins).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "SLSN"
//!      4     4  format version (1)
//!      8     4  precision code (0 = f32, 1 = i8)
//!     12     4  plan kind (0 = unsharded, 1 = contiguous, 2 = strided)
//!     16     4  shard count (1 when unsharded)
//!     20     4  section count
//!     24     8  total image length in bytes
//!     32     4  CRC-32 of the section table
//!     36    24  reserved (zero)
//!     60     4  CRC-32 of header bytes 0..60
//!     64   32n  section table: {kind u32, index u32, offset u64,
//!               len u64 (bytes), crc u32, reserved u32} per section
//!      …        payloads, each starting on a 64-byte boundary
//! ```
//!
//! Sections are addressed `(kind, index)`; the index is the layer ordinal
//! (0 = input, `1..=H` = hidden, `H+1` = output — or `H+1+s` for shard
//! `s` of a sharded image). The LSH sections always hold the **global**
//! selector's tables: a sharded load reconstructs the global selector and
//! re-partitions it exactly as the builder did, which is what makes loaded
//! sharded retrieval bit-equal to built sharded retrieval.
//!
//! This module owns the format plus the f32 encode/decode paths; the int8
//! sections and the unified `Snapshot::build` entry point live in
//! `slide-quant` (which can see both precisions).

use crate::error::ServeBuildError;
use crate::frozen::{FrozenLayer, FrozenNetwork};
use crate::retrieval::{ActiveSetSelector, TABLE_SEED_SALT};
use crate::shard::{F32Shard, F32Trunk, ShardEngine, ShardPlan, ShardPlanKind, ShardedFrozenModel};
use slide_core::{HashFamilyKind, LshConfig, MemoryConfig, Network, NetworkConfig, Precision};
use slide_hash::{BucketPolicy, DwtaConfig, LshFamily, LshTables, SimHashConfig, TablesCsr};
use slide_mem::{crc32, pod_bytes, AlignedVec, ArenaView, Pod, SharedArena};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// `b"SLSN"` — "SLide SNapshot".
pub const MAGIC: u32 = u32::from_le_bytes(*b"SLSN");

/// Current format version. Bump on any layout change; readers reject
/// versions they do not know.
pub const FORMAT_VERSION: u32 = 1;

/// Every payload section starts on this alignment (one cache line), so an
/// f32/i8 arena viewed straight out of the mmapped image satisfies the
/// same alignment contract as a freshly built [`AlignedVec`] arena.
pub const SECTION_ALIGN: usize = 64;

const HEADER_LEN: usize = 64;
const SECTION_ENTRY_LEN: usize = 32;

/// Storage precision of a snapshot image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotPrecision {
    /// f32 arenas ([`FrozenNetwork`] / f32 shards).
    F32,
    /// int8 codes + per-row scales (`slide-quant` engines).
    I8,
}

impl SnapshotPrecision {
    /// The on-disk precision code.
    pub fn code(self) -> u32 {
        match self {
            SnapshotPrecision::F32 => 0,
            SnapshotPrecision::I8 => 1,
        }
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(SnapshotPrecision::F32),
            1 => Some(SnapshotPrecision::I8),
            _ => None,
        }
    }

    /// Label for logs and bench meta (`"f32"` / `"i8"`).
    pub fn label(self) -> &'static str {
        match self {
            SnapshotPrecision::F32 => "f32",
            SnapshotPrecision::I8 => "i8",
        }
    }
}

/// What to snapshot a network *as*: the one spec that replaces the old
/// `FrozenNetwork::freeze` / `QuantizedFrozenNetwork::quantize` /
/// per-shard constructor fan-out. Build with [`SnapshotSpec::f32`] or
/// [`SnapshotSpec::i8`], optionally sharding via [`SnapshotSpec::sharded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSpec {
    /// Arena storage precision.
    pub precision: SnapshotPrecision,
    /// Output-layer shard plan; `None` serves the output layer unsharded.
    pub shard_plan: Option<ShardPlan>,
}

impl SnapshotSpec {
    /// An unsharded f32 snapshot (what `FrozenNetwork::freeze` produced).
    pub fn f32() -> Self {
        SnapshotSpec {
            precision: SnapshotPrecision::F32,
            shard_plan: None,
        }
    }

    /// An unsharded int8 snapshot (what `QuantizedFrozenNetwork::quantize`
    /// produced).
    pub fn i8() -> Self {
        SnapshotSpec {
            precision: SnapshotPrecision::I8,
            shard_plan: None,
        }
    }

    /// The same precision, output layer sharded under `plan`.
    pub fn sharded(self, plan: ShardPlan) -> Self {
        SnapshotSpec {
            shard_plan: Some(plan),
            ..self
        }
    }

    /// Shard count (1 when unsharded).
    pub fn shards(&self) -> usize {
        self.shard_plan.map_or(1, |p| p.shards())
    }
}

/// Why a snapshot could not be saved, opened, or instantiated.
#[derive(Debug)]
pub enum SnapshotError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// The image failed structural or checksum verification — truncated
    /// file, bit flip, torn write, shape that disagrees with its own
    /// config. Never a panic: corruption is an error the caller handles.
    Corrupt(String),
    /// The image is well-formed but this build cannot serve it (unknown
    /// format version, precision code, or plan kind).
    Unsupported(String),
    /// The decoded parts were healthy but the serving engine rejected them
    /// (e.g. a `max_active` config sharded serving cannot honour).
    Build(ServeBuildError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapshotError::Unsupported(msg) => write!(f, "snapshot unsupported: {msg}"),
            SnapshotError::Build(e) => write!(f, "snapshot build: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<ServeBuildError> for SnapshotError {
    fn from(e: ServeBuildError) -> Self {
        SnapshotError::Build(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// Payload section kinds. `(kind, index)` addresses a section; `index` is
/// the layer ordinal for per-layer kinds and 0 for the global ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// The hand-encoded [`NetworkConfig`] (index 0).
    Config = 1,
    /// Per-layer shape manifest (index 0): cross-checks the config at load.
    Manifest = 2,
    /// One layer's padded f32 weight arena.
    WeightsF32 = 3,
    /// One layer's bias vector (f32, both precisions).
    Bias = 4,
    /// One layer's padded int8 code arena (`slide-quant`).
    QuantWeights = 5,
    /// One layer's per-row dequantization scales (f32, `slide-quant`).
    QuantScales = 6,
    /// Global LSH tables, CSR offsets (u32, index 0).
    TableOffsets = 7,
    /// Global LSH tables, CSR items (u32, index 0).
    TableItems = 8,
    /// Global LSH tables, per-bucket arrival counters (u64, index 0).
    TableArrivals = 9,
    /// The quantization report (`slide-quant`, index 0): per-layer error
    /// stats that cannot be recomputed without the original f32 weights.
    QuantReport = 10,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => SectionKind::Config,
            2 => SectionKind::Manifest,
            3 => SectionKind::WeightsF32,
            4 => SectionKind::Bias,
            5 => SectionKind::QuantWeights,
            6 => SectionKind::QuantScales,
            7 => SectionKind::TableOffsets,
            8 => SectionKind::TableItems,
            9 => SectionKind::TableArrivals,
            10 => SectionKind::QuantReport,
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------------
// Little-endian plumbing
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("bounds checked"))
}

fn align_up(v: usize) -> usize {
    v.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Assembles a snapshot image in memory: add sections, then
/// [`SnapshotWriter::finish`] lays them out with aligned offsets and CRCs.
/// The finished image is byte-for-byte what [`SnapshotImage::open`] later
/// maps, so "build" and "load" hand the engines identical arenas.
#[derive(Debug)]
pub struct SnapshotWriter {
    precision: SnapshotPrecision,
    plan_kind: u32,
    shards: u32,
    sections: Vec<(SectionKind, u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Start an image for `spec`.
    pub fn new(spec: &SnapshotSpec) -> Self {
        let (plan_kind, shards) = match spec.shard_plan {
            None => (0, 1),
            Some(p) => (
                match p.kind() {
                    ShardPlanKind::Contiguous => 1,
                    ShardPlanKind::Strided => 2,
                },
                p.shards() as u32,
            ),
        };
        SnapshotWriter {
            precision: spec.precision,
            plan_kind,
            shards,
            sections: Vec::new(),
        }
    }

    /// Append a raw byte section.
    pub fn section(&mut self, kind: SectionKind, index: u32, bytes: Vec<u8>) {
        self.sections.push((kind, index, bytes));
    }

    /// Append a typed section (the payload is the elements' raw LE bytes —
    /// every [`Pod`] type is a fixed-width little-endian scalar on every
    /// platform this engine targets).
    pub fn section_pod<T: Pod>(&mut self, kind: SectionKind, index: u32, data: &[T]) {
        self.section(kind, index, pod_bytes(data).to_vec());
    }

    /// Lay the image out: header, section table, aligned payloads, CRCs.
    pub fn finish(self) -> AlignedVec<u8> {
        let table_len = self.sections.len() * SECTION_ENTRY_LEN;
        // Align up *before* each payload, never after the last one: the
        // image ends exactly where its final section does, so every byte
        // past the table is either CRC-covered payload or an inter-section
        // gap no reader ever dereferences.
        let mut cursor = HEADER_LEN + table_len;
        let offsets: Vec<usize> = self
            .sections
            .iter()
            .map(|(_, _, bytes)| {
                let at = align_up(cursor);
                cursor = at + bytes.len();
                at
            })
            .collect();
        let total = cursor.max(HEADER_LEN);
        let mut image = AlignedVec::<u8>::zeroed(total);
        let buf = image.as_mut_slice();

        for (i, (kind, index, bytes)) in self.sections.iter().enumerate() {
            let entry = HEADER_LEN + i * SECTION_ENTRY_LEN;
            put_u32(buf, entry, *kind as u32);
            put_u32(buf, entry + 4, *index);
            put_u64(buf, entry + 8, offsets[i] as u64);
            put_u64(buf, entry + 16, bytes.len() as u64);
            put_u32(buf, entry + 24, crc32(bytes));
            buf[offsets[i]..offsets[i] + bytes.len()].copy_from_slice(bytes);
        }
        let table_crc = crc32(&buf[HEADER_LEN..HEADER_LEN + table_len]);

        put_u32(buf, 0, MAGIC);
        put_u32(buf, 4, FORMAT_VERSION);
        put_u32(buf, 8, self.precision.code());
        put_u32(buf, 12, self.plan_kind);
        put_u32(buf, 16, self.shards);
        put_u32(buf, 20, self.sections.len() as u32);
        put_u64(buf, 24, total as u64);
        put_u32(buf, 32, table_crc);
        let header_crc = crc32(&buf[..60]);
        put_u32(buf, 60, header_crc);
        image
    }
}

// ---------------------------------------------------------------------------
// Image
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    kind: SectionKind,
    index: u32,
    offset: usize,
    len: usize,
}

/// A verified snapshot image over a [`SharedArena`] (mmapped file or
/// in-memory build). Construction runs the full verification pass — magic,
/// version, header CRC, section-table CRC, per-section bounds, alignment,
/// and payload CRCs — so every later accessor works on trusted offsets.
#[derive(Debug)]
pub struct SnapshotImage {
    arena: SharedArena,
    precision: SnapshotPrecision,
    plan: Option<(ShardPlanKind, usize)>,
    sections: Vec<SectionEntry>,
}

impl SnapshotImage {
    /// Map `path` and verify it.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be mapped/read; otherwise
    /// as [`SnapshotImage::from_arena`].
    pub fn open(path: &Path) -> Result<Self, SnapshotError> {
        Self::from_arena(SharedArena::map_file(path)?)
    }

    /// Verify an in-memory image (the build path hands its freshly encoded
    /// arena straight here, so both paths run the same checks).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on any structural or checksum failure;
    /// [`SnapshotError::Unsupported`] on an unknown version, precision, or
    /// plan kind.
    pub fn from_arena(arena: SharedArena) -> Result<Self, SnapshotError> {
        let buf = arena.as_slice();
        if buf.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "{} bytes is smaller than the {HEADER_LEN}-byte header",
                buf.len()
            )));
        }
        if get_u32(buf, 0) != MAGIC {
            return Err(corrupt("bad magic (not a .slsnap image)"));
        }
        if get_u32(buf, 60) != crc32(&buf[..60]) {
            return Err(corrupt("header checksum mismatch"));
        }
        let version = get_u32(buf, 4);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::Unsupported(format!(
                "format version {version}, this build reads {FORMAT_VERSION}"
            )));
        }
        let precision = SnapshotPrecision::from_code(get_u32(buf, 8)).ok_or_else(|| {
            SnapshotError::Unsupported(format!("precision code {}", get_u32(buf, 8)))
        })?;
        let shards = get_u32(buf, 16) as usize;
        let plan = match get_u32(buf, 12) {
            0 => {
                if shards != 1 {
                    return Err(corrupt(format!("unsharded image declares {shards} shards")));
                }
                None
            }
            1 => Some((ShardPlanKind::Contiguous, shards)),
            2 => Some((ShardPlanKind::Strided, shards)),
            k => return Err(SnapshotError::Unsupported(format!("plan kind {k}"))),
        };
        if plan.is_some() && shards == 0 {
            return Err(corrupt("sharded image declares zero shards"));
        }
        let total = get_u64(buf, 24) as usize;
        if total != buf.len() {
            return Err(corrupt(format!(
                "header declares {total} bytes, file holds {}",
                buf.len()
            )));
        }
        let count = get_u32(buf, 20) as usize;
        let table_len = count
            .checked_mul(SECTION_ENTRY_LEN)
            .filter(|&t| HEADER_LEN + t <= buf.len())
            .ok_or_else(|| corrupt(format!("section table of {count} entries out of bounds")))?;
        let table = &buf[HEADER_LEN..HEADER_LEN + table_len];
        if get_u32(buf, 32) != crc32(table) {
            return Err(corrupt("section table checksum mismatch"));
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = i * SECTION_ENTRY_LEN;
            let kind = SectionKind::from_u32(get_u32(table, at)).ok_or_else(|| {
                SnapshotError::Unsupported(format!("section kind {}", get_u32(table, at)))
            })?;
            let index = get_u32(table, at + 4);
            let offset = get_u64(table, at + 8) as usize;
            let len = get_u64(table, at + 16) as usize;
            let crc = get_u32(table, at + 24);
            if !offset.is_multiple_of(SECTION_ALIGN) {
                return Err(corrupt(format!(
                    "section {kind:?}[{index}] at unaligned offset {offset}"
                )));
            }
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| {
                    corrupt(format!("section {kind:?}[{index}] spills past the image"))
                })?;
            if crc32(&buf[offset..end]) != crc {
                return Err(corrupt(format!(
                    "section {kind:?}[{index}] payload checksum mismatch"
                )));
            }
            if sections
                .iter()
                .any(|s: &SectionEntry| s.kind == kind && s.index == index)
            {
                return Err(corrupt(format!("duplicate section {kind:?}[{index}]")));
            }
            sections.push(SectionEntry {
                kind,
                index,
                offset,
                len,
            });
        }
        Ok(SnapshotImage {
            arena,
            precision,
            plan,
            sections,
        })
    }

    /// Storage precision declared by the header.
    pub fn precision(&self) -> SnapshotPrecision {
        self.precision
    }

    /// `(plan kind, shard count)` for sharded images, `None` when unsharded.
    pub fn plan(&self) -> Option<(ShardPlanKind, usize)> {
        self.plan
    }

    /// The backing arena (byte-length / diagnostics hook).
    pub fn arena(&self) -> &SharedArena {
        &self.arena
    }

    /// Whether `(kind, index)` exists in the image.
    pub fn has(&self, kind: SectionKind, index: u32) -> bool {
        self.entry(kind, index).is_some()
    }

    fn entry(&self, kind: SectionKind, index: u32) -> Option<&SectionEntry> {
        self.sections
            .iter()
            .find(|s| s.kind == kind && s.index == index)
    }

    /// Raw bytes of section `(kind, index)`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if the section is absent.
    pub fn bytes(&self, kind: SectionKind, index: u32) -> Result<&[u8], SnapshotError> {
        let s = self
            .entry(kind, index)
            .ok_or_else(|| corrupt(format!("missing section {kind:?}[{index}]")))?;
        Ok(&self.arena.as_slice()[s.offset..s.offset + s.len])
    }

    /// A typed view of section `(kind, index)` straight over the image —
    /// the zero-copy hook every loaded arena goes through.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if the section is absent or its byte
    /// length is not a whole number of `T`s.
    pub fn view<T: Pod>(
        &self,
        kind: SectionKind,
        index: u32,
    ) -> Result<ArenaView<T>, SnapshotError> {
        let s = self
            .entry(kind, index)
            .ok_or_else(|| corrupt(format!("missing section {kind:?}[{index}]")))?;
        let size = std::mem::size_of::<T>();
        if s.len % size != 0 {
            return Err(corrupt(format!(
                "section {kind:?}[{index}]: {} bytes is not a whole number of {size}-byte elements",
                s.len
            )));
        }
        self.arena
            .view::<T>(s.offset, s.len / size)
            .map_err(corrupt)
    }
}

// ---------------------------------------------------------------------------
// NetworkConfig codec (hand-rolled: the serde shim is untrusted for
// persistence; this is an explicit, versioned-with-the-format binary layout)
// ---------------------------------------------------------------------------

/// Encode `config` into the [`SectionKind::Config`] payload.
pub fn encode_config(config: &NetworkConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(96 + config.hidden_dims.len() * 8);
    let w64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    let w32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
    w64(&mut out, config.input_dim as u64);
    w64(&mut out, config.output_dim as u64);
    w32(&mut out, config.hidden_dims.len() as u32);
    for &h in &config.hidden_dims {
        w64(&mut out, h as u64);
    }
    w64(&mut out, config.seed);
    w32(
        &mut out,
        match config.precision {
            Precision::Fp32 => 0,
            Precision::Bf16Activations => 1,
            Precision::Bf16Both => 2,
        },
    );
    match config.lsh.family {
        HashFamilyKind::Dwta { bin_size } => {
            w32(&mut out, 0);
            w64(&mut out, bin_size as u64);
        }
        HashFamilyKind::SimHash => {
            w32(&mut out, 1);
            w64(&mut out, 0);
        }
    }
    w32(&mut out, config.lsh.key_bits);
    w64(&mut out, config.lsh.tables as u64);
    w64(&mut out, config.lsh.bucket_cap as u64);
    w32(
        &mut out,
        match config.lsh.policy {
            BucketPolicy::Fifo => 0,
            BucketPolicy::Reservoir => 1,
        },
    );
    w64(&mut out, config.lsh.min_active as u64);
    match config.lsh.max_active {
        None => {
            w32(&mut out, 0);
            w64(&mut out, 0);
        }
        Some(m) => {
            w32(&mut out, 1);
            w64(&mut out, m as u64);
        }
    }
    w64(&mut out, config.lsh.probes as u64);
    out.push(u8::from(config.memory.coalesced_params));
    out.push(u8::from(config.memory.coalesced_data));
    out
}

/// Bounds-checked cursor over a config/manifest payload.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("payload truncated"))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| corrupt("value exceeds this platform's usize"))
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.at != self.buf.len() {
            return Err(corrupt(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

/// Decode the [`SectionKind::Config`] payload. The decoded config is run
/// through [`NetworkConfig::validate`], so a structurally valid payload
/// carrying nonsense parameters is still rejected as corruption.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on truncation, trailing bytes, unknown
/// enum codes, or a config that fails validation.
pub fn decode_config(bytes: &[u8]) -> Result<NetworkConfig, SnapshotError> {
    let mut r = Reader::new(bytes);
    let input_dim = r.usize()?;
    let output_dim = r.usize()?;
    let hidden_count = r.u32()? as usize;
    if hidden_count > 1024 {
        return Err(corrupt(format!("{hidden_count} hidden layers")));
    }
    let mut hidden_dims = Vec::with_capacity(hidden_count);
    for _ in 0..hidden_count {
        hidden_dims.push(r.usize()?);
    }
    let seed = r.u64()?;
    let precision = match r.u32()? {
        0 => Precision::Fp32,
        1 => Precision::Bf16Activations,
        2 => Precision::Bf16Both,
        p => return Err(corrupt(format!("precision code {p}"))),
    };
    let family_tag = r.u32()?;
    let bin_size = r.usize()?;
    let family = match family_tag {
        0 => HashFamilyKind::Dwta { bin_size },
        1 => HashFamilyKind::SimHash,
        t => return Err(corrupt(format!("hash family tag {t}"))),
    };
    let key_bits = r.u32()?;
    let tables = r.usize()?;
    let bucket_cap = r.usize()?;
    let policy = match r.u32()? {
        0 => BucketPolicy::Fifo,
        1 => BucketPolicy::Reservoir,
        p => return Err(corrupt(format!("bucket policy code {p}"))),
    };
    let min_active = r.usize()?;
    let max_active = match r.u32()? {
        0 => {
            r.u64()?;
            None
        }
        1 => Some(r.usize()?),
        t => return Err(corrupt(format!("max_active tag {t}"))),
    };
    let probes = r.usize()?;
    let coalesced_params = r.u8()? != 0;
    let coalesced_data = r.u8()? != 0;
    r.done()?;
    let config = NetworkConfig {
        input_dim,
        hidden_dims,
        output_dim,
        lsh: LshConfig {
            family,
            key_bits,
            tables,
            bucket_cap,
            policy,
            min_active,
            max_active,
            probes,
        },
        precision,
        memory: MemoryConfig {
            coalesced_params,
            coalesced_data,
        },
        seed,
    };
    config
        .validate()
        .map_err(|e| corrupt(format!("decoded config invalid: {e}")))?;
    Ok(config)
}

// ---------------------------------------------------------------------------
// Manifest codec
// ---------------------------------------------------------------------------

/// One layer's declared shape in the [`SectionKind::Manifest`]: layer
/// ordinals run input (0), hidden (`1..=H`), then output (one entry
/// unsharded, one per shard sharded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerDims {
    /// Arena rows (features for the transposed input layer, units
    /// otherwise; shard entries hold the shard's row count).
    pub rows: usize,
    /// Meaningful elements per row (stride is recomputed per precision).
    pub cols: usize,
    /// Bias length (`cols` for the input layer, `rows` otherwise).
    pub bias_len: usize,
}

/// Encode the per-layer manifest.
pub fn encode_manifest(layers: &[LayerDims]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + layers.len() * 24);
    out.extend_from_slice(&(layers.len() as u32).to_le_bytes());
    for l in layers {
        out.extend_from_slice(&(l.rows as u64).to_le_bytes());
        out.extend_from_slice(&(l.cols as u64).to_le_bytes());
        out.extend_from_slice(&(l.bias_len as u64).to_le_bytes());
    }
    out
}

/// Decode the per-layer manifest.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on truncation or trailing bytes.
pub fn decode_manifest(bytes: &[u8]) -> Result<Vec<LayerDims>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    if count > 1_000_000 {
        return Err(corrupt(format!("{count} manifest entries")));
    }
    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        layers.push(LayerDims {
            rows: r.usize()?,
            cols: r.usize()?,
            bias_len: r.usize()?,
        });
    }
    r.done()?;
    Ok(layers)
}

/// Number of dense hidden layers a network of `config` carries: the input
/// layer already produces `hidden_dims[0]`, so the dense stack covers the
/// *transitions* between hidden widths — `hidden_dims.len() - 1` layers
/// (zero for the paper's standard one-hidden-layer architecture). Every
/// ordinal computation in the format derives from this one definition.
pub fn dense_hidden_count(config: &NetworkConfig) -> usize {
    config.hidden_dims.len() - 1
}

/// The manifest a network of `config` produces under `spec` — derived once
/// here so the encoder writes it and the decoder cross-checks it. Ordinals:
/// the transposed input layer (one row per feature, bias per first-hidden
/// column), the dense hidden stack (one layer per adjacent `hidden_dims`
/// pair — the input layer already emits `hidden_dims[0]`), then the output
/// layer — whole, or one entry per shard.
pub fn expected_manifest(config: &NetworkConfig, spec: &SnapshotSpec) -> Vec<LayerDims> {
    let first_hidden = config.hidden_dims[0];
    let mut layers = vec![LayerDims {
        rows: config.input_dim,
        cols: first_hidden,
        bias_len: first_hidden,
    }];
    for w in config.hidden_dims.windows(2) {
        layers.push(LayerDims {
            rows: w[1],
            cols: w[0],
            bias_len: w[1],
        });
    }
    let last_hidden = *config.hidden_dims.last().expect("validated non-empty");
    match spec.shard_plan {
        None => layers.push(LayerDims {
            rows: config.output_dim,
            cols: last_hidden,
            bias_len: config.output_dim,
        }),
        Some(plan) => {
            for s in 0..plan.shards() {
                let rows = plan.shard_rows(s).len();
                layers.push(LayerDims {
                    rows,
                    cols: last_hidden,
                    bias_len: rows,
                });
            }
        }
    }
    layers
}

// ---------------------------------------------------------------------------
// Selector codec
// ---------------------------------------------------------------------------

/// Write the global selector's frozen tables as the three CSR sections.
pub fn encode_selector(writer: &mut SnapshotWriter, selector: &ActiveSetSelector) {
    let csr = selector.tables().to_csr();
    writer.section_pod(SectionKind::TableOffsets, 0, &csr.offsets);
    writer.section_pod(SectionKind::TableItems, 0, &csr.items);
    writer.section_pod(SectionKind::TableArrivals, 0, &csr.arrivals);
}

/// Rebuild the global [`ActiveSetSelector`] from an image's CSR sections
/// and its stored config: the hash family and every table/policy seed are
/// re-derived from `config.seed` exactly as the original build derived
/// them, and the CSR round trip preserves bucket contents, order, and
/// reservoir arrival counters — so the loaded selector retrieves
/// bit-identically to the one that was saved.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] if the CSR sections are missing or
/// malformed for the config's table shape.
pub fn decode_selector(
    image: &SnapshotImage,
    config: &NetworkConfig,
) -> Result<ActiveSetSelector, SnapshotError> {
    let csr = TablesCsr {
        offsets: image
            .view::<u32>(SectionKind::TableOffsets, 0)?
            .as_slice()
            .to_vec(),
        items: image
            .view::<u32>(SectionKind::TableItems, 0)?
            .as_slice()
            .to_vec(),
        arrivals: image
            .view::<u64>(SectionKind::TableArrivals, 0)?
            .as_slice()
            .to_vec(),
    };
    let tables = LshTables::from_csr(
        config.lsh.tables,
        config.lsh.key_bits,
        config.lsh.bucket_cap,
        config.lsh.policy,
        config.seed ^ TABLE_SEED_SALT,
        &csr,
    )
    .map_err(corrupt)?;
    Ok(ActiveSetSelector::from_tables(
        family_for(config),
        &config.lsh,
        config.output_dim,
        config.seed,
        tables,
    ))
}

/// Reconstruct the LSH family a network of `config` hashes its output rows
/// with — the same construction and seed chain as the training side, where
/// `Network::new` hands the output layer `config.seed ^ 0x0707` and the
/// layer salts its family from that. Stored table contents are only
/// meaningful under this exact family: rows were inserted under its hash
/// functions, and queries must hash with the same ones.
pub fn family_for(config: &NetworkConfig) -> LshFamily {
    let hidden = *config.hidden_dims.last().expect("validated non-empty");
    let layer_seed = config.seed ^ 0x0707;
    match config.lsh.family {
        HashFamilyKind::Dwta { bin_size } => LshFamily::dwta(DwtaConfig {
            dim: hidden,
            key_bits: config.lsh.key_bits,
            tables: config.lsh.tables,
            bin_size,
            seed: layer_seed ^ 0xD1A7,
        }),
        HashFamilyKind::SimHash => LshFamily::simhash(SimHashConfig {
            dim: hidden,
            key_bits: config.lsh.key_bits,
            tables: config.lsh.tables,
            seed: layer_seed ^ 0x51A7,
        }),
    }
}

// ---------------------------------------------------------------------------
// f32 encode / decode
// ---------------------------------------------------------------------------

/// Write one f32 layer's arena + bias sections at `ordinal`.
pub fn encode_f32_layer(writer: &mut SnapshotWriter, ordinal: u32, layer: &FrozenLayer) {
    writer.section_pod(SectionKind::WeightsF32, ordinal, layer.flat());
    writer.section_pod(SectionKind::Bias, ordinal, layer.bias());
}

/// View one f32 layer out of the image at `ordinal` with the manifest's
/// declared shape.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] if sections are missing or their lengths
/// disagree with `dims`.
pub fn decode_f32_layer(
    image: &SnapshotImage,
    ordinal: u32,
    dims: LayerDims,
) -> Result<FrozenLayer, SnapshotError> {
    let weights = image.view::<f32>(SectionKind::WeightsF32, ordinal)?;
    let bias = image.view::<f32>(SectionKind::Bias, ordinal)?;
    if bias.len() != dims.bias_len {
        return Err(corrupt(format!(
            "layer {ordinal}: {} bias elements, manifest declares {}",
            bias.len(),
            dims.bias_len
        )));
    }
    FrozenLayer::from_views(weights, bias, dims.rows, dims.cols)
        .map_err(|e| corrupt(format!("layer {ordinal}: {e}")))
}

/// Encode an unsharded f32 image of `net` (freeze + serialize; the frozen
/// arenas are written verbatim, stride padding included).
pub fn encode_f32(net: &Network) -> AlignedVec<u8> {
    let frozen = FrozenNetwork::freeze(net);
    let spec = SnapshotSpec::f32();
    let mut w = SnapshotWriter::new(&spec);
    w.section(SectionKind::Config, 0, encode_config(frozen.config()));
    let manifest = expected_manifest(frozen.config(), &spec);
    w.section(SectionKind::Manifest, 0, encode_manifest(&manifest));
    encode_f32_layer(&mut w, 0, frozen.input_layer());
    for (i, layer) in frozen.hidden_layers().iter().enumerate() {
        encode_f32_layer(&mut w, 1 + i as u32, layer);
    }
    let out_ordinal = 1 + frozen.hidden_layers().len() as u32;
    encode_f32_layer(&mut w, out_ordinal, frozen.output_layer());
    encode_selector(&mut w, frozen.selector());
    w.finish()
}

/// Encode a sharded f32 image of `net` under `plan`: trunk layers, one
/// arena per shard (cut row-subset, never the whole output layer), and the
/// *global* selector's tables (shard partitions are recomputed at load).
///
/// # Errors
///
/// [`SnapshotError::Build`] if the plan or config is unservable (row
/// mismatch, `max_active`).
pub fn encode_sharded_f32(net: &Network, plan: ShardPlan) -> Result<AlignedVec<u8>, SnapshotError> {
    let global = crate::shard::build_global_selector(net)?;
    if plan.rows() != net.config().output_dim {
        return Err(ServeBuildError::PlanRowsMismatch {
            plan_rows: plan.rows(),
            output_dim: net.config().output_dim,
        }
        .into());
    }
    let config = net.config().clone();
    let spec = SnapshotSpec::f32().sharded(plan);
    let mut w = SnapshotWriter::new(&spec);
    w.section(SectionKind::Config, 0, encode_config(&config));
    let manifest = expected_manifest(&config, &spec);
    w.section(SectionKind::Manifest, 0, encode_manifest(&manifest));

    let input = FrozenLayer::from_params(net.input().params());
    let hidden: Vec<FrozenLayer> = net
        .hidden_layers()
        .iter()
        .map(|l| FrozenLayer::from_params(l.params()))
        .collect();
    encode_f32_layer(&mut w, 0, &input);
    for (i, layer) in hidden.iter().enumerate() {
        encode_f32_layer(&mut w, 1 + i as u32, layer);
    }
    let base = 1 + hidden.len() as u32;
    for s in 0..plan.shards() {
        let rows = plan.shard_rows(s);
        let layer = FrozenLayer::from_params_rows(net.output().params(), &rows);
        encode_f32_layer(&mut w, base + s as u32, &layer);
    }
    encode_selector(&mut w, &global);
    Ok(w.finish())
}

/// Decode the config + manifest preamble shared by every load path and
/// cross-check the manifest's layer count against the config and header.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on any disagreement.
pub fn decode_preamble(
    image: &SnapshotImage,
) -> Result<(NetworkConfig, Vec<LayerDims>), SnapshotError> {
    let config = decode_config(image.bytes(SectionKind::Config, 0)?)?;
    let manifest = decode_manifest(image.bytes(SectionKind::Manifest, 0)?)?;
    let shards = image.plan().map_or(1, |(_, n)| n);
    let expect = 1 + dense_hidden_count(&config) + shards;
    if manifest.len() != expect {
        return Err(corrupt(format!(
            "manifest holds {} layers, config + header imply {expect}",
            manifest.len()
        )));
    }
    Ok((config, manifest))
}

/// Reconstruct the [`ShardPlan`] an image was cut under (rows come from
/// the stored config).
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] if the image is unsharded or the plan shape
/// is unbuildable; [`SnapshotError::Build`] never (plan errors are
/// corruption here: the builder could not have written such a header).
pub fn decode_plan(
    image: &SnapshotImage,
    config: &NetworkConfig,
) -> Result<ShardPlan, SnapshotError> {
    let (kind, shards) = image
        .plan()
        .ok_or_else(|| corrupt("image is unsharded, no plan to decode"))?;
    let plan = match kind {
        ShardPlanKind::Contiguous => ShardPlan::contiguous(shards, config.output_dim),
        ShardPlanKind::Strided => ShardPlan::strided(shards, config.output_dim),
    };
    plan.map_err(|e| corrupt(format!("stored plan unbuildable: {e}")))
}

/// Instantiate the unsharded f32 engine over an image: every arena is a
/// view into the image (zero weight copies), the selector is rebuilt from
/// the CSR sections.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] / [`SnapshotError::Unsupported`] as the
/// sections decode.
pub fn decode_f32(image: &SnapshotImage) -> Result<FrozenNetwork, SnapshotError> {
    if image.precision() != SnapshotPrecision::F32 {
        return Err(SnapshotError::Unsupported(format!(
            "decode_f32 on an {} image",
            image.precision().label()
        )));
    }
    if image.plan().is_some() {
        return Err(SnapshotError::Unsupported(
            "decode_f32 on a sharded image (use decode_sharded_f32)".into(),
        ));
    }
    let (config, manifest) = decode_preamble(image)?;
    let input = decode_f32_layer(image, 0, manifest[0])?;
    let hidden: Vec<FrozenLayer> = (0..dense_hidden_count(&config))
        .map(|i| decode_f32_layer(image, 1 + i as u32, manifest[1 + i]))
        .collect::<Result<_, _>>()?;
    let out_ordinal = 1 + dense_hidden_count(&config);
    let output = decode_f32_layer(image, out_ordinal as u32, manifest[out_ordinal])?;
    let selector = decode_selector(image, &config)?;
    FrozenNetwork::from_parts(config, input, hidden, output, selector).map_err(corrupt)
}

/// Instantiate the sharded f32 engine over an image: trunk and shard
/// arenas view the image, the global selector is rebuilt from CSR and
/// re-partitioned exactly as the builder partitioned it.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on section-shape disagreements;
/// [`SnapshotError::Build`] if the decoded parts are unservable.
pub fn decode_sharded_f32(image: &SnapshotImage) -> Result<ShardedFrozenModel, SnapshotError> {
    if image.precision() != SnapshotPrecision::F32 {
        return Err(SnapshotError::Unsupported(format!(
            "decode_sharded_f32 on an {} image",
            image.precision().label()
        )));
    }
    let (config, manifest) = decode_preamble(image)?;
    let plan = decode_plan(image, &config)?;
    let input = decode_f32_layer(image, 0, manifest[0])?;
    let hidden: Vec<FrozenLayer> = (0..dense_hidden_count(&config))
        .map(|i| decode_f32_layer(image, 1 + i as u32, manifest[1 + i]))
        .collect::<Result<_, _>>()?;
    let trunk = F32Trunk::from_parts(input, hidden).map_err(corrupt)?;
    let global = decode_selector(image, &config)?;
    let selectors = global.partition_by(plan.shards(), &|id| plan.shard_of(id));
    let base = 1 + dense_hidden_count(&config);
    let mut engines: Vec<Arc<dyn ShardEngine>> = Vec::with_capacity(plan.shards());
    for (s, selector) in selectors.into_iter().enumerate() {
        let dims = manifest[base + s];
        let layer = decode_f32_layer(image, (base + s) as u32, dims)?;
        let shard = F32Shard::from_parts(&plan, s, layer, selector).map_err(corrupt)?;
        engines.push(Arc::new(shard));
    }
    ShardedFrozenModel::from_parts(Box::new(trunk), engines, plan, &global).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_core::LshConfig;
    use slide_mem::SparseVecRef;

    fn tiny_net(seed: u64) -> Network {
        let mut cfg = NetworkConfig::standard(128, 16, 64);
        cfg.seed = seed;
        cfg.lsh = LshConfig {
            tables: 10,
            key_bits: 4,
            min_active: 16,
            ..Default::default()
        };
        Network::new(cfg).unwrap()
    }

    #[test]
    fn config_round_trips() {
        let mut cfg = NetworkConfig::standard(512, 64, 1000);
        cfg.hidden_dims = vec![64, 48, 32];
        cfg.seed = 0xDEAD_BEEF;
        cfg.precision = Precision::Bf16Both;
        cfg.lsh.max_active = Some(77);
        cfg.lsh.policy = BucketPolicy::Fifo;
        cfg.lsh.family = HashFamilyKind::SimHash;
        let back = decode_config(&encode_config(&cfg)).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn config_decode_rejects_truncation_and_trailing() {
        let bytes = encode_config(&NetworkConfig::standard(128, 16, 64));
        for cut in [0, 1, 7, bytes.len() - 1] {
            assert!(matches!(
                decode_config(&bytes[..cut]),
                Err(SnapshotError::Corrupt(_))
            ));
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            decode_config(&long),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_round_trips() {
        let layers = vec![
            LayerDims {
                rows: 128,
                cols: 16,
                bias_len: 16,
            },
            LayerDims {
                rows: 64,
                cols: 16,
                bias_len: 64,
            },
        ];
        assert_eq!(decode_manifest(&encode_manifest(&layers)).unwrap(), layers);
    }

    #[test]
    fn writer_layout_aligns_and_verifies() {
        let mut w = SnapshotWriter::new(&SnapshotSpec::f32());
        w.section(SectionKind::Config, 0, vec![1, 2, 3]);
        w.section_pod(SectionKind::Bias, 7, &[1.0f32, -2.0, 3.5]);
        let image = SnapshotImage::from_arena(SharedArena::from_bytes(w.finish())).unwrap();
        assert_eq!(image.precision(), SnapshotPrecision::F32);
        assert_eq!(image.plan(), None);
        assert_eq!(image.bytes(SectionKind::Config, 0).unwrap(), &[1, 2, 3]);
        let bias = image.view::<f32>(SectionKind::Bias, 7).unwrap();
        assert_eq!(bias.as_slice(), &[1.0, -2.0, 3.5]);
        // Payload pointers are cache-line aligned straight off the image.
        assert_eq!(bias.as_slice().as_ptr() as usize % SECTION_ALIGN, 0);
        assert!(!image.has(SectionKind::Bias, 0));
        assert!(matches!(
            image.bytes(SectionKind::Manifest, 0),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn bit_flips_anywhere_are_detected() {
        let mut w = SnapshotWriter::new(&SnapshotSpec::i8());
        w.section_pod(SectionKind::QuantScales, 0, &[0.5f32; 40]);
        let image = w.finish();
        // Flip one bit at a spread of offsets covering header, table, and
        // payload; every single one must be rejected (not panic).
        for at in [0usize, 5, 9, 21, 33, 61, 70, 80, 90, image.len() - 1] {
            let mut bytes = AlignedVec::<u8>::zeroed(image.len());
            bytes.as_mut_slice().copy_from_slice(image.as_slice());
            bytes.as_mut_slice()[at] ^= 0x10;
            assert!(
                SnapshotImage::from_arena(SharedArena::from_bytes(bytes)).is_err(),
                "flip at byte {at} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected_not_ub() {
        let mut w = SnapshotWriter::new(&SnapshotSpec::f32());
        w.section_pod(SectionKind::WeightsF32, 0, &[1.0f32; 64]);
        let image = w.finish();
        for keep in [0usize, 10, 63, 64, 100, image.len() - 1] {
            let mut bytes = AlignedVec::<u8>::zeroed(keep);
            bytes
                .as_mut_slice()
                .copy_from_slice(&image.as_slice()[..keep]);
            assert!(
                SnapshotImage::from_arena(SharedArena::from_bytes(bytes)).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
    }

    #[test]
    fn f32_save_load_predicts_bit_identically() {
        let net = tiny_net(42);
        let original = FrozenNetwork::freeze(&net);
        let image = SnapshotImage::from_arena(SharedArena::from_bytes(encode_f32(&net))).unwrap();
        let loaded = decode_f32(&image).unwrap();
        assert_eq!(loaded.config(), original.config());
        let (mut so, mut sl) = (original.make_scratch(), loaded.make_scratch());
        for q in 0..32u32 {
            let idx = [q % 128, (q * 7 + 3) % 128, (q * 31 + 11) % 128];
            let val = [1.0f32, -0.5, 0.25];
            let x = SparseVecRef::new(&idx, &val);
            assert_eq!(
                loaded.predict_sparse(x, 5, &mut sl, q as u64),
                original.predict_sparse(x, 5, &mut so, q as u64),
                "sparse diverged at query {q}"
            );
            assert_eq!(
                loaded.predict_full(x, 5, &mut sl),
                original.predict_full(x, 5, &mut so),
                "full diverged at query {q}"
            );
        }
    }

    #[test]
    fn sharded_f32_save_load_predicts_bit_identically() {
        let net = tiny_net(7);
        for plan in [
            ShardPlan::contiguous(3, 64).unwrap(),
            ShardPlan::strided(4, 64).unwrap(),
        ] {
            let original = ShardedFrozenModel::shard_f32(&net, plan).unwrap();
            let bytes = encode_sharded_f32(&net, plan).unwrap();
            let image = SnapshotImage::from_arena(SharedArena::from_bytes(bytes)).unwrap();
            assert_eq!(image.plan(), Some((plan.kind(), plan.shards())));
            let loaded = decode_sharded_f32(&image).unwrap();
            let (mut so, mut sl) = (original.make_scratch(), loaded.make_scratch());
            for q in 0..24u32 {
                let idx = [q % 128, (q * 13 + 5) % 128];
                let val = [1.0f32, -0.75];
                let x = SparseVecRef::new(&idx, &val);
                assert_eq!(
                    loaded.predict_sparse(x, 4, &mut sl, q as u64),
                    original.predict_sparse(x, 4, &mut so, q as u64),
                    "{} plan diverged at query {q}",
                    plan.kind_label()
                );
            }
        }
    }

    #[test]
    fn deep_network_round_trips() {
        let mut cfg = NetworkConfig::standard(64, 16, 32);
        cfg.hidden_dims = vec![16, 12, 8];
        cfg.lsh.tables = 6;
        cfg.lsh.key_bits = 4;
        cfg.lsh.min_active = 8;
        let net = Network::new(cfg).unwrap();
        let original = FrozenNetwork::freeze(&net);
        let image = SnapshotImage::from_arena(SharedArena::from_bytes(encode_f32(&net))).unwrap();
        let loaded = decode_f32(&image).unwrap();
        let (mut so, mut sl) = (original.make_scratch(), loaded.make_scratch());
        let idx = [3u32, 40];
        let val = [1.0f32, -0.5];
        let x = SparseVecRef::new(&idx, &val);
        assert_eq!(
            loaded.predict_sparse(x, 3, &mut sl, 9),
            original.predict_sparse(x, 3, &mut so, 9)
        );
    }

    #[test]
    fn decode_f32_refuses_mismatched_images() {
        let net = tiny_net(1);
        let sharded = encode_sharded_f32(&net, ShardPlan::contiguous(2, 64).unwrap()).unwrap();
        let image = SnapshotImage::from_arena(SharedArena::from_bytes(sharded)).unwrap();
        assert!(matches!(
            decode_f32(&image),
            Err(SnapshotError::Unsupported(_))
        ));
        let flat = SnapshotImage::from_arena(SharedArena::from_bytes(encode_f32(&net))).unwrap();
        assert!(matches!(
            decode_sharded_f32(&flat),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn loaded_arenas_view_the_image_not_copies() {
        let net = tiny_net(5);
        let image = SnapshotImage::from_arena(SharedArena::from_bytes(encode_f32(&net))).unwrap();
        let lo = image.arena().as_slice().as_ptr() as usize;
        let hi = lo + image.arena().len();
        let loaded = decode_f32(&image).unwrap();
        let w = loaded.output_layer().flat().as_ptr() as usize;
        assert!(
            (lo..hi).contains(&w),
            "output arena {w:#x} escaped image [{lo:#x}, {hi:#x})"
        );
        let b = loaded.input_layer().bias().as_ptr() as usize;
        assert!((lo..hi).contains(&b), "input bias escaped the image");
    }
}
