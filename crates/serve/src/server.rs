//! The micro-batching request pipeline.
//!
//! Serving heavy traffic one request at a time wastes the batch-level
//! parallelism the SLIDE kernels and worker pool were built for. A
//! [`BatchingServer`] puts a bounded submission queue in front of a
//! [`FrozenNetwork`]: concurrent callers block in [`BatchingServer::predict`]
//! while a dispatcher thread coalesces their requests into micro-batches —
//! closing a batch when it reaches `max_batch` requests *or* `max_wait` has
//! elapsed since the batch opened, whichever comes first — and fans each
//! batch across a [`slide_core::ThreadPool`] with per-worker scratch.
//!
//! The model itself sits behind `RwLock<Arc<dyn FrozenModel>>`: a background
//! trainer can [`BatchingServer::publish`] a fresh snapshot at any moment —
//! of *any* precision (f32 [`crate::FrozenNetwork`], int8
//! `QuantizedFrozenNetwork`, or whatever else implements
//! [`crate::FrozenModel`]) — and in-flight traffic migrates to it at the
//! next batch boundary, without dropping or erroring a single request (the
//! write lock is held only for a pointer swap; workers run on a cloned
//! `Arc`, never inside the lock, and rebuild their engine-owned scratch at
//! the first batch on a new snapshot).

use crate::error::{ServeBuildError, ServeError};
use crate::model::{FrozenModel, IntoFrozenModel};
use parking_lot::{Condvar, Mutex, RwLock};
use slide_core::ThreadPool;
use slide_mem::SparseVecRef;
use slide_obs::{Counter, Gauge, Histogram, ObsHub, Stage, StageSample};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tuning knobs for the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Close a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Close a batch this long after its first request arrived, even if it
    /// is not full (the latency/throughput trade-off knob).
    pub max_wait: Duration,
    /// Bound on queued requests; submitters block (backpressure) when full.
    pub queue_cap: usize,
    /// Worker threads scoring batches (0 = all available cores).
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            queue_cap: 4096,
            threads: 0,
        }
    }
}

impl BatchConfig {
    /// Validate the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message if a bound is zero or the queue cannot hold one
    /// full batch.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be positive".into());
        }
        if self.queue_cap < self.max_batch {
            return Err("queue_cap must be >= max_batch".into());
        }
        Ok(())
    }

    /// Resolve `threads == 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

type Response = Result<Vec<u32>, ServeError>;

struct Request {
    indices: Vec<u32>,
    values: Vec<f32>,
    k: usize,
    enqueued: Instant,
    /// Absolute point past which the answer is worthless to the caller;
    /// `None` = wait forever. The dispatcher sheds expired requests from the
    /// drain loop *before* they reach a worker.
    deadline: Option<Instant>,
    /// Nonzero for traced requests: per-stage spans land in the server's
    /// trace ring under this id (0 = untraced, spans skipped).
    trace_id: u64,
    tx: mpsc::SyncSender<Response>,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

struct Queue {
    items: VecDeque<Request>,
    closed: bool,
}

struct StatsInner {
    /// `batch_counts[s]` = number of executed batches of size `s`.
    batch_counts: Vec<u64>,
    started: Instant,
}

/// The server's registry-backed instruments, `Arc`s cached at start so the
/// hot path never touches the registry's name map. The latency histogram —
/// not a capped sample vector — is the source of truth for percentiles:
/// bounded memory at any traffic volume, with tail accuracy bounded by
/// [`Histogram::RELATIVE_ERROR_BOUND`] instead of silently degrading once
/// a sample cap is hit.
struct ServeObs {
    hub: Arc<ObsHub>,
    /// Requests answered (including error responses).
    served: Arc<Counter>,
    errors: Arc<Counter>,
    /// Requests shed because their deadline expired before compute
    /// (at admission, in the drain loop, or at the worker's last check).
    /// Kept separate from `served`/`errors`: a shed request was never
    /// answered with a prediction or a validation verdict.
    deadline_exceeded: Arc<Counter>,
    batches: Arc<Counter>,
    hot_swaps: Arc<Gauge>,
    latency_us: Arc<Histogram>,
    stage_admission: Arc<Histogram>,
    stage_batch_wait: Arc<Histogram>,
    stage_retrieval: Arc<Histogram>,
    stage_kernel: Arc<Histogram>,
    stage_merge: Arc<Histogram>,
}

/// Get-or-create the shared `slide_stage_us{stage=...}` histogram for one
/// pipeline stage on a hub — the family every tier (serve, net, router)
/// records its per-hop stage times into.
pub fn stage_histogram(hub: &ObsHub, stage: Stage) -> Arc<Histogram> {
    hub.registry()
        .histogram_with("slide_stage_us", &[("stage", stage.as_str())])
}

impl ServeObs {
    fn new(hub: Arc<ObsHub>) -> Self {
        let r = hub.registry();
        ServeObs {
            served: r.counter("slide_serve_requests_total"),
            errors: r.counter("slide_serve_errors_total"),
            deadline_exceeded: r.counter("slide_serve_deadline_exceeded_total"),
            batches: r.counter("slide_serve_batches_total"),
            hot_swaps: r.gauge("slide_serve_hot_swaps"),
            latency_us: r.histogram("slide_serve_latency_us"),
            stage_admission: stage_histogram(&hub, Stage::Admission),
            stage_batch_wait: stage_histogram(&hub, Stage::BatchWait),
            stage_retrieval: stage_histogram(&hub, Stage::Retrieval),
            stage_kernel: stage_histogram(&hub, Stage::Kernel),
            stage_merge: stage_histogram(&hub, Stage::Merge),
            hub,
        }
    }

    fn reset(&self) {
        self.served.reset();
        self.errors.reset();
        self.deadline_exceeded.reset();
        self.batches.reset();
        self.latency_us.reset();
        self.stage_admission.reset();
        self.stage_batch_wait.reset();
        self.stage_retrieval.reset();
        self.stage_kernel.reset();
        self.stage_merge.reset();
    }
}

struct ServerShared {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    model: RwLock<Arc<dyn FrozenModel>>,
    stats: Mutex<StatsInner>,
    obs: ServeObs,
    swap_epoch: AtomicU64,
    config: BatchConfig,
    threads: usize,
}

/// Sendable pointer to per-worker slots; each pool worker dereferences only
/// its own index, so access is disjoint.
#[derive(Clone, Copy)]
struct SlotPtr {
    base: *mut WorkerSlot,
    len: usize,
}

unsafe impl Send for SlotPtr {}
unsafe impl Sync for SlotPtr {}

impl SlotPtr {
    /// Exclusive access to worker `i`'s slot.
    ///
    /// # Safety
    ///
    /// Each index must be used by at most one thread at a time (the pool
    /// hands every worker a distinct id) and the backing slice must outlive
    /// the parallel section.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut WorkerSlot {
        assert!(i < self.len, "SlotPtr: worker index out of range");
        &mut *self.base.add(i)
    }
}

struct WorkerSlot {
    /// Engine-owned query scratch, opaque to the server (built by —
    /// and downcast inside — the snapshot that created it). Counters and
    /// latencies no longer live here: workers record straight into the
    /// lock-free registry instruments, so there is no batch-boundary merge.
    scratch: Box<dyn Any + Send>,
}

/// Summary of a latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Worst observed.
    pub max_us: u64,
    /// Samples summarized.
    pub samples: u64,
}

impl LatencySummary {
    /// Summarize an unsorted sample set (empty input yields all zeros).
    pub fn from_unsorted(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        LatencySummary {
            p50_us: percentile_us(&samples, 50.0),
            p99_us: percentile_us(&samples, 99.0),
            mean_us: if samples.is_empty() {
                0.0
            } else {
                samples.iter().sum::<u64>() as f64 / samples.len() as f64
            },
            max_us: samples.last().copied().unwrap_or(0),
            samples: samples.len() as u64,
        }
    }
}

/// The content-derived retrieval salt the batching server hands the model
/// for a query: a splitmix64 fold over `(indices, value bits, k)`. Using
/// query *content* rather than batch position makes serving deterministic —
/// the same query produces bit-identical top-k whatever batch it lands in
/// and whichever replica of a snapshot answers it — which is what lets a
/// router fail a request over mid-flight without the client seeing two
/// different answers. Callers comparing an in-process prediction against a
/// served one must pass this same salt to `FrozenModel::predict_any`.
///
/// ```
/// let a = slide_serve::query_salt(&[1, 17], &[1.0, 0.5], 5);
/// let b = slide_serve::query_salt(&[1, 17], &[1.0, 0.5], 5);
/// assert_eq!(a, b);
/// assert_ne!(a, slide_serve::query_salt(&[1, 17], &[1.0, 0.5], 6));
/// ```
pub fn query_salt(indices: &[u32], values: &[f32], k: usize) -> u64 {
    fn mix(mut z: u64) -> u64 {
        // splitmix64 finalizer.
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(0x9E37_79B9_7F4A_7C15 ^ k as u64);
    for (&i, &v) in indices.iter().zip(values) {
        h = mix(h ^ i as u64);
        h = mix(h ^ v.to_bits() as u64);
    }
    mix(h ^ indices.len() as u64)
}

/// Nearest-rank percentile of an ascending-sorted sample set (`q` in
/// percent). Returns 0 for an empty set.
///
/// ```
/// assert_eq!(slide_serve::percentile_us(&[10, 20, 30, 40], 50.0), 20);
/// assert_eq!(slide_serve::percentile_us(&[10, 20, 30, 40], 99.0), 40);
/// ```
pub fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A point-in-time snapshot of a server's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Storage precision of the snapshot currently serving traffic
    /// (`"f32"`, `"bf16-widened-f32"`, `"i8"`).
    pub precision: String,
    /// Requests answered (including error responses).
    pub served: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests shed because their deadline expired before compute.
    pub deadline_exceeded: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Snapshots published over the server's lifetime.
    pub hot_swaps: u64,
    /// Seconds since the server started (or stats were reset).
    pub elapsed_seconds: f64,
    /// `served / elapsed_seconds`.
    pub throughput_qps: f64,
    /// Mean executed batch size.
    pub mean_batch: f64,
    /// `(batch_size, count)` pairs for every observed batch size.
    pub batch_hist: Vec<(usize, u64)>,
    /// End-to-end request latency (enqueue → response ready).
    pub latency: LatencySummary,
}

impl ServeStats {
    /// Render as a JSON object (the `BENCH_serve.json` stats fragment; see
    /// EXPERIMENTS.md for the schema).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self
            .batch_hist
            .iter()
            .map(|(size, count)| format!("[{size},{count}]"))
            .collect();
        format!(
            "{{\"precision\":\"{}\",\"served\":{},\"errors\":{},\"deadline_exceeded\":{},\
             \"batches\":{},\"hot_swaps\":{},\
             \"elapsed_seconds\":{:.3},\"throughput_qps\":{:.1},\"mean_batch\":{:.2},\
             \"latency_us\":{{\"p50\":{},\"p99\":{},\"mean\":{:.1},\"max\":{},\"samples\":{}}},\
             \"batch_hist\":[{}]}}",
            self.precision,
            self.served,
            self.errors,
            self.deadline_exceeded,
            self.batches,
            self.hot_swaps,
            self.elapsed_seconds,
            self.throughput_qps,
            self.mean_batch,
            self.latency.p50_us,
            self.latency.p99_us,
            self.latency.mean_us,
            self.latency.max_us,
            self.latency.samples,
            hist.join(",")
        )
    }
}

/// A concurrent inference front-end over a hot-swappable [`FrozenModel`]
/// (the f32 [`crate::FrozenNetwork`] or any other frozen engine).
///
/// # Examples
///
/// ```
/// use slide_core::{Network, NetworkConfig};
/// use slide_serve::{BatchConfig, BatchingServer, FrozenNetwork};
///
/// let net = Network::new(NetworkConfig::standard(256, 16, 64)).unwrap();
/// let server = BatchingServer::start(
///     FrozenNetwork::freeze(&net),
///     BatchConfig { threads: 2, ..Default::default() },
/// ).unwrap();
/// let topk = server.predict(&[1, 17], &[1.0, 0.5], 5).unwrap();
/// assert_eq!(topk.len(), 5);
/// // Counters merge at batch boundaries; quiesce before exact comparisons.
/// ```
pub struct BatchingServer {
    shared: Arc<ServerShared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl BatchingServer {
    /// Start the dispatcher thread serving `model` under `config`. The
    /// model may be any [`FrozenModel`] — the f32 [`crate::FrozenNetwork`],
    /// a quantized engine — or an already-erased `Arc<dyn FrozenModel>`
    /// (e.g. one loaded from a snapshot): [`IntoFrozenModel`] accepts both,
    /// so there is no separate `start_dyn`.
    ///
    /// # Errors
    ///
    /// [`ServeBuildError::InvalidBatchConfig`] with the message from
    /// [`BatchConfig::validate`], or [`ServeBuildError::Spawn`] if the
    /// dispatcher thread could not be created.
    pub fn start(
        model: impl IntoFrozenModel,
        config: BatchConfig,
    ) -> Result<Self, ServeBuildError> {
        let model = model.into_frozen();
        config
            .validate()
            .map_err(ServeBuildError::InvalidBatchConfig)?;
        let threads = config.effective_threads();
        let shared = Arc::new(ServerShared {
            queue: Mutex::new(Queue {
                items: VecDeque::with_capacity(config.queue_cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            model: RwLock::new(model),
            stats: Mutex::new(StatsInner {
                batch_counts: vec![0; config.max_batch + 1],
                started: Instant::now(),
            }),
            obs: ServeObs::new(ObsHub::shared()),
            swap_epoch: AtomicU64::new(0),
            config,
            threads,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-serve-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))
                .map_err(|e| ServeBuildError::Spawn(e.to_string()))?
        };
        Ok(BatchingServer {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Worker threads scoring batches.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// This server's observability hub: the registry its counters and
    /// latency/stage histograms live in, plus the trace ring its per-request
    /// spans land in. A network front-end shares this hub (encode spans,
    /// wire counters) and serves its rendered text over `GetMetrics`.
    pub fn obs(&self) -> Arc<ObsHub> {
        Arc::clone(&self.shared.obs.hub)
    }

    /// The snapshot currently serving traffic.
    pub fn current(&self) -> Arc<dyn FrozenModel> {
        self.shared.model.read().clone()
    }

    /// Publish a new snapshot; traffic migrates at the next batch boundary.
    /// The write lock is held only for the pointer swap, so publishing never
    /// stalls readers for longer than an `Arc` assignment. The new snapshot
    /// need not match the old one's precision (or engine type): workers
    /// rebuild their engine-owned scratch at the first batch on the new
    /// model, so f32 → i8 → f32 swaps are invisible to in-flight clients.
    /// Like [`BatchingServer::start`], accepts a concrete engine or an
    /// already-erased `Arc<dyn FrozenModel>`.
    pub fn publish(&self, model: impl IntoFrozenModel) {
        *self.shared.model.write() = model.into_frozen();
        let epoch = self.shared.swap_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.shared.obs.hot_swaps.set(epoch);
    }

    /// Submit one query and block until its top-`k` prediction is ready.
    /// Applies backpressure: blocks while the submission queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the server shuts down before responding;
    /// [`ServeError::Invalid`] for malformed queries (length mismatch,
    /// out-of-range feature index, `k == 0`).
    pub fn predict(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, true, None, 0)
    }

    /// [`BatchingServer::predict`] with a deadline: if `deadline` passes
    /// before the request reaches compute it is shed with
    /// [`ServeError::DeadlineExceeded`] — immediately at admission when it
    /// arrives already expired (no compute, no queue slot), or from the
    /// dispatcher's drain loop when it expires while queued. A request
    /// already being scored runs to completion (compute is never cancelled
    /// mid-batch); the deadline bounds *queueing*, which is where overload
    /// latency lives.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when the budget runs out pre-compute;
    /// otherwise as [`BatchingServer::predict`].
    pub fn predict_within(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, true, deadline, 0)
    }

    /// Non-blocking-admission variant of [`BatchingServer::predict`]: if the
    /// submission queue is full the request is **shed** with
    /// [`ServeError::Overloaded`] instead of blocking the caller — the hook
    /// a network front-end needs to answer `RETRY_LATER` under overload
    /// rather than buffering without bound. Admission is the only
    /// difference: an admitted request still blocks until its response is
    /// ready.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity; otherwise
    /// as [`BatchingServer::predict`].
    pub fn try_predict(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, false, None, 0)
    }

    /// Non-blocking-admission variant of [`BatchingServer::predict_within`]:
    /// sheds on a full queue ([`ServeError::Overloaded`]) *and* on an
    /// exhausted deadline ([`ServeError::DeadlineExceeded`]) — the pair a
    /// network front-end needs to map overload to `RETRY_LATER` and stale
    /// requests to a typed deadline reply.
    ///
    /// # Errors
    ///
    /// As [`BatchingServer::try_predict`] plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn try_predict_within(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, false, deadline, 0)
    }

    /// [`BatchingServer::try_predict_within`] for a traced request: a
    /// nonzero `trace_id` makes every stage this request passes through
    /// (admission, batch wait, retrieval, kernel, merge) record a span in
    /// the server's trace ring under that id. `trace_id == 0` is exactly
    /// `try_predict_within`.
    ///
    /// # Errors
    ///
    /// As [`BatchingServer::try_predict_within`].
    pub fn try_predict_traced(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, false, deadline, trace_id)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        block: bool,
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<Vec<u32>, ServeError> {
        if k == 0 {
            return Err(ServeError::Invalid("k must be positive".into()));
        }
        if indices.len() != values.len() {
            return Err(ServeError::Invalid(format!(
                "index/value length mismatch: {} vs {}",
                indices.len(),
                values.len()
            )));
        }
        let obs = &self.shared.obs;
        let admit_start_us = obs.hub.ring().now_us();
        // Already expired on arrival: reject before taking a queue slot —
        // the caller's budget is gone, compute would be pure waste.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            obs.deadline_exceeded.inc();
            return Err(ServeError::DeadlineExceeded);
        }
        let (tx, rx) = mpsc::sync_channel(1);
        let request = Request {
            indices: indices.to_vec(),
            values: values.to_vec(),
            k,
            enqueued: Instant::now(),
            deadline,
            trace_id,
            tx,
        };
        {
            let mut q = self.shared.queue.lock();
            while q.items.len() >= self.shared.config.queue_cap && !q.closed {
                if !block {
                    return Err(ServeError::Overloaded(q.items.len()));
                }
                self.shared.not_full.wait(&mut q);
            }
            if q.closed {
                return Err(ServeError::Closed);
            }
            q.items.push_back(request);
            self.shared.not_empty.notify_one();
        }
        // Admission: validation + queue hand-off (ends when the request is
        // enqueued; waiting for the batch is the BatchWait stage).
        let admit_us = obs.hub.ring().now_us().saturating_sub(admit_start_us);
        obs.stage_admission.record(admit_us);
        if trace_id != 0 {
            obs.hub
                .ring()
                .record(trace_id, Stage::Admission, admit_start_us, admit_us);
        }
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Requests currently waiting in the submission queue (not including
    /// those already being scored in a batch).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().items.len()
    }

    /// Snapshot the throughput/latency counters.
    ///
    /// Counters are lock-free and workers record them as each response is
    /// sent, so a response a client just received may precede its own
    /// appearance here by nanoseconds. Quiesce traffic before comparing
    /// exact counts. Latency percentiles come from the bounded-memory
    /// registry histogram (p50/p99 within its 1/32 bucket error bound;
    /// mean/max exact).
    pub fn stats(&self) -> ServeStats {
        let precision = self.shared.model.read().precision().to_string();
        let obs = &self.shared.obs;
        let served = obs.served.get();
        let batches = obs.batches.get();
        let lat = obs.latency_us.snapshot();
        let (started, batch_hist) = {
            let stats = self.shared.stats.lock();
            let hist: Vec<(usize, u64)> = stats
                .batch_counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(s, &c)| (s, c))
                .collect();
            (stats.started, hist)
        };
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        ServeStats {
            precision,
            served,
            errors: obs.errors.get(),
            deadline_exceeded: obs.deadline_exceeded.get(),
            batches,
            hot_swaps: self.shared.swap_epoch.load(Ordering::Acquire),
            elapsed_seconds: elapsed,
            throughput_qps: served as f64 / elapsed,
            mean_batch: if batches == 0 {
                0.0
            } else {
                served as f64 / batches as f64
            },
            batch_hist,
            latency: LatencySummary {
                p50_us: lat.quantile(50.0),
                p99_us: lat.quantile(99.0),
                mean_us: lat.mean(),
                max_us: lat.max,
                samples: lat.count,
            },
        }
    }

    /// Zero the counters and restart the stats clock (e.g. after warmup).
    pub fn reset_stats(&self) {
        let mut stats = self.shared.stats.lock();
        stats.batch_counts.fill(0);
        stats.started = Instant::now();
        self.shared.obs.reset();
    }

    /// Stop accepting new requests. Requests already queued are still served
    /// before the dispatcher exits; blocked submitters get
    /// [`ServeError::Closed`].
    pub fn close(&self) {
        let mut q = self.shared.queue.lock();
        q.closed = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

impl Drop for BatchingServer {
    fn drop(&mut self) {
        self.close();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Closes and drains the queue when the dispatcher exits — normally (the
/// queue is already empty then) or by panic, in which case every pending
/// request's sender is dropped so blocked callers get [`ServeError::Closed`]
/// instead of hanging forever.
struct DrainOnExit<'a>(&'a ServerShared);

impl Drop for DrainOnExit<'_> {
    fn drop(&mut self) {
        let mut q = self.0.queue.lock();
        q.closed = true;
        q.items.clear();
        self.0.not_empty.notify_all();
        self.0.not_full.notify_all();
    }
}

fn dispatcher_loop(shared: &ServerShared) {
    let _drain_guard = DrainOnExit(shared);
    let config = shared.config;
    let pool = ThreadPool::new(shared.threads);
    let mut slots: Vec<WorkerSlot> = Vec::new();
    // The snapshot the current slots' scratches were built for; holding the
    // Arc pins the allocation, so pointer equality is ABA-safe and a
    // hot-swap always triggers a scratch rebuild (shapes — and the scratch's
    // concrete engine type — may differ across snapshots).
    let mut slots_model: Option<Arc<dyn FrozenModel>> = None;
    let mut batch: Vec<Request> = Vec::with_capacity(config.max_batch);

    let mut shed: Vec<Request> = Vec::new();

    loop {
        batch.clear();
        shed.clear();
        {
            let mut q = shared.queue.lock();
            // Wait for the first live request (or shutdown). Requests whose
            // deadline already passed are shed here — before they occupy a
            // batch slot or touch a worker — and answered after the lock
            // drops.
            loop {
                let now = Instant::now();
                while batch.len() < config.max_batch {
                    match q.items.pop_front() {
                        Some(r) if r.expired(now) => shed.push(r),
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                if !batch.is_empty() || !shed.is_empty() || q.closed {
                    break;
                }
                shared.not_empty.wait(&mut q);
            }
            if batch.is_empty() && shed.is_empty() {
                return; // closed and fully drained
            }
            // Coalescing window: keep absorbing requests until the batch is
            // full or `max_wait` has elapsed since it opened.
            if !batch.is_empty() && batch.len() < config.max_batch && !q.closed {
                let window_closes = batch[0].enqueued + config.max_wait;
                loop {
                    let now = Instant::now();
                    while batch.len() < config.max_batch {
                        match q.items.pop_front() {
                            Some(r) if r.expired(now) => shed.push(r),
                            Some(r) => batch.push(r),
                            None => break,
                        }
                    }
                    if batch.len() >= config.max_batch || q.closed {
                        break;
                    }
                    let Some(remaining) = window_closes
                        .checked_duration_since(now)
                        .filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    shared.not_empty.wait_for(&mut q, remaining);
                }
            }
        }
        shared.not_full.notify_all();

        if !shed.is_empty() {
            shared.obs.deadline_exceeded.add(shed.len() as u64);
            for req in shed.drain(..) {
                // A disappeared client (dropped receiver) is not an error.
                let _ = req.tx.send(Err(ServeError::DeadlineExceeded));
            }
        }
        if batch.is_empty() {
            continue; // this round only flushed expired requests
        }

        // Pin the snapshot for this whole batch (hot-swaps land between
        // batches, never inside one).
        let model = shared.model.read().clone();
        let stale = !matches!(&slots_model, Some(m) if Arc::ptr_eq(m, &model));
        if slots.len() != shared.threads || stale {
            slots = (0..shared.threads)
                .map(|_| WorkerSlot {
                    scratch: model.make_scratch_any(),
                })
                .collect();
            slots_model = Some(Arc::clone(&model));
        }

        let n = batch.len();
        let cursor = AtomicUsize::new(0);
        let slot_ptr = SlotPtr {
            base: slots.as_mut_ptr(),
            len: slots.len(),
        };
        let batch_ref: &[Request] = &batch;
        let model_ref: &dyn FrozenModel = &*model;
        let obs = &shared.obs;
        // Count the batch before fan-out so a client that just got its
        // response never observes served > 0 with batches == 0.
        obs.batches.inc();
        shared.stats.lock().batch_counts[n] += 1;
        pool.run(&|worker| {
            // SAFETY: worker ids are distinct; `slots` outlives `run`.
            let slot = unsafe { slot_ptr.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let req = &batch_ref[i];
                if req.expired(Instant::now()) {
                    // Expired between batch assembly and pickup (e.g. a slow
                    // predecessor in this batch): shed without scoring.
                    obs.deadline_exceeded.inc();
                    let _ = req.tx.send(Err(ServeError::DeadlineExceeded));
                    continue;
                }
                // BatchWait: enqueue → this worker picking the request up.
                let pickup_us = obs.hub.ring().now_us();
                let wait_us = req.enqueued.elapsed().as_micros() as u64;
                obs.stage_batch_wait.record(wait_us);
                let mut stages = StageSample::default();
                let response = match model_ref.validate_query(&req.indices, &req.values) {
                    Ok(()) => {
                        let x = SparseVecRef::new(&req.indices, &req.values);
                        // Content-derived salt: the same query gets the same
                        // active-set padding — and therefore bit-identical
                        // top-k — on every call, in any batch position, on
                        // any replica of the same snapshot. A fleet needs
                        // that for failover answer-consistency; parity tests
                        // need it to compare socket vs in-process paths.
                        let salt = query_salt(&req.indices, &req.values, req.k);
                        Ok(model_ref.predict_any_timed(
                            x,
                            req.k,
                            slot.scratch.as_mut(),
                            salt,
                            &mut stages,
                        ))
                    }
                    Err(msg) => {
                        obs.errors.inc();
                        Err(ServeError::Invalid(msg))
                    }
                };
                obs.stage_retrieval.record(stages.retrieval_us);
                obs.stage_kernel.record(stages.kernel_us);
                obs.stage_merge.record(stages.merge_us);
                if req.trace_id != 0 {
                    // Spans in canonical pipeline order with synthesized
                    // sequential starts from pickup — monotone by
                    // construction (the engine interleaves kernel work
                    // around retrieval; attribution is by stage, not by
                    // wall-clock interleaving).
                    let ring = obs.hub.ring();
                    ring.record(
                        req.trace_id,
                        Stage::BatchWait,
                        pickup_us.saturating_sub(wait_us),
                        wait_us,
                    );
                    ring.record(
                        req.trace_id,
                        Stage::Retrieval,
                        pickup_us,
                        stages.retrieval_us,
                    );
                    ring.record(
                        req.trace_id,
                        Stage::Kernel,
                        pickup_us + stages.retrieval_us,
                        stages.kernel_us,
                    );
                    ring.record(
                        req.trace_id,
                        Stage::Merge,
                        pickup_us + stages.retrieval_us + stages.kernel_us,
                        stages.merge_us,
                    );
                }
                obs.latency_us
                    .record(req.enqueued.elapsed().as_micros() as u64);
                obs.served.inc();
                // A disappeared client (dropped receiver) is not an error.
                let _ = req.tx.send(response);
            }
        });
    }
}

/// Run metadata shared by every `BENCH_serve.json` emitter (`slide_cli
/// serve-bench` and the `serve_bench` experiment binary); keeps the schema
/// in one place — see EXPERIMENTS.md §4.
#[derive(Debug, Clone, Copy)]
pub struct BenchMeta<'a> {
    /// Which emitter produced the report.
    pub source: &'a str,
    /// Workload name.
    pub workload: &'a str,
    /// `SLIDE_SCALE`-style workload multiplier.
    pub scale: usize,
    /// Load-generating client threads.
    pub clients: usize,
    /// Scoring threads in the server pool.
    pub threads: usize,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Micro-batch deadline in microseconds.
    pub max_wait_us: u64,
    /// Top-k requested per query.
    pub k: usize,
    /// Storage precision of the snapshot under test (`"f32"` / `"i8"` /
    /// `"bf16-widened-f32"`), so BENCH_serve.json rows are distinguishable
    /// across the `--precision` axis.
    pub precision: &'a str,
    /// Output-layer shards of the snapshot under test (1 = unsharded).
    pub shards: usize,
    /// Per-shard precision labels joined with `|` (equal to `precision`
    /// when unsharded or uniformly sharded, e.g. `"f32|i8|f32|f32"` after
    /// mixed per-shard hot-swaps).
    pub shard_precisions: &'a str,
}

/// Render one load phase (`"closed"` / `"open"`) as a JSON object.
/// `shards` is the shard count the phase ran against — stamped per phase
/// because the closed-loop shard sweep varies it within one report.
pub fn phase_json(
    mode: &str,
    offered_qps: Option<f64>,
    shards: usize,
    stats: &ServeStats,
) -> String {
    let offered = offered_qps.map_or_else(|| "null".to_string(), |q| format!("{q:.1}"));
    format!(
        "{{\"mode\":\"{mode}\",\"offered_qps\":{offered},\"shards\":{shards},\"stats\":{}}}",
        stats.to_json()
    )
}

/// Render a complete `BENCH_serve.json` document (trailing newline
/// included). `simd_level` and `kernel_variant` are stamped from the
/// process's effective dispatch level and kernel variant at call time, so
/// trajectories stay comparable across machines and forced-`SLIDE_SIMD` /
/// `SLIDE_KERNELS` CI legs.
pub fn bench_report_json(meta: &BenchMeta<'_>, phases: &[String]) -> String {
    format!(
        "{{\"bench\":\"serve\",\"source\":\"{}\",\"workload\":\"{}\",\"scale\":{},\
         \"clients\":{},\"threads\":{},\"simd_level\":\"{}\",\"kernel_variant\":\"{}\",\
         \"precision\":\"{}\",\"shards\":{},\"shard_precisions\":\"{}\",\
         \"max_batch\":{},\"max_wait_us\":{},\"k\":{},\"phases\":[{}]}}\n",
        meta.source,
        meta.workload,
        meta.scale,
        meta.clients,
        meta.threads,
        slide_simd::effective_level(),
        slide_simd::kernel_variant(),
        meta.precision,
        meta.shards,
        meta.shard_precisions,
        meta.max_batch,
        meta.max_wait_us,
        meta.k,
        phases.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrozenNetwork;
    use slide_core::{LshConfig, Network, NetworkConfig};

    fn tiny_frozen(seed: u64) -> FrozenNetwork {
        let mut cfg = NetworkConfig::standard(128, 16, 64);
        cfg.seed = seed;
        cfg.lsh = LshConfig {
            tables: 10,
            key_bits: 4,
            min_active: 16,
            ..Default::default()
        };
        FrozenNetwork::freeze(&Network::new(cfg).unwrap())
    }

    /// Stats merge at batch boundaries (see [`BatchingServer::stats`]); poll
    /// briefly until the expected request count lands.
    fn stats_when_served(server: &BatchingServer, served: u64) -> ServeStats {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = server.stats();
            if stats.served >= served || Instant::now() >= deadline {
                return stats;
            }
            std::thread::yield_now();
        }
    }

    fn small_server(threads: usize, max_wait: Duration) -> BatchingServer {
        BatchingServer::start(
            tiny_frozen(1),
            BatchConfig {
                max_batch: 16,
                max_wait,
                queue_cap: 64,
                threads,
            },
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(BatchConfig::default().validate().is_ok());
        assert!(BatchConfig {
            max_batch: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BatchConfig {
            max_batch: 100,
            queue_cap: 10,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(
            BatchConfig {
                threads: 3,
                ..Default::default()
            }
            .effective_threads()
                == 3
        );
    }

    #[test]
    fn single_request_roundtrip() {
        let server = small_server(2, Duration::from_micros(200));
        let topk = server.predict(&[1, 17, 40], &[1.0, 0.5, -0.25], 5).unwrap();
        assert_eq!(topk.len(), 5);
        let stats = stats_when_served(&server, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_hist, vec![(1, 1)]);
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let server = Arc::new(small_server(2, Duration::from_millis(2)));
        let per_client = 25usize;
        let clients = 4usize;
        std::thread::scope(|scope| {
            for c in 0..clients {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    for i in 0..per_client {
                        let f = ((c * per_client + i) % 128) as u32;
                        let topk = server.predict(&[f], &[1.0], 3).unwrap();
                        assert_eq!(topk.len(), 3);
                    }
                });
            }
        });
        let stats = stats_when_served(&server, (clients * per_client) as u64);
        assert_eq!(stats.served, (clients * per_client) as u64);
        assert_eq!(stats.errors, 0);
        assert!(stats.throughput_qps > 0.0);
        assert!(stats.latency.p50_us <= stats.latency.p99_us);
        assert!(stats.latency.p99_us <= stats.latency.max_us);
    }

    #[test]
    fn deadline_window_coalesces_concurrent_requests() {
        // One scoring thread + a generous window: requests arriving together
        // must share batches at least some of the time.
        let server = Arc::new(small_server(1, Duration::from_millis(20)));
        std::thread::scope(|scope| {
            for c in 0..8u32 {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    for i in 0..10u32 {
                        server.predict(&[(c * 16 + i) % 128], &[1.0], 2).unwrap();
                    }
                });
            }
        });
        let stats = stats_when_served(&server, 80);
        assert_eq!(stats.served, 80);
        let biggest = stats.batch_hist.last().map(|&(s, _)| s).unwrap_or(0);
        assert!(
            biggest >= 2,
            "no coalescing observed: {:?}",
            stats.batch_hist
        );
        assert!(stats.batches < 80, "every request ran alone");
    }

    #[test]
    fn invalid_queries_error_without_killing_the_server() {
        let server = small_server(2, Duration::from_micros(200));
        assert!(matches!(
            server.predict(&[0], &[1.0], 0),
            Err(ServeError::Invalid(_))
        ));
        assert!(matches!(
            server.predict(&[0, 1], &[1.0], 2),
            Err(ServeError::Invalid(_))
        ));
        // Out-of-range index is caught by the worker, not the submitter.
        let err = server.predict(&[9999], &[1.0], 2).unwrap_err();
        assert!(matches!(err, ServeError::Invalid(_)), "{err}");
        // The server still works.
        assert_eq!(server.predict(&[3], &[1.0], 2).unwrap().len(), 2);
        let stats = stats_when_served(&server, 2);
        assert_eq!(stats.errors, 1); // only the worker-detected one is counted
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn close_rejects_new_requests() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        server.close();
        assert_eq!(server.predict(&[1], &[1.0], 1), Err(ServeError::Closed));
    }

    #[test]
    fn publish_swaps_the_snapshot() {
        let server = small_server(1, Duration::from_micros(100));
        let before = Arc::as_ptr(&server.current());
        server.publish(tiny_frozen(2));
        assert_ne!(before, Arc::as_ptr(&server.current()));
        assert_eq!(server.stats().hot_swaps, 1);
        // Still serving after the swap.
        assert_eq!(server.predict(&[5], &[1.0], 4).unwrap().len(), 4);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        server.reset_stats();
        let stats = server.stats();
        assert_eq!(stats.served, 0);
        assert_eq!(stats.batches, 0);
        assert!(stats.batch_hist.is_empty());
    }

    #[test]
    fn stats_json_has_required_fields() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        let json = stats_when_served(&server, 1).to_json();
        for field in [
            "\"precision\":\"f32\"",
            "\"served\":1",
            "\"throughput_qps\":",
            "\"latency_us\":",
            "\"p50\":",
            "\"p99\":",
            "\"batch_hist\":[[1,1]]",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn bench_report_schema_is_stable() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        let stats = stats_when_served(&server, 1);
        let phases = vec![
            phase_json("closed", None, 1, &stats),
            phase_json("open", Some(123.456), 4, &stats),
        ];
        let doc = bench_report_json(
            &BenchMeta {
                source: "test",
                workload: "synthetic",
                scale: 1,
                clients: 2,
                threads: server.threads(),
                max_batch: 16,
                max_wait_us: 100,
                k: 1,
                precision: "f32",
                shards: 4,
                shard_precisions: "f32|f32|f32|f32",
            },
            &phases,
        );
        for field in [
            "\"bench\":\"serve\"",
            "\"source\":\"test\"",
            "\"simd_level\":\"",
            "\"precision\":\"f32\"",
            "\"shards\":4",
            "\"shard_precisions\":\"f32|f32|f32|f32\"",
            "\"phases\":[{\"mode\":\"closed\",\"offered_qps\":null,\"shards\":1,",
            "{\"mode\":\"open\",\"offered_qps\":123.5,\"shards\":4,",
            "\"p99\":",
        ] {
            assert!(doc.contains(field), "missing {field} in {doc}");
        }
        assert!(doc.ends_with("}\n"));
    }

    /// A FrozenModel wrapper that sleeps per prediction — slow enough that
    /// a flood deterministically backs the admission queue up.
    #[derive(Debug)]
    struct SlowModel(FrozenNetwork, Duration);

    impl FrozenModel for SlowModel {
        fn precision(&self) -> &'static str {
            self.0.precision_label()
        }
        fn input_dim(&self) -> usize {
            self.0.input_dim()
        }
        fn output_dim(&self) -> usize {
            self.0.output_dim()
        }
        fn arena_bytes(&self) -> usize {
            self.0.arena_bytes()
        }
        fn validate_query(&self, indices: &[u32], values: &[f32]) -> Result<(), String> {
            self.0.validate_query(indices, values)
        }
        fn make_scratch_any(&self) -> Box<dyn Any + Send> {
            Box::new(self.0.make_scratch())
        }
        fn predict_any(
            &self,
            x: SparseVecRef<'_>,
            k: usize,
            scratch: &mut (dyn Any + Send),
            salt: u64,
        ) -> Vec<u32> {
            std::thread::sleep(self.1);
            let scratch = scratch.downcast_mut().expect("slow-model scratch");
            self.0.predict_sparse(x, k, scratch, salt)
        }
    }

    #[test]
    fn try_predict_sheds_when_the_queue_is_full() {
        // One worker scoring 5ms-per-request batches of 1, queue depth 2: a
        // burst of non-blocking submissions must hit Overloaded while the
        // blocking path would have parked instead.
        let server = Arc::new(
            BatchingServer::start(
                SlowModel(tiny_frozen(3), Duration::from_millis(5)),
                BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::ZERO,
                    queue_cap: 2,
                    threads: 1,
                },
            )
            .unwrap(),
        );
        let sheds = AtomicUsize::new(0);
        let oks = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for c in 0..8 {
                let server = Arc::clone(&server);
                let (sheds, oks) = (&sheds, &oks);
                scope.spawn(move || {
                    for i in 0..6u32 {
                        match server.try_predict(&[(c * 7 + i) % 128], &[1.0], 2) {
                            Ok(ids) => {
                                assert_eq!(ids.len(), 2);
                                oks.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Overloaded(depth)) => {
                                assert!(depth >= 2, "shed below capacity: {depth}");
                                sheds.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                });
            }
        });
        assert!(
            sheds.load(Ordering::Relaxed) > 0,
            "48 floods over a depth-2 queue never shed"
        );
        assert!(oks.load(Ordering::Relaxed) > 0, "nothing got through");
        // The server is still healthy after shedding.
        assert_eq!(server.predict(&[1], &[1.0], 3).unwrap().len(), 3);
    }

    #[test]
    fn expired_deadline_is_rejected_at_admission_without_compute() {
        let server = small_server(1, Duration::from_micros(100));
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            server.predict_within(&[1], &[1.0], 2, Some(past)),
            Err(ServeError::DeadlineExceeded)
        );
        let stats = server.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.served, 0, "expired request must never reach compute");
        assert_eq!(stats.errors, 0);
        // A live deadline is honoured normally.
        let topk = server
            .predict_within(
                &[1],
                &[1.0],
                2,
                Some(Instant::now() + Duration::from_secs(5)),
            )
            .unwrap();
        assert_eq!(topk.len(), 2);
    }

    #[test]
    fn deadline_expiring_in_queue_is_shed_from_the_drain_loop() {
        // One worker, 25ms per prediction, batches of 1: a request queued
        // behind a slow one with a 2ms budget must be shed when the
        // dispatcher pops it, not scored 25ms late.
        let server = Arc::new(
            BatchingServer::start(
                SlowModel(tiny_frozen(4), Duration::from_millis(25)),
                BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::ZERO,
                    queue_cap: 16,
                    threads: 1,
                },
            )
            .unwrap(),
        );
        std::thread::scope(|scope| {
            let blocker = {
                let server = Arc::clone(&server);
                scope.spawn(move || server.predict(&[1], &[1.0], 2))
            };
            // Let the blocker reach the worker before queueing the doomed
            // request behind it.
            std::thread::sleep(Duration::from_millis(8));
            let doomed = server.predict_within(
                &[2],
                &[1.0],
                2,
                Some(Instant::now() + Duration::from_millis(2)),
            );
            assert_eq!(doomed, Err(ServeError::DeadlineExceeded));
            assert_eq!(blocker.join().unwrap().unwrap().len(), 2);
        });
        let stats = stats_when_served(&server, 1);
        assert_eq!(stats.served, 1, "only the undeadlined request was scored");
        assert!(stats.deadline_exceeded >= 1);
        // The server is still healthy after shedding.
        assert_eq!(server.predict(&[3], &[1.0], 2).unwrap().len(), 2);
    }

    #[test]
    fn responses_are_deterministic_across_batch_positions() {
        // Content-derived salts: the same query answered alone and answered
        // inside a crowded batch returns bit-identical ids.
        let server = Arc::new(small_server(2, Duration::from_millis(2)));
        let expected = server.predict(&[3, 9], &[1.0, -0.5], 4).unwrap();
        std::thread::scope(|scope| {
            for c in 0..6 {
                let server = Arc::clone(&server);
                let expected = expected.clone();
                scope.spawn(move || {
                    for i in 0..20u32 {
                        // Interleave noise queries so the probe lands at
                        // varying batch offsets.
                        server.predict(&[(c * 11 + i) % 128], &[0.5], 2).unwrap();
                        let again = server.predict(&[3, 9], &[1.0, -0.5], 4).unwrap();
                        assert_eq!(again, expected, "client {c} iter {i}");
                    }
                });
            }
        });
    }

    #[test]
    fn queue_len_reports_backlog() {
        let server = small_server(1, Duration::from_micros(100));
        assert_eq!(server.queue_len(), 0);
        server.predict(&[1], &[1.0], 1).unwrap();
        assert_eq!(server.queue_len(), 0); // drained after the response
    }

    #[test]
    fn query_salt_is_content_addressed() {
        let a = query_salt(&[1, 2, 3], &[1.0, 2.0, 3.0], 5);
        assert_eq!(a, query_salt(&[1, 2, 3], &[1.0, 2.0, 3.0], 5));
        assert_ne!(a, query_salt(&[1, 2, 4], &[1.0, 2.0, 3.0], 5));
        assert_ne!(a, query_salt(&[1, 2, 3], &[1.0, 2.0, 3.5], 5));
        assert_ne!(a, query_salt(&[1, 2, 3], &[1.0, 2.0, 3.0], 6));
        assert_ne!(query_salt(&[], &[], 1), query_salt(&[], &[], 2));
    }

    #[test]
    fn histogram_p99_stays_within_bucket_error_under_overflow() {
        // Regression for the capped-sample-vector bias this histogram path
        // replaced: the old ring kept the FIRST `cap` samples, so a
        // workload whose tail arrives late reported a p99 blind to it.
        // Feed 10× a notional cap with the heavy tail in the late 90%, and
        // require the histogram p99 to track exact `percentile_us` within
        // the bucket error bound.
        let notional_cap = 10_000usize;
        let total = 10 * notional_cap;
        let hist = Histogram::default();
        let mut samples = Vec::with_capacity(total);
        let mut state = 0xFEED_FACE_CAFE_BEEFu64;
        for i in 0..total {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // First 10% (what a first-N cap would keep): tight 100–300µs.
            // Remaining 90%: same body plus a 2% tail out to ~50ms.
            let v = if i < notional_cap {
                100 + state % 200
            } else if state.is_multiple_of(50) {
                10_000 + (state >> 32) % 40_000
            } else {
                100 + state % 200
            };
            hist.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        let exact_p99 = percentile_us(&samples, 99.0);
        assert!(exact_p99 >= 10_000, "workload tail not heavy enough");
        // A first-N-capped estimate would sit in the 100–300µs body.
        let capped_estimate = percentile_us(&samples[..notional_cap], 99.0);
        assert!(capped_estimate < 400, "cap bias precondition broken");
        for q in [50.0, 99.0] {
            let est = hist.quantile(q);
            let exact = percentile_us(&samples, q);
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            let allowed = (exact as f64 * Histogram::RELATIVE_ERROR_BOUND).ceil() as u64 + 1;
            assert!(
                est - exact <= allowed,
                "q={q}: est {est} off exact {exact} by more than {allowed}"
            );
        }
        assert_eq!(hist.count(), total as u64);
        assert_eq!(hist.max(), *samples.last().unwrap());
    }

    #[test]
    fn traced_request_records_replica_stage_spans() {
        let server = small_server(1, Duration::from_micros(100));
        let trace = slide_obs::derive_trace_id(0xA5A5, 1);
        let topk = server
            .try_predict_traced(&[1, 17], &[1.0, 0.5], 3, None, trace)
            .unwrap();
        assert_eq!(topk.len(), 3);
        let spans = server.obs().ring().spans_for(trace);
        // One span per replica-side stage the batching server owns.
        for stage in [
            Stage::Admission,
            Stage::BatchWait,
            Stage::Retrieval,
            Stage::Kernel,
            Stage::Merge,
        ] {
            assert_eq!(
                spans.iter().filter(|s| s.stage == stage).count(),
                1,
                "stage {} not recorded exactly once: {spans:?}",
                stage.as_str()
            );
        }
        // Untraced requests leave the ring untouched.
        server.predict(&[2], &[1.0], 2).unwrap();
        assert_eq!(server.obs().ring().snapshot().len(), spans.len());
    }

    #[test]
    fn stage_histograms_fill_for_untraced_traffic() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 2).unwrap();
        stats_when_served(&server, 1);
        let text = server.obs().render();
        assert!(text.contains("slide_stage_us{stage=\"kernel\""), "{text}");
        assert!(
            text.contains("slide_stage_us_count{stage=\"batch_wait\"} 1"),
            "{text}"
        );
        assert!(text.contains("slide_serve_requests_total 1"), "{text}");
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile_us(&[], 50.0), 0);
        assert_eq!(percentile_us(&[7], 50.0), 7);
        assert_eq!(percentile_us(&[7], 99.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50.0), 50);
        assert_eq!(percentile_us(&v, 99.0), 99);
        assert_eq!(percentile_us(&v, 100.0), 100);
    }
}
