//! The micro-batching request pipeline.
//!
//! Serving heavy traffic one request at a time wastes the batch-level
//! parallelism the SLIDE kernels and worker pool were built for. A
//! [`BatchingServer`] puts a bounded submission queue in front of a
//! [`FrozenNetwork`]: concurrent callers block in [`BatchingServer::predict`]
//! while a dispatcher thread coalesces their requests into micro-batches —
//! closing a batch when it reaches `max_batch` requests *or* `max_wait` has
//! elapsed since the batch opened, whichever comes first — and fans each
//! batch across a [`slide_core::ThreadPool`] with per-worker scratch.
//!
//! The model itself sits behind `RwLock<Arc<dyn FrozenModel>>`: a background
//! trainer can [`BatchingServer::publish`] a fresh snapshot at any moment —
//! of *any* precision (f32 [`crate::FrozenNetwork`], int8
//! `QuantizedFrozenNetwork`, or whatever else implements
//! [`crate::FrozenModel`]) — and in-flight traffic migrates to it at the
//! next batch boundary, without dropping or erroring a single request (the
//! write lock is held only for a pointer swap; workers run on a cloned
//! `Arc`, never inside the lock, and rebuild their engine-owned scratch at
//! the first batch on a new snapshot).

use crate::error::{ServeBuildError, ServeError};
use crate::model::{FrozenModel, IntoFrozenModel};
use parking_lot::{Condvar, Mutex, RwLock};
use slide_core::ThreadPool;
use slide_mem::SparseVecRef;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tuning knobs for the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Close a batch as soon as it holds this many requests.
    pub max_batch: usize,
    /// Close a batch this long after its first request arrived, even if it
    /// is not full (the latency/throughput trade-off knob).
    pub max_wait: Duration,
    /// Bound on queued requests; submitters block (backpressure) when full.
    pub queue_cap: usize,
    /// Worker threads scoring batches (0 = all available cores).
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(500),
            queue_cap: 4096,
            threads: 0,
        }
    }
}

impl BatchConfig {
    /// Validate the knobs.
    ///
    /// # Errors
    ///
    /// Returns a message if a bound is zero or the queue cannot hold one
    /// full batch.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be positive".into());
        }
        if self.queue_cap < self.max_batch {
            return Err("queue_cap must be >= max_batch".into());
        }
        Ok(())
    }

    /// Resolve `threads == 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

type Response = Result<Vec<u32>, ServeError>;

struct Request {
    indices: Vec<u32>,
    values: Vec<f32>,
    k: usize,
    enqueued: Instant,
    /// Absolute point past which the answer is worthless to the caller;
    /// `None` = wait forever. The dispatcher sheds expired requests from the
    /// drain loop *before* they reach a worker.
    deadline: Option<Instant>,
    tx: mpsc::SyncSender<Response>,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

struct Queue {
    items: VecDeque<Request>,
    closed: bool,
}

/// Keep at most this many latency samples for percentile estimation; beyond
/// it only counters advance (bounds server memory on unbounded runs).
const MAX_LATENCY_SAMPLES: usize = 4 << 20;

struct StatsInner {
    latencies_us: Vec<u64>,
    /// `batch_counts[s]` = number of executed batches of size `s`.
    batch_counts: Vec<u64>,
    served: u64,
    errors: u64,
    /// Requests shed because their deadline expired before compute
    /// (at admission, in the drain loop, or at the worker's last check).
    /// Kept separate from `served`/`errors`: a shed request was never
    /// answered with a prediction or a validation verdict.
    deadline_exceeded: u64,
    batches: u64,
    started: Instant,
}

struct ServerShared {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    model: RwLock<Arc<dyn FrozenModel>>,
    stats: Mutex<StatsInner>,
    swap_epoch: AtomicU64,
    config: BatchConfig,
    threads: usize,
}

/// Sendable pointer to per-worker slots; each pool worker dereferences only
/// its own index, so access is disjoint.
#[derive(Clone, Copy)]
struct SlotPtr {
    base: *mut WorkerSlot,
    len: usize,
}

unsafe impl Send for SlotPtr {}
unsafe impl Sync for SlotPtr {}

impl SlotPtr {
    /// Exclusive access to worker `i`'s slot.
    ///
    /// # Safety
    ///
    /// Each index must be used by at most one thread at a time (the pool
    /// hands every worker a distinct id) and the backing slice must outlive
    /// the parallel section.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut WorkerSlot {
        assert!(i < self.len, "SlotPtr: worker index out of range");
        &mut *self.base.add(i)
    }
}

struct WorkerSlot {
    /// Engine-owned query scratch, opaque to the server (built by —
    /// and downcast inside — the snapshot that created it).
    scratch: Box<dyn Any + Send>,
    latencies_us: Vec<u64>,
    errors: u64,
    /// Requests whose deadline passed between batch assembly and this
    /// worker picking them up.
    deadline_exceeded: u64,
}

/// Summary of a latency distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Worst observed.
    pub max_us: u64,
    /// Samples summarized.
    pub samples: u64,
}

impl LatencySummary {
    /// Summarize an unsorted sample set (empty input yields all zeros).
    pub fn from_unsorted(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        LatencySummary {
            p50_us: percentile_us(&samples, 50.0),
            p99_us: percentile_us(&samples, 99.0),
            mean_us: if samples.is_empty() {
                0.0
            } else {
                samples.iter().sum::<u64>() as f64 / samples.len() as f64
            },
            max_us: samples.last().copied().unwrap_or(0),
            samples: samples.len() as u64,
        }
    }
}

/// The content-derived retrieval salt the batching server hands the model
/// for a query: a splitmix64 fold over `(indices, value bits, k)`. Using
/// query *content* rather than batch position makes serving deterministic —
/// the same query produces bit-identical top-k whatever batch it lands in
/// and whichever replica of a snapshot answers it — which is what lets a
/// router fail a request over mid-flight without the client seeing two
/// different answers. Callers comparing an in-process prediction against a
/// served one must pass this same salt to `FrozenModel::predict_any`.
///
/// ```
/// let a = slide_serve::query_salt(&[1, 17], &[1.0, 0.5], 5);
/// let b = slide_serve::query_salt(&[1, 17], &[1.0, 0.5], 5);
/// assert_eq!(a, b);
/// assert_ne!(a, slide_serve::query_salt(&[1, 17], &[1.0, 0.5], 6));
/// ```
pub fn query_salt(indices: &[u32], values: &[f32], k: usize) -> u64 {
    fn mix(mut z: u64) -> u64 {
        // splitmix64 finalizer.
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(0x9E37_79B9_7F4A_7C15 ^ k as u64);
    for (&i, &v) in indices.iter().zip(values) {
        h = mix(h ^ i as u64);
        h = mix(h ^ v.to_bits() as u64);
    }
    mix(h ^ indices.len() as u64)
}

/// Nearest-rank percentile of an ascending-sorted sample set (`q` in
/// percent). Returns 0 for an empty set.
///
/// ```
/// assert_eq!(slide_serve::percentile_us(&[10, 20, 30, 40], 50.0), 20);
/// assert_eq!(slide_serve::percentile_us(&[10, 20, 30, 40], 99.0), 40);
/// ```
pub fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A point-in-time snapshot of a server's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Storage precision of the snapshot currently serving traffic
    /// (`"f32"`, `"bf16-widened-f32"`, `"i8"`).
    pub precision: String,
    /// Requests answered (including error responses).
    pub served: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests shed because their deadline expired before compute.
    pub deadline_exceeded: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Snapshots published over the server's lifetime.
    pub hot_swaps: u64,
    /// Seconds since the server started (or stats were reset).
    pub elapsed_seconds: f64,
    /// `served / elapsed_seconds`.
    pub throughput_qps: f64,
    /// Mean executed batch size.
    pub mean_batch: f64,
    /// `(batch_size, count)` pairs for every observed batch size.
    pub batch_hist: Vec<(usize, u64)>,
    /// End-to-end request latency (enqueue → response ready).
    pub latency: LatencySummary,
}

impl ServeStats {
    /// Render as a JSON object (the `BENCH_serve.json` stats fragment; see
    /// EXPERIMENTS.md for the schema).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self
            .batch_hist
            .iter()
            .map(|(size, count)| format!("[{size},{count}]"))
            .collect();
        format!(
            "{{\"precision\":\"{}\",\"served\":{},\"errors\":{},\"deadline_exceeded\":{},\
             \"batches\":{},\"hot_swaps\":{},\
             \"elapsed_seconds\":{:.3},\"throughput_qps\":{:.1},\"mean_batch\":{:.2},\
             \"latency_us\":{{\"p50\":{},\"p99\":{},\"mean\":{:.1},\"max\":{},\"samples\":{}}},\
             \"batch_hist\":[{}]}}",
            self.precision,
            self.served,
            self.errors,
            self.deadline_exceeded,
            self.batches,
            self.hot_swaps,
            self.elapsed_seconds,
            self.throughput_qps,
            self.mean_batch,
            self.latency.p50_us,
            self.latency.p99_us,
            self.latency.mean_us,
            self.latency.max_us,
            self.latency.samples,
            hist.join(",")
        )
    }
}

/// A concurrent inference front-end over a hot-swappable [`FrozenModel`]
/// (the f32 [`crate::FrozenNetwork`] or any other frozen engine).
///
/// # Examples
///
/// ```
/// use slide_core::{Network, NetworkConfig};
/// use slide_serve::{BatchConfig, BatchingServer, FrozenNetwork};
///
/// let net = Network::new(NetworkConfig::standard(256, 16, 64)).unwrap();
/// let server = BatchingServer::start(
///     FrozenNetwork::freeze(&net),
///     BatchConfig { threads: 2, ..Default::default() },
/// ).unwrap();
/// let topk = server.predict(&[1, 17], &[1.0, 0.5], 5).unwrap();
/// assert_eq!(topk.len(), 5);
/// // Counters merge at batch boundaries; quiesce before exact comparisons.
/// ```
pub struct BatchingServer {
    shared: Arc<ServerShared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl BatchingServer {
    /// Start the dispatcher thread serving `model` under `config`. The
    /// model may be any [`FrozenModel`] — the f32 [`crate::FrozenNetwork`],
    /// a quantized engine — or an already-erased `Arc<dyn FrozenModel>`
    /// (e.g. one loaded from a snapshot): [`IntoFrozenModel`] accepts both,
    /// so there is no separate `start_dyn`.
    ///
    /// # Errors
    ///
    /// [`ServeBuildError::InvalidBatchConfig`] with the message from
    /// [`BatchConfig::validate`], or [`ServeBuildError::Spawn`] if the
    /// dispatcher thread could not be created.
    pub fn start(
        model: impl IntoFrozenModel,
        config: BatchConfig,
    ) -> Result<Self, ServeBuildError> {
        let model = model.into_frozen();
        config
            .validate()
            .map_err(ServeBuildError::InvalidBatchConfig)?;
        let threads = config.effective_threads();
        let shared = Arc::new(ServerShared {
            queue: Mutex::new(Queue {
                items: VecDeque::with_capacity(config.queue_cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            model: RwLock::new(model),
            stats: Mutex::new(StatsInner {
                latencies_us: Vec::new(),
                batch_counts: vec![0; config.max_batch + 1],
                served: 0,
                errors: 0,
                deadline_exceeded: 0,
                batches: 0,
                started: Instant::now(),
            }),
            swap_epoch: AtomicU64::new(0),
            config,
            threads,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("slide-serve-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))
                .map_err(|e| ServeBuildError::Spawn(e.to_string()))?
        };
        Ok(BatchingServer {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Worker threads scoring batches.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// The snapshot currently serving traffic.
    pub fn current(&self) -> Arc<dyn FrozenModel> {
        self.shared.model.read().clone()
    }

    /// Publish a new snapshot; traffic migrates at the next batch boundary.
    /// The write lock is held only for the pointer swap, so publishing never
    /// stalls readers for longer than an `Arc` assignment. The new snapshot
    /// need not match the old one's precision (or engine type): workers
    /// rebuild their engine-owned scratch at the first batch on the new
    /// model, so f32 → i8 → f32 swaps are invisible to in-flight clients.
    /// Like [`BatchingServer::start`], accepts a concrete engine or an
    /// already-erased `Arc<dyn FrozenModel>`.
    pub fn publish(&self, model: impl IntoFrozenModel) {
        *self.shared.model.write() = model.into_frozen();
        self.shared.swap_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Submit one query and block until its top-`k` prediction is ready.
    /// Applies backpressure: blocks while the submission queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the server shuts down before responding;
    /// [`ServeError::Invalid`] for malformed queries (length mismatch,
    /// out-of-range feature index, `k == 0`).
    pub fn predict(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, true, None)
    }

    /// [`BatchingServer::predict`] with a deadline: if `deadline` passes
    /// before the request reaches compute it is shed with
    /// [`ServeError::DeadlineExceeded`] — immediately at admission when it
    /// arrives already expired (no compute, no queue slot), or from the
    /// dispatcher's drain loop when it expires while queued. A request
    /// already being scored runs to completion (compute is never cancelled
    /// mid-batch); the deadline bounds *queueing*, which is where overload
    /// latency lives.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when the budget runs out pre-compute;
    /// otherwise as [`BatchingServer::predict`].
    pub fn predict_within(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, true, deadline)
    }

    /// Non-blocking-admission variant of [`BatchingServer::predict`]: if the
    /// submission queue is full the request is **shed** with
    /// [`ServeError::Overloaded`] instead of blocking the caller — the hook
    /// a network front-end needs to answer `RETRY_LATER` under overload
    /// rather than buffering without bound. Admission is the only
    /// difference: an admitted request still blocks until its response is
    /// ready.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity; otherwise
    /// as [`BatchingServer::predict`].
    pub fn try_predict(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, false, None)
    }

    /// Non-blocking-admission variant of [`BatchingServer::predict_within`]:
    /// sheds on a full queue ([`ServeError::Overloaded`]) *and* on an
    /// exhausted deadline ([`ServeError::DeadlineExceeded`]) — the pair a
    /// network front-end needs to map overload to `RETRY_LATER` and stale
    /// requests to a typed deadline reply.
    ///
    /// # Errors
    ///
    /// As [`BatchingServer::try_predict`] plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn try_predict_within(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<u32>, ServeError> {
        self.submit(indices, values, k, false, deadline)
    }

    fn submit(
        &self,
        indices: &[u32],
        values: &[f32],
        k: usize,
        block: bool,
        deadline: Option<Instant>,
    ) -> Result<Vec<u32>, ServeError> {
        if k == 0 {
            return Err(ServeError::Invalid("k must be positive".into()));
        }
        if indices.len() != values.len() {
            return Err(ServeError::Invalid(format!(
                "index/value length mismatch: {} vs {}",
                indices.len(),
                values.len()
            )));
        }
        // Already expired on arrival: reject before taking a queue slot —
        // the caller's budget is gone, compute would be pure waste.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.shared.stats.lock().deadline_exceeded += 1;
            return Err(ServeError::DeadlineExceeded);
        }
        let (tx, rx) = mpsc::sync_channel(1);
        let request = Request {
            indices: indices.to_vec(),
            values: values.to_vec(),
            k,
            enqueued: Instant::now(),
            deadline,
            tx,
        };
        {
            let mut q = self.shared.queue.lock();
            while q.items.len() >= self.shared.config.queue_cap && !q.closed {
                if !block {
                    return Err(ServeError::Overloaded(q.items.len()));
                }
                self.shared.not_full.wait(&mut q);
            }
            if q.closed {
                return Err(ServeError::Closed);
            }
            q.items.push_back(request);
            self.shared.not_empty.notify_one();
        }
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Requests currently waiting in the submission queue (not including
    /// those already being scored in a batch).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().items.len()
    }

    /// Snapshot the throughput/latency counters.
    ///
    /// Counters are merged at batch boundaries, so a response a client just
    /// received may precede its own appearance in the counters by one
    /// batch-merge window (microseconds). Quiesce traffic before comparing
    /// exact counts.
    pub fn stats(&self) -> ServeStats {
        let precision = self.shared.model.read().precision().to_string();
        let stats = self.shared.stats.lock();
        let elapsed = stats.started.elapsed().as_secs_f64().max(1e-9);
        let batch_hist: Vec<(usize, u64)> = stats
            .batch_counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(s, &c)| (s, c))
            .collect();
        ServeStats {
            precision,
            served: stats.served,
            errors: stats.errors,
            deadline_exceeded: stats.deadline_exceeded,
            batches: stats.batches,
            hot_swaps: self.shared.swap_epoch.load(Ordering::Acquire),
            elapsed_seconds: elapsed,
            throughput_qps: stats.served as f64 / elapsed,
            mean_batch: if stats.batches == 0 {
                0.0
            } else {
                stats.served as f64 / stats.batches as f64
            },
            batch_hist,
            latency: LatencySummary::from_unsorted(stats.latencies_us.clone()),
        }
    }

    /// Zero the counters and restart the stats clock (e.g. after warmup).
    pub fn reset_stats(&self) {
        let mut stats = self.shared.stats.lock();
        stats.latencies_us.clear();
        stats.batch_counts.fill(0);
        stats.served = 0;
        stats.errors = 0;
        stats.deadline_exceeded = 0;
        stats.batches = 0;
        stats.started = Instant::now();
    }

    /// Stop accepting new requests. Requests already queued are still served
    /// before the dispatcher exits; blocked submitters get
    /// [`ServeError::Closed`].
    pub fn close(&self) {
        let mut q = self.shared.queue.lock();
        q.closed = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

impl Drop for BatchingServer {
    fn drop(&mut self) {
        self.close();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Closes and drains the queue when the dispatcher exits — normally (the
/// queue is already empty then) or by panic, in which case every pending
/// request's sender is dropped so blocked callers get [`ServeError::Closed`]
/// instead of hanging forever.
struct DrainOnExit<'a>(&'a ServerShared);

impl Drop for DrainOnExit<'_> {
    fn drop(&mut self) {
        let mut q = self.0.queue.lock();
        q.closed = true;
        q.items.clear();
        self.0.not_empty.notify_all();
        self.0.not_full.notify_all();
    }
}

fn dispatcher_loop(shared: &ServerShared) {
    let _drain_guard = DrainOnExit(shared);
    let config = shared.config;
    let pool = ThreadPool::new(shared.threads);
    let mut slots: Vec<WorkerSlot> = Vec::new();
    // The snapshot the current slots' scratches were built for; holding the
    // Arc pins the allocation, so pointer equality is ABA-safe and a
    // hot-swap always triggers a scratch rebuild (shapes — and the scratch's
    // concrete engine type — may differ across snapshots).
    let mut slots_model: Option<Arc<dyn FrozenModel>> = None;
    let mut batch: Vec<Request> = Vec::with_capacity(config.max_batch);

    let mut shed: Vec<Request> = Vec::new();

    loop {
        batch.clear();
        shed.clear();
        {
            let mut q = shared.queue.lock();
            // Wait for the first live request (or shutdown). Requests whose
            // deadline already passed are shed here — before they occupy a
            // batch slot or touch a worker — and answered after the lock
            // drops.
            loop {
                let now = Instant::now();
                while batch.len() < config.max_batch {
                    match q.items.pop_front() {
                        Some(r) if r.expired(now) => shed.push(r),
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                if !batch.is_empty() || !shed.is_empty() || q.closed {
                    break;
                }
                shared.not_empty.wait(&mut q);
            }
            if batch.is_empty() && shed.is_empty() {
                return; // closed and fully drained
            }
            // Coalescing window: keep absorbing requests until the batch is
            // full or `max_wait` has elapsed since it opened.
            if !batch.is_empty() && batch.len() < config.max_batch && !q.closed {
                let window_closes = batch[0].enqueued + config.max_wait;
                loop {
                    let now = Instant::now();
                    while batch.len() < config.max_batch {
                        match q.items.pop_front() {
                            Some(r) if r.expired(now) => shed.push(r),
                            Some(r) => batch.push(r),
                            None => break,
                        }
                    }
                    if batch.len() >= config.max_batch || q.closed {
                        break;
                    }
                    let Some(remaining) = window_closes
                        .checked_duration_since(now)
                        .filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    shared.not_empty.wait_for(&mut q, remaining);
                }
            }
        }
        shared.not_full.notify_all();

        if !shed.is_empty() {
            shared.stats.lock().deadline_exceeded += shed.len() as u64;
            for req in shed.drain(..) {
                // A disappeared client (dropped receiver) is not an error.
                let _ = req.tx.send(Err(ServeError::DeadlineExceeded));
            }
        }
        if batch.is_empty() {
            continue; // this round only flushed expired requests
        }

        // Pin the snapshot for this whole batch (hot-swaps land between
        // batches, never inside one).
        let model = shared.model.read().clone();
        let stale = !matches!(&slots_model, Some(m) if Arc::ptr_eq(m, &model));
        if slots.len() != shared.threads || stale {
            slots = (0..shared.threads)
                .map(|_| WorkerSlot {
                    scratch: model.make_scratch_any(),
                    latencies_us: Vec::new(),
                    errors: 0,
                    deadline_exceeded: 0,
                })
                .collect();
            slots_model = Some(Arc::clone(&model));
        }
        for slot in &mut slots {
            slot.latencies_us.clear();
            slot.errors = 0;
            slot.deadline_exceeded = 0;
        }

        let n = batch.len();
        let cursor = AtomicUsize::new(0);
        let slot_ptr = SlotPtr {
            base: slots.as_mut_ptr(),
            len: slots.len(),
        };
        let batch_ref: &[Request] = &batch;
        let model_ref: &dyn FrozenModel = &*model;
        pool.run(&|worker| {
            // SAFETY: worker ids are distinct; `slots` outlives `run`.
            let slot = unsafe { slot_ptr.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let req = &batch_ref[i];
                if req.expired(Instant::now()) {
                    // Expired between batch assembly and pickup (e.g. a slow
                    // predecessor in this batch): shed without scoring.
                    slot.deadline_exceeded += 1;
                    let _ = req.tx.send(Err(ServeError::DeadlineExceeded));
                    continue;
                }
                let response = match model_ref.validate_query(&req.indices, &req.values) {
                    Ok(()) => {
                        let x = SparseVecRef::new(&req.indices, &req.values);
                        // Content-derived salt: the same query gets the same
                        // active-set padding — and therefore bit-identical
                        // top-k — on every call, in any batch position, on
                        // any replica of the same snapshot. A fleet needs
                        // that for failover answer-consistency; parity tests
                        // need it to compare socket vs in-process paths.
                        let salt = query_salt(&req.indices, &req.values, req.k);
                        Ok(model_ref.predict_any(x, req.k, slot.scratch.as_mut(), salt))
                    }
                    Err(msg) => {
                        slot.errors += 1;
                        Err(ServeError::Invalid(msg))
                    }
                };
                slot.latencies_us
                    .push(req.enqueued.elapsed().as_micros() as u64);
                // A disappeared client (dropped receiver) is not an error.
                let _ = req.tx.send(response);
            }
        });

        let mut stats = shared.stats.lock();
        stats.batches += 1;
        stats.batch_counts[n] += 1;
        for slot in &slots {
            stats.served += slot.latencies_us.len() as u64;
            stats.errors += slot.errors;
            stats.deadline_exceeded += slot.deadline_exceeded;
            let room = MAX_LATENCY_SAMPLES.saturating_sub(stats.latencies_us.len());
            let take = slot.latencies_us.len().min(room);
            stats
                .latencies_us
                .extend_from_slice(&slot.latencies_us[..take]);
        }
    }
}

/// Run metadata shared by every `BENCH_serve.json` emitter (`slide_cli
/// serve-bench` and the `serve_bench` experiment binary); keeps the schema
/// in one place — see EXPERIMENTS.md §4.
#[derive(Debug, Clone, Copy)]
pub struct BenchMeta<'a> {
    /// Which emitter produced the report.
    pub source: &'a str,
    /// Workload name.
    pub workload: &'a str,
    /// `SLIDE_SCALE`-style workload multiplier.
    pub scale: usize,
    /// Load-generating client threads.
    pub clients: usize,
    /// Scoring threads in the server pool.
    pub threads: usize,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Micro-batch deadline in microseconds.
    pub max_wait_us: u64,
    /// Top-k requested per query.
    pub k: usize,
    /// Storage precision of the snapshot under test (`"f32"` / `"i8"` /
    /// `"bf16-widened-f32"`), so BENCH_serve.json rows are distinguishable
    /// across the `--precision` axis.
    pub precision: &'a str,
    /// Output-layer shards of the snapshot under test (1 = unsharded).
    pub shards: usize,
    /// Per-shard precision labels joined with `|` (equal to `precision`
    /// when unsharded or uniformly sharded, e.g. `"f32|i8|f32|f32"` after
    /// mixed per-shard hot-swaps).
    pub shard_precisions: &'a str,
}

/// Render one load phase (`"closed"` / `"open"`) as a JSON object.
/// `shards` is the shard count the phase ran against — stamped per phase
/// because the closed-loop shard sweep varies it within one report.
pub fn phase_json(
    mode: &str,
    offered_qps: Option<f64>,
    shards: usize,
    stats: &ServeStats,
) -> String {
    let offered = offered_qps.map_or_else(|| "null".to_string(), |q| format!("{q:.1}"));
    format!(
        "{{\"mode\":\"{mode}\",\"offered_qps\":{offered},\"shards\":{shards},\"stats\":{}}}",
        stats.to_json()
    )
}

/// Render a complete `BENCH_serve.json` document (trailing newline
/// included). `simd_level` and `kernel_variant` are stamped from the
/// process's effective dispatch level and kernel variant at call time, so
/// trajectories stay comparable across machines and forced-`SLIDE_SIMD` /
/// `SLIDE_KERNELS` CI legs.
pub fn bench_report_json(meta: &BenchMeta<'_>, phases: &[String]) -> String {
    format!(
        "{{\"bench\":\"serve\",\"source\":\"{}\",\"workload\":\"{}\",\"scale\":{},\
         \"clients\":{},\"threads\":{},\"simd_level\":\"{}\",\"kernel_variant\":\"{}\",\
         \"precision\":\"{}\",\"shards\":{},\"shard_precisions\":\"{}\",\
         \"max_batch\":{},\"max_wait_us\":{},\"k\":{},\"phases\":[{}]}}\n",
        meta.source,
        meta.workload,
        meta.scale,
        meta.clients,
        meta.threads,
        slide_simd::effective_level(),
        slide_simd::kernel_variant(),
        meta.precision,
        meta.shards,
        meta.shard_precisions,
        meta.max_batch,
        meta.max_wait_us,
        meta.k,
        phases.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrozenNetwork;
    use slide_core::{LshConfig, Network, NetworkConfig};

    fn tiny_frozen(seed: u64) -> FrozenNetwork {
        let mut cfg = NetworkConfig::standard(128, 16, 64);
        cfg.seed = seed;
        cfg.lsh = LshConfig {
            tables: 10,
            key_bits: 4,
            min_active: 16,
            ..Default::default()
        };
        FrozenNetwork::freeze(&Network::new(cfg).unwrap())
    }

    /// Stats merge at batch boundaries (see [`BatchingServer::stats`]); poll
    /// briefly until the expected request count lands.
    fn stats_when_served(server: &BatchingServer, served: u64) -> ServeStats {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = server.stats();
            if stats.served >= served || Instant::now() >= deadline {
                return stats;
            }
            std::thread::yield_now();
        }
    }

    fn small_server(threads: usize, max_wait: Duration) -> BatchingServer {
        BatchingServer::start(
            tiny_frozen(1),
            BatchConfig {
                max_batch: 16,
                max_wait,
                queue_cap: 64,
                threads,
            },
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(BatchConfig::default().validate().is_ok());
        assert!(BatchConfig {
            max_batch: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BatchConfig {
            max_batch: 100,
            queue_cap: 10,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(
            BatchConfig {
                threads: 3,
                ..Default::default()
            }
            .effective_threads()
                == 3
        );
    }

    #[test]
    fn single_request_roundtrip() {
        let server = small_server(2, Duration::from_micros(200));
        let topk = server.predict(&[1, 17, 40], &[1.0, 0.5, -0.25], 5).unwrap();
        assert_eq!(topk.len(), 5);
        let stats = stats_when_served(&server, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_hist, vec![(1, 1)]);
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let server = Arc::new(small_server(2, Duration::from_millis(2)));
        let per_client = 25usize;
        let clients = 4usize;
        std::thread::scope(|scope| {
            for c in 0..clients {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    for i in 0..per_client {
                        let f = ((c * per_client + i) % 128) as u32;
                        let topk = server.predict(&[f], &[1.0], 3).unwrap();
                        assert_eq!(topk.len(), 3);
                    }
                });
            }
        });
        let stats = stats_when_served(&server, (clients * per_client) as u64);
        assert_eq!(stats.served, (clients * per_client) as u64);
        assert_eq!(stats.errors, 0);
        assert!(stats.throughput_qps > 0.0);
        assert!(stats.latency.p50_us <= stats.latency.p99_us);
        assert!(stats.latency.p99_us <= stats.latency.max_us);
    }

    #[test]
    fn deadline_window_coalesces_concurrent_requests() {
        // One scoring thread + a generous window: requests arriving together
        // must share batches at least some of the time.
        let server = Arc::new(small_server(1, Duration::from_millis(20)));
        std::thread::scope(|scope| {
            for c in 0..8u32 {
                let server = Arc::clone(&server);
                scope.spawn(move || {
                    for i in 0..10u32 {
                        server.predict(&[(c * 16 + i) % 128], &[1.0], 2).unwrap();
                    }
                });
            }
        });
        let stats = stats_when_served(&server, 80);
        assert_eq!(stats.served, 80);
        let biggest = stats.batch_hist.last().map(|&(s, _)| s).unwrap_or(0);
        assert!(
            biggest >= 2,
            "no coalescing observed: {:?}",
            stats.batch_hist
        );
        assert!(stats.batches < 80, "every request ran alone");
    }

    #[test]
    fn invalid_queries_error_without_killing_the_server() {
        let server = small_server(2, Duration::from_micros(200));
        assert!(matches!(
            server.predict(&[0], &[1.0], 0),
            Err(ServeError::Invalid(_))
        ));
        assert!(matches!(
            server.predict(&[0, 1], &[1.0], 2),
            Err(ServeError::Invalid(_))
        ));
        // Out-of-range index is caught by the worker, not the submitter.
        let err = server.predict(&[9999], &[1.0], 2).unwrap_err();
        assert!(matches!(err, ServeError::Invalid(_)), "{err}");
        // The server still works.
        assert_eq!(server.predict(&[3], &[1.0], 2).unwrap().len(), 2);
        let stats = stats_when_served(&server, 2);
        assert_eq!(stats.errors, 1); // only the worker-detected one is counted
        assert_eq!(stats.served, 2);
    }

    #[test]
    fn close_rejects_new_requests() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        server.close();
        assert_eq!(server.predict(&[1], &[1.0], 1), Err(ServeError::Closed));
    }

    #[test]
    fn publish_swaps_the_snapshot() {
        let server = small_server(1, Duration::from_micros(100));
        let before = Arc::as_ptr(&server.current());
        server.publish(tiny_frozen(2));
        assert_ne!(before, Arc::as_ptr(&server.current()));
        assert_eq!(server.stats().hot_swaps, 1);
        // Still serving after the swap.
        assert_eq!(server.predict(&[5], &[1.0], 4).unwrap().len(), 4);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        server.reset_stats();
        let stats = server.stats();
        assert_eq!(stats.served, 0);
        assert_eq!(stats.batches, 0);
        assert!(stats.batch_hist.is_empty());
    }

    #[test]
    fn stats_json_has_required_fields() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        let json = stats_when_served(&server, 1).to_json();
        for field in [
            "\"precision\":\"f32\"",
            "\"served\":1",
            "\"throughput_qps\":",
            "\"latency_us\":",
            "\"p50\":",
            "\"p99\":",
            "\"batch_hist\":[[1,1]]",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn bench_report_schema_is_stable() {
        let server = small_server(1, Duration::from_micros(100));
        server.predict(&[1], &[1.0], 1).unwrap();
        let stats = stats_when_served(&server, 1);
        let phases = vec![
            phase_json("closed", None, 1, &stats),
            phase_json("open", Some(123.456), 4, &stats),
        ];
        let doc = bench_report_json(
            &BenchMeta {
                source: "test",
                workload: "synthetic",
                scale: 1,
                clients: 2,
                threads: server.threads(),
                max_batch: 16,
                max_wait_us: 100,
                k: 1,
                precision: "f32",
                shards: 4,
                shard_precisions: "f32|f32|f32|f32",
            },
            &phases,
        );
        for field in [
            "\"bench\":\"serve\"",
            "\"source\":\"test\"",
            "\"simd_level\":\"",
            "\"precision\":\"f32\"",
            "\"shards\":4",
            "\"shard_precisions\":\"f32|f32|f32|f32\"",
            "\"phases\":[{\"mode\":\"closed\",\"offered_qps\":null,\"shards\":1,",
            "{\"mode\":\"open\",\"offered_qps\":123.5,\"shards\":4,",
            "\"p99\":",
        ] {
            assert!(doc.contains(field), "missing {field} in {doc}");
        }
        assert!(doc.ends_with("}\n"));
    }

    /// A FrozenModel wrapper that sleeps per prediction — slow enough that
    /// a flood deterministically backs the admission queue up.
    #[derive(Debug)]
    struct SlowModel(FrozenNetwork, Duration);

    impl FrozenModel for SlowModel {
        fn precision(&self) -> &'static str {
            self.0.precision_label()
        }
        fn input_dim(&self) -> usize {
            self.0.input_dim()
        }
        fn output_dim(&self) -> usize {
            self.0.output_dim()
        }
        fn arena_bytes(&self) -> usize {
            self.0.arena_bytes()
        }
        fn validate_query(&self, indices: &[u32], values: &[f32]) -> Result<(), String> {
            self.0.validate_query(indices, values)
        }
        fn make_scratch_any(&self) -> Box<dyn Any + Send> {
            Box::new(self.0.make_scratch())
        }
        fn predict_any(
            &self,
            x: SparseVecRef<'_>,
            k: usize,
            scratch: &mut (dyn Any + Send),
            salt: u64,
        ) -> Vec<u32> {
            std::thread::sleep(self.1);
            let scratch = scratch.downcast_mut().expect("slow-model scratch");
            self.0.predict_sparse(x, k, scratch, salt)
        }
    }

    #[test]
    fn try_predict_sheds_when_the_queue_is_full() {
        // One worker scoring 5ms-per-request batches of 1, queue depth 2: a
        // burst of non-blocking submissions must hit Overloaded while the
        // blocking path would have parked instead.
        let server = Arc::new(
            BatchingServer::start(
                SlowModel(tiny_frozen(3), Duration::from_millis(5)),
                BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::ZERO,
                    queue_cap: 2,
                    threads: 1,
                },
            )
            .unwrap(),
        );
        let sheds = AtomicUsize::new(0);
        let oks = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for c in 0..8 {
                let server = Arc::clone(&server);
                let (sheds, oks) = (&sheds, &oks);
                scope.spawn(move || {
                    for i in 0..6u32 {
                        match server.try_predict(&[(c * 7 + i) % 128], &[1.0], 2) {
                            Ok(ids) => {
                                assert_eq!(ids.len(), 2);
                                oks.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Overloaded(depth)) => {
                                assert!(depth >= 2, "shed below capacity: {depth}");
                                sheds.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                });
            }
        });
        assert!(
            sheds.load(Ordering::Relaxed) > 0,
            "48 floods over a depth-2 queue never shed"
        );
        assert!(oks.load(Ordering::Relaxed) > 0, "nothing got through");
        // The server is still healthy after shedding.
        assert_eq!(server.predict(&[1], &[1.0], 3).unwrap().len(), 3);
    }

    #[test]
    fn expired_deadline_is_rejected_at_admission_without_compute() {
        let server = small_server(1, Duration::from_micros(100));
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            server.predict_within(&[1], &[1.0], 2, Some(past)),
            Err(ServeError::DeadlineExceeded)
        );
        let stats = server.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.served, 0, "expired request must never reach compute");
        assert_eq!(stats.errors, 0);
        // A live deadline is honoured normally.
        let topk = server
            .predict_within(
                &[1],
                &[1.0],
                2,
                Some(Instant::now() + Duration::from_secs(5)),
            )
            .unwrap();
        assert_eq!(topk.len(), 2);
    }

    #[test]
    fn deadline_expiring_in_queue_is_shed_from_the_drain_loop() {
        // One worker, 25ms per prediction, batches of 1: a request queued
        // behind a slow one with a 2ms budget must be shed when the
        // dispatcher pops it, not scored 25ms late.
        let server = Arc::new(
            BatchingServer::start(
                SlowModel(tiny_frozen(4), Duration::from_millis(25)),
                BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::ZERO,
                    queue_cap: 16,
                    threads: 1,
                },
            )
            .unwrap(),
        );
        std::thread::scope(|scope| {
            let blocker = {
                let server = Arc::clone(&server);
                scope.spawn(move || server.predict(&[1], &[1.0], 2))
            };
            // Let the blocker reach the worker before queueing the doomed
            // request behind it.
            std::thread::sleep(Duration::from_millis(8));
            let doomed = server.predict_within(
                &[2],
                &[1.0],
                2,
                Some(Instant::now() + Duration::from_millis(2)),
            );
            assert_eq!(doomed, Err(ServeError::DeadlineExceeded));
            assert_eq!(blocker.join().unwrap().unwrap().len(), 2);
        });
        let stats = stats_when_served(&server, 1);
        assert_eq!(stats.served, 1, "only the undeadlined request was scored");
        assert!(stats.deadline_exceeded >= 1);
        // The server is still healthy after shedding.
        assert_eq!(server.predict(&[3], &[1.0], 2).unwrap().len(), 2);
    }

    #[test]
    fn responses_are_deterministic_across_batch_positions() {
        // Content-derived salts: the same query answered alone and answered
        // inside a crowded batch returns bit-identical ids.
        let server = Arc::new(small_server(2, Duration::from_millis(2)));
        let expected = server.predict(&[3, 9], &[1.0, -0.5], 4).unwrap();
        std::thread::scope(|scope| {
            for c in 0..6 {
                let server = Arc::clone(&server);
                let expected = expected.clone();
                scope.spawn(move || {
                    for i in 0..20u32 {
                        // Interleave noise queries so the probe lands at
                        // varying batch offsets.
                        server.predict(&[(c * 11 + i) % 128], &[0.5], 2).unwrap();
                        let again = server.predict(&[3, 9], &[1.0, -0.5], 4).unwrap();
                        assert_eq!(again, expected, "client {c} iter {i}");
                    }
                });
            }
        });
    }

    #[test]
    fn queue_len_reports_backlog() {
        let server = small_server(1, Duration::from_micros(100));
        assert_eq!(server.queue_len(), 0);
        server.predict(&[1], &[1.0], 1).unwrap();
        assert_eq!(server.queue_len(), 0); // drained after the response
    }

    #[test]
    fn query_salt_is_content_addressed() {
        let a = query_salt(&[1, 2, 3], &[1.0, 2.0, 3.0], 5);
        assert_eq!(a, query_salt(&[1, 2, 3], &[1.0, 2.0, 3.0], 5));
        assert_ne!(a, query_salt(&[1, 2, 4], &[1.0, 2.0, 3.0], 5));
        assert_ne!(a, query_salt(&[1, 2, 3], &[1.0, 2.0, 3.5], 5));
        assert_ne!(a, query_salt(&[1, 2, 3], &[1.0, 2.0, 3.0], 6));
        assert_ne!(query_salt(&[], &[], 1), query_salt(&[], &[], 2));
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile_us(&[], 50.0), 0);
        assert_eq!(percentile_us(&[7], 50.0), 7);
        assert_eq!(percentile_us(&[7], 99.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50.0), 50);
        assert_eq!(percentile_us(&v, 99.0), 99);
        assert_eq!(percentile_us(&v, 100.0), 100);
    }
}
