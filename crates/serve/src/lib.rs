//! Frozen-inference serving for the SLIDE reproduction.
//!
//! The paper ("Accelerating SLIDE Deep Learning on Modern CPUs", MLSys 2021)
//! accelerates *training*; this crate gives the trained network a production
//! inference path that reuses the same substrates — the AVX-512/AVX2 kernels
//! of `slide-simd`, the aligned-arena discipline of `slide-mem`, the LSH
//! active-set machinery of `slide-hash`, and the worker pool of
//! `slide-core` — but strips away everything mutation-related:
//!
//! * [`FrozenNetwork`] — a read-only snapshot of a trained
//!   [`slide_core::Network`]: contiguous 64-byte-aligned per-layer weight
//!   arenas, pre-built hash tables, and a lock-free `&self`
//!   [`FrozenNetwork::predict_sparse`] that is safe to share across threads
//!   via `Arc` (no `HogwildPtr`, no gradient state, no table locks).
//! * [`BatchingServer`] — a bounded submission queue in front of a frozen
//!   snapshot: concurrent requests coalesce into micro-batches (size- or
//!   deadline-triggered, tunable via [`BatchConfig`]), fan out across a
//!   [`slide_core::ThreadPool`], and report throughput plus p50/p99 latency
//!   ([`ServeStats`]). `RwLock<Arc<FrozenNetwork>>` hot-swap lets a
//!   background trainer [`BatchingServer::publish`] fresh snapshots
//!   mid-traffic without dropping a request.
//! * [`ShardedFrozenModel`] — the output layer split row-wise across N
//!   shards ([`shard`] module), each with its own arenas, LSH tables, and
//!   precision (f32 here, int8 via `slide-quant`), individually
//!   hot-swappable, scatter–gather merged back to a global top-k that is
//!   bit-equal to the unsharded engines'.
//!
//! # Quickstart
//!
//! ```
//! use slide_core::{Network, NetworkConfig};
//! use slide_serve::{BatchConfig, BatchingServer, FrozenNetwork};
//!
//! let net = Network::new(NetworkConfig::standard(256, 16, 64)).unwrap();
//! let server = BatchingServer::start(
//!     FrozenNetwork::freeze(&net),
//!     BatchConfig { threads: 2, ..Default::default() },
//! ).unwrap();
//!
//! // Any number of threads may call predict concurrently.
//! let topk = server.predict(&[1, 17], &[1.0, 0.5], 5).unwrap();
//! assert_eq!(topk.len(), 5);
//!
//! // A background trainer publishes a new snapshot mid-traffic.
//! let retrained = Network::new(NetworkConfig::standard(256, 16, 64)).unwrap();
//! server.publish(FrozenNetwork::freeze(&retrained));
//! assert_eq!(server.stats().hot_swaps, 1);
//! ```

mod error;
mod frozen;
mod model;
pub mod registry;
mod retrieval;
mod server;
pub mod shard;
pub mod snapshot;

pub use error::{ServeBuildError, ServeError};
pub use frozen::{FrozenLayer, FrozenNetwork, ServeScratch};
pub use model::{FrozenModel, IntoFrozenModel};
pub use registry::ModelRegistry;
pub use retrieval::{ActiveSetSelector, SelectorScratch, ShardSelector, ShardSelectorScratch};
pub use server::{
    bench_report_json, percentile_us, phase_json, query_salt, stage_histogram, BatchConfig,
    BatchingServer, BenchMeta, LatencySummary, ServeStats,
};
pub use shard::{
    F32Shard, F32Trunk, ShardEngine, ShardIndexer, ShardPlan, ShardPlanKind, ShardScratch,
    ShardTrunk, ShardedFrozenModel, ShardedScratch,
};
pub use snapshot::{SnapshotError, SnapshotImage, SnapshotPrecision, SnapshotSpec};
