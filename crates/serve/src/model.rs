//! The precision-generic serving handle.
//!
//! [`crate::BatchingServer`] used to be hard-wired to the f32
//! [`FrozenNetwork`]; quantized serving needs the server to hold *any*
//! frozen engine and hot-swap between precisions mid-traffic. [`FrozenModel`]
//! is the object-safe contract that makes that possible: the server stores
//! `Arc<dyn FrozenModel>` and treats per-worker scratch as an opaque
//! `Box<dyn Any + Send>` built by — and downcast inside — the engine that
//! owns it. Scratch is always rebuilt when a published snapshot replaces the
//! one it was created from (the dispatcher already does this for shape
//! changes), so a worker can never hand an engine a foreign scratch type.

use crate::frozen::{FrozenNetwork, ServeScratch};
use slide_mem::SparseVecRef;
use slide_obs::StageSample;
use std::any::Any;
use std::sync::Arc;

/// An immutable, share-everywhere inference snapshot the batching server can
/// serve — implemented by the f32 [`FrozenNetwork`] here and by the int8
/// `QuantizedFrozenNetwork` in `slide-quant`.
///
/// All methods take `&self` and must be safe to call from any number of
/// threads concurrently (each with its own scratch) — the same lock-free
/// contract `FrozenNetwork` established.
pub trait FrozenModel: Send + Sync + std::fmt::Debug + 'static {
    /// Storage-precision label for logs and bench meta (`"f32"`,
    /// `"bf16-widened-f32"`, `"i8"`).
    fn precision(&self) -> &'static str;

    /// Sparse input dimensionality accepted by queries.
    fn input_dim(&self) -> usize;

    /// Output (label) dimensionality.
    fn output_dim(&self) -> usize;

    /// Total bytes held in weight/bias/scale arenas.
    fn arena_bytes(&self) -> usize;

    /// Check that a query fits this snapshot's input space.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending index or length mismatch.
    fn validate_query(&self, indices: &[u32], values: &[f32]) -> Result<(), String>;

    /// Allocate per-worker query scratch for this engine, type-erased for
    /// the server's worker slots.
    fn make_scratch_any(&self) -> Box<dyn Any + Send>;

    /// Predict the top-`k` labels for one sparse input using scratch
    /// previously produced by [`FrozenModel::make_scratch_any`] *on this
    /// same snapshot*.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was built by a different engine type (the server
    /// never does this: scratch is rebuilt on every snapshot change), on
    /// out-of-range feature indices, or if `k == 0`.
    fn predict_any(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut (dyn Any + Send),
        salt: u64,
    ) -> Vec<u32>;

    /// [`FrozenModel::predict_any`] with per-stage attribution: fills
    /// `stages` with the retrieval / kernel / merge split of the call.
    /// The default implementation cannot see inside the engine, so it
    /// attributes the whole call to the kernel stage; the engines in this
    /// workspace override it with real per-stage timers.
    fn predict_any_timed(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut (dyn Any + Send),
        salt: u64,
        stages: &mut StageSample,
    ) -> Vec<u32> {
        let t0 = std::time::Instant::now();
        let out = self.predict_any(x, k, scratch, salt);
        *stages = StageSample {
            kernel_us: t0.elapsed().as_micros() as u64,
            ..StageSample::default()
        };
        out
    }
}

/// Anything the batching server accepts where a model is expected: either a
/// concrete engine (it is wrapped into an `Arc` on the way in) or an
/// `Arc<dyn FrozenModel>` that is passed through untouched — for example
/// one returned by the snapshot loader.
///
/// This is the unification of the old `start`/`start_dyn` and
/// `publish`/`publish_dyn` pairs: one generic entry point each. (A plain
/// `impl Into<Arc<dyn FrozenModel>>` bound cannot express this — the
/// blanket `From` impl would be an orphan — so the crate owns the
/// conversion trait.)
pub trait IntoFrozenModel {
    /// Convert into the server's shared model handle.
    fn into_frozen(self) -> Arc<dyn FrozenModel>;
}

impl<M: FrozenModel> IntoFrozenModel for M {
    fn into_frozen(self) -> Arc<dyn FrozenModel> {
        Arc::new(self)
    }
}

impl IntoFrozenModel for Arc<dyn FrozenModel> {
    fn into_frozen(self) -> Arc<dyn FrozenModel> {
        self
    }
}

impl FrozenModel for FrozenNetwork {
    fn precision(&self) -> &'static str {
        self.precision_label()
    }

    fn input_dim(&self) -> usize {
        self.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.output_dim()
    }

    fn arena_bytes(&self) -> usize {
        self.arena_bytes()
    }

    fn validate_query(&self, indices: &[u32], values: &[f32]) -> Result<(), String> {
        self.validate_query(indices, values)
    }

    fn make_scratch_any(&self) -> Box<dyn Any + Send> {
        Box::new(self.make_scratch())
    }

    fn predict_any(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut (dyn Any + Send),
        salt: u64,
    ) -> Vec<u32> {
        let scratch = scratch
            .downcast_mut::<ServeScratch>()
            .expect("FrozenNetwork handed scratch built by a different engine");
        self.predict_sparse(x, k, scratch, salt)
    }

    fn predict_any_timed(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut (dyn Any + Send),
        salt: u64,
        stages: &mut StageSample,
    ) -> Vec<u32> {
        let scratch = scratch
            .downcast_mut::<ServeScratch>()
            .expect("FrozenNetwork handed scratch built by a different engine");
        self.predict_sparse_timed(x, k, scratch, salt, stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_core::{Network, NetworkConfig};

    #[test]
    fn frozen_network_serves_through_the_trait_object() {
        let net = Network::new(NetworkConfig::standard(128, 16, 64)).unwrap();
        let model: Box<dyn FrozenModel> = Box::new(FrozenNetwork::freeze(&net));
        assert_eq!(model.precision(), "f32");
        assert_eq!(model.input_dim(), 128);
        assert_eq!(model.output_dim(), 64);
        assert!(model.arena_bytes() > 0);
        assert!(model.validate_query(&[0, 127], &[1.0, 2.0]).is_ok());
        let mut scratch = model.make_scratch_any();
        let idx = [1u32, 17];
        let val = [1.0f32, 0.5];
        let topk = model.predict_any(SparseVecRef::new(&idx, &val), 5, scratch.as_mut(), 0);
        assert_eq!(topk.len(), 5);
    }

    #[test]
    #[should_panic(expected = "different engine")]
    fn foreign_scratch_panics_loudly() {
        let net = Network::new(NetworkConfig::standard(64, 8, 32)).unwrap();
        let frozen = FrozenNetwork::freeze(&net);
        let mut bogus: Box<dyn Any + Send> = Box::new(42u32);
        let idx = [1u32];
        let val = [1.0f32];
        frozen.predict_any(SparseVecRef::new(&idx, &val), 1, bogus.as_mut(), 0);
    }
}
