//! Versioned on-disk model registry: the durable handoff between whoever
//! builds snapshots and the serving processes that load them.
//!
//! Layout under the registry root:
//!
//! ```text
//! root/
//!   CURRENT             textual version number of the live snapshot
//!   versions/
//!     v000001.slsnap
//!     v000002.slsnap
//!     …
//! ```
//!
//! Every mutation is crash-safe by construction: payloads and the
//! `CURRENT` pointer are both written to a temporary sibling, `fsync`ed,
//! then `rename`d into place, and finally the **parent directory** is
//! `fsync`ed — on POSIX filesystems rename is atomic for concurrent
//! *readers*, but the rename itself lives in directory metadata, which is
//! not durable until the directory's own fsync completes. Without that
//! last step a power loss after `rename` returns could resurface the old
//! directory entry (or no entry at all) on reboot. With it, the sequence
//! is: a loader racing the writer observes either the old version or the
//! new one, never a torn file; a loader racing a *crash* observes, after
//! reboot, a state no older than the last completed `write_atomic`. A
//! version file is fully durable *before* `CURRENT` points at it, so
//! following the pointer can never reach a half-written snapshot. Torn
//! writes that sneak beneath the filesystem anyway (firmware lying about
//! flush) are the job of the snapshot CRCs to catch at load.
//!
//! A publisher that crashes *between* temp-write and rename leaks its
//! temp file; [`ModelRegistry::open`] sweeps such orphans (recognized by
//! the exact `.<name>.tmp.<pid>.<seq>` pattern, and only when `<pid>` is
//! no longer a live process) from the root and `versions/`, so crashed
//! publishes cannot accumulate unbounded disk.
//!
//! The registry is single-writer / many-reader: one publisher process
//! allocates version numbers; readers only ever follow `CURRENT`.

use crate::snapshot::SnapshotError;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File name of the live-version pointer.
const CURRENT: &str = "CURRENT";

/// Subdirectory holding the immutable version files.
const VERSIONS_DIR: &str = "versions";

/// Monotonic disambiguator for temp-file names (several threads of one
/// process may write through [`write_atomic`] concurrently).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: temp sibling, `fsync`, `rename`,
/// then parent-directory `fsync`. Readers of `path` see the old contents
/// or the new contents, never a prefix, and once this returns the rename
/// is durable across power loss (the directory entry itself is flushed).
///
/// # Errors
///
/// Any I/O failure; the temp file is cleaned up on error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    // `Path::parent` returns "" for bare file names; open "." instead.
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic: path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        sync_dir(dir)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Flush a directory's metadata so a just-completed `rename` inside it is
/// durable. On Unix a directory can be opened read-only and `fsync`ed; on
/// other platforms this is a no-op (NTFS journals renames on its own).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Does `name` match the exact temp-file pattern [`write_atomic`] uses,
/// `.<target>.tmp.<pid>.<seq>`? Returns the embedded pid when it does.
/// Deliberately strict — a sweep must never match `v*.slsnap`, `CURRENT`,
/// or arbitrary dotfiles a user parked in the registry.
fn parse_write_atomic_temp(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('.')?;
    // From the right: <seq>, <pid>, then "<target>.tmp".
    let mut it = rest.rsplitn(3, '.');
    let seq = it.next()?;
    let pid = it.next()?;
    let head = it.next()?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if pid.is_empty() || !pid.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if !head.ends_with(".tmp") || head.len() == ".tmp".len() {
        return None;
    }
    pid.parse::<u32>().ok()
}

/// Is the process that owns a temp file still alive? Only a dead owner's
/// orphan may be swept — a live publisher's in-flight temp is about to be
/// renamed. On Linux, check procfs; elsewhere be conservative and treat
/// every foreign pid as live (our own pid is always live).
fn temp_owner_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        true
    }
}

/// Remove orphaned `write_atomic` temp files from `dir`. Best-effort:
/// unreadable entries and failed removals are skipped, not errors (the
/// sweep is hygiene, not correctness — a leftover temp is inert).
fn sweep_stale_temps(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(pid) = parse_write_atomic_temp(name) {
            if !temp_owner_alive(pid) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// A versioned snapshot directory with an atomically updated `CURRENT`
/// pointer: publish, roll back, and prune model versions without ever
/// exposing a torn file to a concurrent loader.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Open (creating directories as needed) the registry rooted at `root`.
    ///
    /// Also sweeps temp files orphaned by a publisher that crashed between
    /// temp-write and rename (recognized by the exact
    /// `.<name>.tmp.<pid>.<seq>` pattern with a dead `<pid>`) from the
    /// root and `versions/`; `v*.slsnap` payloads and `CURRENT` are never
    /// touched, nor is a live process's in-flight temp.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the directories cannot be created. Sweep
    /// failures are ignored (an orphaned temp is inert).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        let root = root.into();
        fs::create_dir_all(root.join(VERSIONS_DIR))?;
        sweep_stale_temps(&root);
        sweep_stale_temps(&root.join(VERSIONS_DIR));
        Ok(ModelRegistry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path a given version lives (or would live) at.
    pub fn version_path(&self, version: u64) -> PathBuf {
        self.root
            .join(VERSIONS_DIR)
            .join(format!("v{version:06}.slsnap"))
    }

    /// All version numbers present on disk, ascending. Unparseable file
    /// names (editor droppings, temp files) are ignored.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the versions directory cannot be read.
    pub fn versions(&self) -> Result<Vec<u64>, SnapshotError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join(VERSIONS_DIR))? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(v) = name
                .strip_prefix('v')
                .and_then(|s| s.strip_suffix(".slsnap"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push(v);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The version `CURRENT` points at, `None` if nothing is published.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on read failure; [`SnapshotError::Corrupt`]
    /// if `CURRENT` exists but does not hold a version number.
    pub fn current_version(&self) -> Result<Option<u64>, SnapshotError> {
        let path = self.root.join(CURRENT);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        text.trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| SnapshotError::Corrupt(format!("CURRENT holds {:?}", text.trim())))
    }

    /// Path of the live snapshot, `None` if nothing is published.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::current_version`].
    pub fn current_path(&self) -> Result<Option<PathBuf>, SnapshotError> {
        Ok(self.current_version()?.map(|v| self.version_path(v)))
    }

    /// Publish `image` as the next version and atomically repoint
    /// `CURRENT` at it. The version file is fully durable before the
    /// pointer moves, so a loader following `CURRENT` always finds a
    /// complete image.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on any write failure (the pointer is only
    /// moved after the payload lands).
    pub fn publish(&self, image: &[u8]) -> Result<u64, SnapshotError> {
        let next = self.versions()?.last().copied().unwrap_or(0) + 1;
        write_atomic(&self.version_path(next), image)?;
        self.point_current(next)?;
        Ok(next)
    }

    /// Repoint `CURRENT` at an already-published `version`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if that version does not exist on disk;
    /// [`SnapshotError::Io`] on write failure.
    pub fn activate(&self, version: u64) -> Result<(), SnapshotError> {
        if !self.version_path(version).is_file() {
            return Err(SnapshotError::Corrupt(format!(
                "cannot activate v{version:06}: not in the registry"
            )));
        }
        self.point_current(version)
    }

    /// Roll back: repoint `CURRENT` at the highest version strictly below
    /// the live one. Returns the version now live.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] if nothing is published or there is no
    /// earlier version to roll back to.
    pub fn rollback(&self) -> Result<u64, SnapshotError> {
        let live = self
            .current_version()?
            .ok_or_else(|| SnapshotError::Corrupt("rollback with nothing published".into()))?;
        let prev = self
            .versions()?
            .into_iter()
            .rfind(|&v| v < live)
            .ok_or_else(|| {
                SnapshotError::Corrupt(format!(
                    "v{live:06} is the oldest version, cannot roll back"
                ))
            })?;
        self.point_current(prev)?;
        Ok(prev)
    }

    /// Retention: delete all but the newest `keep` versions. `keep` is
    /// clamped to a minimum of 1 — `retain(0)` would otherwise silently
    /// delete every non-live version, and an empty registry is never what
    /// retention means. Exactly one version is additionally exempt
    /// regardless of age: the one `CURRENT` points at (a rollback target
    /// must stay loadable), so up to `max(keep, 1) + 1` files can survive
    /// when the live version is older than the cutoff. Returns the
    /// versions removed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on delete failure.
    pub fn retain(&self, keep: usize) -> Result<Vec<u64>, SnapshotError> {
        let keep = keep.max(1);
        let versions = self.versions()?;
        let live = self.current_version()?;
        let cut = versions.len().saturating_sub(keep);
        let mut removed = Vec::new();
        for &v in &versions[..cut] {
            if Some(v) == live {
                continue;
            }
            fs::remove_file(self.version_path(v))?;
            removed.push(v);
        }
        Ok(removed)
    }

    fn point_current(&self, version: u64) -> Result<(), SnapshotError> {
        write_atomic(&self.root.join(CURRENT), format!("{version}\n").as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "slide_registry_{tag}_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_rollback_retain_lifecycle() {
        let root = tmp_root("lifecycle");
        let reg = ModelRegistry::open(&root).unwrap();
        assert_eq!(reg.current_version().unwrap(), None);
        assert_eq!(reg.versions().unwrap(), Vec::<u64>::new());

        assert_eq!(reg.publish(b"one").unwrap(), 1);
        assert_eq!(reg.publish(b"two").unwrap(), 2);
        assert_eq!(reg.publish(b"three").unwrap(), 3);
        assert_eq!(reg.versions().unwrap(), vec![1, 2, 3]);
        assert_eq!(reg.current_version().unwrap(), Some(3));
        assert_eq!(
            fs::read(reg.current_path().unwrap().unwrap()).unwrap(),
            b"three"
        );

        // Roll back to 2, then verify retention protects the live target.
        assert_eq!(reg.rollback().unwrap(), 2);
        assert_eq!(reg.current_version().unwrap(), Some(2));
        let removed = reg.retain(1).unwrap();
        assert_eq!(removed, vec![1]);
        assert_eq!(reg.versions().unwrap(), vec![2, 3]);
        assert_eq!(
            fs::read(reg.current_path().unwrap().unwrap()).unwrap(),
            b"two"
        );

        // Next publish continues the sequence past the highest survivor.
        assert_eq!(reg.publish(b"four").unwrap(), 4);
        assert_eq!(reg.current_version().unwrap(), Some(4));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rollback_edges_are_errors() {
        let root = tmp_root("rollback_edges");
        let reg = ModelRegistry::open(&root).unwrap();
        assert!(matches!(reg.rollback(), Err(SnapshotError::Corrupt(_))));
        reg.publish(b"only").unwrap();
        assert!(matches!(reg.rollback(), Err(SnapshotError::Corrupt(_))));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn activate_rejects_missing_versions() {
        let root = tmp_root("activate");
        let reg = ModelRegistry::open(&root).unwrap();
        reg.publish(b"a").unwrap();
        assert!(matches!(reg.activate(9), Err(SnapshotError::Corrupt(_))));
        reg.activate(1).unwrap();
        assert_eq!(reg.current_version().unwrap(), Some(1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_current_pointer_is_an_error_not_a_panic() {
        let root = tmp_root("corrupt_current");
        let reg = ModelRegistry::open(&root).unwrap();
        fs::write(root.join(CURRENT), "not a number").unwrap();
        assert!(matches!(
            reg.current_version(),
            Err(SnapshotError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stray_files_in_versions_dir_are_ignored() {
        let root = tmp_root("stray");
        let reg = ModelRegistry::open(&root).unwrap();
        reg.publish(b"a").unwrap();
        fs::write(root.join(VERSIONS_DIR).join("README.txt"), "hi").unwrap();
        fs::write(root.join(VERSIONS_DIR).join("vNaN.slsnap"), "junk").unwrap();
        assert_eq!(reg.versions().unwrap(), vec![1]);
        let _ = fs::remove_dir_all(&root);
    }

    /// A pid that cannot belong to a live process: pid_max on Linux tops
    /// out at 2^22, and 32-bit pids never reach u32::MAX anywhere.
    const DEAD_PID: u32 = u32::MAX;

    #[test]
    fn temp_name_parser_is_exact() {
        assert_eq!(
            parse_write_atomic_temp(".v000001.slsnap.tmp.1234.7"),
            Some(1234)
        );
        assert_eq!(parse_write_atomic_temp(".CURRENT.tmp.1.0"), Some(1));
        // Near misses must not match.
        assert_eq!(parse_write_atomic_temp("v000001.slsnap"), None);
        assert_eq!(parse_write_atomic_temp("CURRENT"), None);
        assert_eq!(parse_write_atomic_temp(".tmp.12.3"), None); // no target name
        assert_eq!(parse_write_atomic_temp(".x.tmp.12"), None); // missing seq
        assert_eq!(parse_write_atomic_temp(".x.tmp.pid.3"), None); // non-numeric pid
        assert_eq!(parse_write_atomic_temp(".x.tmp.12.seq"), None); // non-numeric seq
        assert_eq!(parse_write_atomic_temp(".x.temp.12.3"), None); // wrong marker
        assert_eq!(parse_write_atomic_temp(".gitignore"), None);
    }

    #[test]
    fn open_sweeps_dead_publishers_temps_only() {
        let root = tmp_root("sweep");
        {
            let reg = ModelRegistry::open(&root).unwrap();
            reg.publish(b"a").unwrap();
        }
        let versions_dir = root.join(VERSIONS_DIR);
        // Simulated crash between temp-write and rename: orphans from a
        // dead pid in both the root (CURRENT temp) and versions/.
        let dead_root = root.join(format!(".CURRENT.tmp.{DEAD_PID}.0"));
        let dead_ver = versions_dir.join(format!(".v000002.slsnap.tmp.{DEAD_PID}.1"));
        // In-flight temp of a live process (ours) must survive.
        let live_ver = versions_dir.join(format!(".v000002.slsnap.tmp.{}.9", std::process::id()));
        // Non-matching dotfile must survive.
        let dotfile = root.join(".keep");
        fs::write(&dead_root, b"torn").unwrap();
        fs::write(&dead_ver, b"torn").unwrap();
        fs::write(&live_ver, b"inflight").unwrap();
        fs::write(&dotfile, b"").unwrap();

        let reg = ModelRegistry::open(&root).unwrap();
        assert!(!dead_root.exists(), "dead-pid temp in root not swept");
        assert!(!dead_ver.exists(), "dead-pid temp in versions/ not swept");
        assert!(live_ver.exists(), "live-pid temp wrongly swept");
        assert!(dotfile.exists(), "unrelated dotfile wrongly swept");
        // Payloads and the pointer are untouched; versions() unaffected.
        assert_eq!(reg.versions().unwrap(), vec![1]);
        assert_eq!(reg.current_version().unwrap(), Some(1));
        assert_eq!(
            fs::read(reg.current_path().unwrap().unwrap()).unwrap(),
            b"a"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn retain_zero_keeps_newest() {
        let root = tmp_root("retain_zero");
        let reg = ModelRegistry::open(&root).unwrap();
        reg.publish(b"a").unwrap();
        reg.publish(b"b").unwrap();
        reg.publish(b"c").unwrap();
        // retain(0) is clamped to retain(1): the newest version survives
        // (here it is also live, so both exemptions coincide).
        let removed = reg.retain(0).unwrap();
        assert_eq!(removed, vec![1, 2]);
        assert_eq!(reg.versions().unwrap(), vec![3]);
        assert_eq!(reg.current_version().unwrap(), Some(3));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn retain_zero_with_old_live_version_keeps_both() {
        let root = tmp_root("retain_zero_live");
        let reg = ModelRegistry::open(&root).unwrap();
        reg.publish(b"a").unwrap();
        reg.publish(b"b").unwrap();
        reg.publish(b"c").unwrap();
        reg.activate(1).unwrap();
        // Clamped keep=1 protects v3 (newest); the live exemption
        // protects v1; only v2 goes.
        let removed = reg.retain(0).unwrap();
        assert_eq!(removed, vec![2]);
        assert_eq!(reg.versions().unwrap(), vec![1, 3]);
        assert_eq!(reg.current_version().unwrap(), Some(1));
        let _ = fs::remove_dir_all(&root);
    }
}
