//! Analytic V100 epoch-time model — the stand-in for the paper's
//! "TF FullSoftmax, V100" column (see DESIGN.md's substitution table).
//!
//! We have no GPU in this environment, so the V100 number is *modeled*, not
//! measured: dense training FLOPs divided by an effective sustained
//! throughput, plus a per-batch dispatch overhead. The constants are
//! calibrated to public V100 characteristics (15.7 TFLOP/s fp32 peak;
//! extreme-classification training sustains a modest fraction of peak
//! because the dominant op is a tall GEMM with a skinny `hidden` dimension,
//! and input pipelines/host sync add per-step latency). Every harness that
//! prints a modeled number labels it `model:` — all CPU-vs-CPU comparisons
//! in the reproduction are measured.

/// Analytic device model for dense full-softmax training throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Device name used in reports.
    pub name: &'static str,
    /// Sustained fp32 throughput on this workload, in FLOP/s.
    pub effective_flops: f64,
    /// Fixed overhead per training step (kernel launches, host sync,
    /// input pipeline), in seconds.
    pub per_batch_overhead: f64,
}

impl DeviceModel {
    /// An NVIDIA V100 under TensorFlow on a tall-GEMM extreme-classification
    /// workload: ~25% of the 15.7 TFLOP/s fp32 peak sustained, ~300 µs per
    /// step of launch/sync/input overhead.
    pub fn v100() -> Self {
        DeviceModel {
            name: "V100 (modeled)",
            effective_flops: 4.0e12,
            per_batch_overhead: 300e-6,
        }
    }

    /// Training FLOPs for one epoch of a dense model: the standard
    /// `6 · parameters · samples` estimate (2 forward + 4 backward/update
    /// FLOPs per parameter per sample).
    pub fn training_flops(parameters: u64, samples: usize) -> f64 {
        6.0 * parameters as f64 * samples as f64
    }

    /// Modeled wall-clock seconds for one dense training epoch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn epoch_seconds(&self, parameters: u64, samples: usize, batch_size: usize) -> f64 {
        assert!(batch_size > 0, "DeviceModel: batch_size must be positive");
        let batches = samples.div_ceil(batch_size) as f64;
        Self::training_flops(parameters, samples) / self.effective_flops
            + batches * self.per_batch_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_formula() {
        assert_eq!(DeviceModel::training_flops(1000, 10), 60_000.0);
    }

    #[test]
    fn epoch_seconds_scale_linearly_in_samples() {
        let m = DeviceModel::v100();
        let t1 = m.epoch_seconds(100_000_000, 10_000, 1000);
        let t2 = m.epoch_seconds(100_000_000, 20_000, 1000);
        assert!((t2 / t1 - 2.0).abs() < 0.05, "{t1} vs {t2}");
    }

    #[test]
    fn paper_scale_sanity() {
        // Amazon-670K: ~103M params, 490K samples, batch 1024. The paper's
        // V100 epoch time is on the order of hundreds of seconds; the model
        // should land in that order of magnitude.
        let m = DeviceModel::v100();
        let t = m.epoch_seconds(103_000_000, 490_449, 1024);
        assert!((20.0..2000.0).contains(&t), "modeled epoch {t}s");
    }

    #[test]
    fn overhead_dominates_tiny_batches() {
        let m = DeviceModel::v100();
        let coarse = m.epoch_seconds(1_000_000, 10_000, 1000);
        let fine = m.epoch_seconds(1_000_000, 10_000, 10);
        assert!(fine > coarse, "more batches must cost more overhead");
    }
}
