//! Named configurations matching the paper's §5 method lineup, so every
//! harness/bench refers to the same objects:
//!
//! * **Optimized SLIDE** — coalesced memory, SIMD auto, fp32 or bf16,
//! * **Naive SLIDE** — the original implementation's profile: fragmented
//!   memory and scalar kernels,
//! * CLX/CPX-style variants — bf16 off/on (the only per-machine difference
//!   our single-host reproduction can express besides thread count).

use slide_core::{NetworkConfig, Precision};
use slide_simd::{SimdLevel, SimdPolicy};

/// The method lineup of Figure 6 / Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// TensorFlow full-softmax stand-in on the V100 device model.
    TfV100,
    /// TensorFlow full-softmax stand-in on this CPU.
    TfCpu,
    /// Original SLIDE: fragmented memory, scalar kernels, fp32.
    NaiveSlide,
    /// Optimized SLIDE without bf16 (the paper's CLX configuration).
    OptimizedSlideClx,
    /// Optimized SLIDE with bf16 activations+weights (the CPX configuration).
    OptimizedSlideCpx,
}

impl Method {
    /// Display name matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Method::TfV100 => "TF FullSoftmax, V100 (modeled)",
            Method::TfCpu => "TF FullSoftmax, CPU",
            Method::NaiveSlide => "Naive SLIDE",
            Method::OptimizedSlideClx => "Optimized SLIDE (CLX-like: AVX-512, fp32)",
            Method::OptimizedSlideCpx => "Optimized SLIDE (CPX-like: AVX-512 + BF16)",
        }
    }

    /// All methods in the paper's presentation order.
    pub fn all() -> [Method; 5] {
        [
            Method::TfV100,
            Method::TfCpu,
            Method::NaiveSlide,
            Method::OptimizedSlideClx,
            Method::OptimizedSlideCpx,
        ]
    }
}

/// Rewrite a network config into the **Naive SLIDE** profile (fragmented
/// data + parameters, fp32) and return the SIMD policy it must run under
/// (scalar — the original SLIDE had no explicit vectorization).
pub fn naive_slide(config: &mut NetworkConfig) -> SimdPolicy {
    config.memory.coalesced_params = false;
    config.memory.coalesced_data = false;
    config.precision = Precision::Fp32;
    SimdPolicy::Force(SimdLevel::Scalar)
}

/// Rewrite a network config into the **Optimized SLIDE (CLX)** profile:
/// coalesced memory, fp32 (CLX has AVX-512 but no bf16).
pub fn optimized_slide_clx(config: &mut NetworkConfig) -> SimdPolicy {
    config.memory.coalesced_params = true;
    config.memory.coalesced_data = true;
    config.precision = Precision::Fp32;
    SimdPolicy::Auto
}

/// Rewrite a network config into the **Optimized SLIDE (CPX)** profile:
/// coalesced memory, bf16 weights + activations.
pub fn optimized_slide_cpx(config: &mut NetworkConfig) -> SimdPolicy {
    config.memory.coalesced_params = true;
    config.memory.coalesced_data = true;
    config.precision = Precision::Bf16Both;
    SimdPolicy::Auto
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_produce_valid_configs() {
        for f in [naive_slide, optimized_slide_clx, optimized_slide_cpx] {
            let mut cfg = NetworkConfig::standard(100, 16, 50);
            let _policy = f(&mut cfg);
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn naive_is_fragmented_and_scalar() {
        let mut cfg = NetworkConfig::standard(100, 16, 50);
        let policy = naive_slide(&mut cfg);
        assert!(!cfg.memory.coalesced_params);
        assert!(!cfg.memory.coalesced_data);
        assert_eq!(policy, SimdPolicy::Force(SimdLevel::Scalar));
    }

    #[test]
    fn cpx_uses_bf16_clx_does_not() {
        let mut clx = NetworkConfig::standard(100, 16, 50);
        let mut cpx = NetworkConfig::standard(100, 16, 50);
        optimized_slide_clx(&mut clx);
        optimized_slide_cpx(&mut cpx);
        assert_eq!(clx.precision, Precision::Fp32);
        assert_eq!(cpx.precision, Precision::Bf16Both);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Method::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
