//! Baselines for the SLIDE reproduction — the comparison points of §5:
//!
//! * [`DenseBaseline`] — a dense full-softmax trainer (the "TF FullSoftmax"
//!   CPU stand-in) sharing SLIDE's SIMD substrate so the measured gap
//!   isolates the LSH-sampling algorithm,
//! * [`DeviceModel`] — the analytic V100 epoch-time model (the only
//!   *modeled* number in the reproduction; everything CPU-side is measured),
//! * [`Method`] and the `naive_slide` / `optimized_slide_*` presets — the
//!   named configurations of Figure 6 / Table 2.
//!
//! # Examples
//!
//! ```
//! use slide_baseline::{DeviceModel, Method};
//!
//! let v100 = DeviceModel::v100();
//! let secs = v100.epoch_seconds(103_000_000, 490_449, 1024);
//! assert!(secs > 0.0);
//! assert_eq!(Method::all().len(), 5);
//! ```

mod dense;
mod device_model;
mod presets;
mod sampled;

pub use dense::{DenseBaseline, DenseConfig, DENSE_EVAL_MODE};
pub use device_model::DeviceModel;
pub use presets::{naive_slide, optimized_slide_clx, optimized_slide_cpx, Method};
pub use sampled::{SampledSoftmaxBaseline, SampledSoftmaxConfig};
