//! Uniform sampled-softmax baseline (extension beyond the paper's lineup).
//!
//! SLIDE's bet is that *adaptive* LSH sampling — retrieving neurons whose
//! weights already align with the input — beats *uniform* negative sampling
//! (Mikolov-style sampled softmax) at the same active-set size. This trainer
//! is SLIDE with the hash tables ripped out: the active set is the labels
//! plus uniformly drawn negatives. It shares every other component (layers,
//! HOGWILD pool, sparse ADAM), so the comparison isolates exactly the
//! sampling strategy.

use slide_core::{
    relu_backward_mask, softmax_into, LayerParams, Precision, SparseInputLayer, ThreadPool,
};
use slide_data::{precision_at_k, top_k_indices, Dataset, EpochBatches, MeanMetric};
use slide_hash::mix::{mix3, reduce};
use slide_mem::ParamLayout;
use slide_simd::{AdamStep, KernelSet, RowGather};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration for the sampled-softmax baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledSoftmaxConfig {
    /// Sparse input dimensionality.
    pub input_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output dimensionality.
    pub output_dim: usize,
    /// Uniform negatives drawn per sample (the active-set budget; compare
    /// with SLIDE's retrieved-set size).
    pub negatives: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// ADAM base learning rate.
    pub learning_rate: f32,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Seed for weights and negative draws.
    pub seed: u64,
}

impl Default for SampledSoftmaxConfig {
    fn default() -> Self {
        SampledSoftmaxConfig {
            input_dim: 1024,
            hidden: 128,
            output_dim: 1024,
            negatives: 128,
            batch_size: 256,
            learning_rate: 1e-3,
            threads: 0,
            seed: 0x5A3D,
        }
    }
}

struct Scratch {
    h: Vec<f32>,
    dh: Vec<f32>,
    active: Vec<u32>,
    seen: Vec<u32>,
    seen_gen: u32,
    logits: Vec<f32>,
    probs: Vec<f32>,
    gather: RowGather,
    touched_in: Vec<u32>,
    touched_out: Vec<u32>,
    loss: MeanMetric,
    metric: MeanMetric,
}

#[derive(Clone, Copy)]
struct Slots {
    base: *mut Scratch,
    len: usize,
}
unsafe impl Send for Slots {}
unsafe impl Sync for Slots {}

impl Slots {
    /// # Safety: one thread per worker index at a time.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut Scratch {
        assert!(i < self.len);
        &mut *self.base.add(i)
    }
}

/// SLIDE-minus-LSH: sampled softmax with uniform negatives.
///
/// # Examples
///
/// ```
/// use slide_baseline::{SampledSoftmaxBaseline, SampledSoftmaxConfig};
/// use slide_data::{generate_synthetic, SynthConfig};
///
/// let data = generate_synthetic(&SynthConfig {
///     feature_dim: 64, label_dim: 32, n_train: 128, n_test: 32, ..Default::default()
/// });
/// let mut b = SampledSoftmaxBaseline::new(SampledSoftmaxConfig {
///     input_dim: 64, hidden: 8, output_dim: 32, negatives: 8, batch_size: 32, threads: 1,
///     ..Default::default()
/// });
/// let (secs, loss) = b.train_epoch(&data.train, 0);
/// assert!(secs > 0.0 && loss.is_finite());
/// ```
pub struct SampledSoftmaxBaseline {
    config: SampledSoftmaxConfig,
    input: SparseInputLayer,
    output: LayerParams,
    pool: ThreadPool,
    scratches: Vec<Scratch>,
    touched_in: Vec<u32>,
    touched_out: Vec<u32>,
    adam_t: u64,
    batch_stamp: u32,
    total_train_seconds: f64,
}

impl SampledSoftmaxBaseline {
    /// Build the baseline (same initialization scheme as SLIDE).
    pub fn new(config: SampledSoftmaxConfig) -> Self {
        let threads = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let input = SparseInputLayer::new(
            config.input_dim,
            config.hidden,
            ParamLayout::Coalesced,
            Precision::Fp32,
            config.seed,
        );
        let output = LayerParams::new(
            config.output_dim,
            config.hidden,
            config.output_dim,
            ParamLayout::Coalesced,
            Precision::Fp32,
            config.seed ^ 0x0707,
        );
        let scratches = (0..threads)
            .map(|_| Scratch {
                h: vec![0.0; config.hidden],
                dh: vec![0.0; config.hidden],
                active: Vec::with_capacity(config.negatives + 8),
                seen: vec![0; config.output_dim],
                seen_gen: 0,
                logits: Vec::with_capacity(config.negatives + 8),
                probs: Vec::with_capacity(config.negatives + 8),
                gather: RowGather::default(),
                touched_in: Vec::new(),
                touched_out: Vec::new(),
                loss: MeanMetric::new(),
                metric: MeanMetric::new(),
            })
            .collect();
        SampledSoftmaxBaseline {
            config,
            input,
            output,
            pool: ThreadPool::new(threads),
            scratches,
            touched_in: Vec::new(),
            touched_out: Vec::new(),
            adam_t: 0,
            batch_stamp: 0,
            total_train_seconds: 0.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SampledSoftmaxConfig {
        &self.config
    }

    /// Cumulative training seconds so far.
    pub fn total_train_seconds(&self) -> f64 {
        self.total_train_seconds
    }

    /// Train one shuffled epoch; returns `(seconds, mean_loss)`.
    pub fn train_epoch(&mut self, data: &Dataset, epoch: u64) -> (f64, f64) {
        assert_eq!(data.feature_dim(), self.config.input_dim);
        assert_eq!(data.label_dim(), self.config.output_dim);
        for s in &mut self.scratches {
            s.loss = MeanMetric::new();
        }
        let start = Instant::now();
        let plan = EpochBatches::new(data.len(), self.config.batch_size, epoch, 0x7EA1);
        for batch in plan.iter() {
            self.train_batch(data, batch);
        }
        let seconds = start.elapsed().as_secs_f64();
        self.total_train_seconds += seconds;
        let mut loss = MeanMetric::new();
        for s in &self.scratches {
            loss.merge(s.loss);
        }
        (seconds, loss.mean())
    }

    fn train_batch(&mut self, data: &Dataset, indices: &[u32]) {
        if indices.is_empty() {
            return;
        }
        self.adam_t += 1;
        self.batch_stamp = self.batch_stamp.wrapping_add(1).max(1);
        let stamp = self.batch_stamp;
        let scale = 1.0 / indices.len() as f32;
        let slots = Slots {
            base: self.scratches.as_mut_ptr(),
            len: self.scratches.len(),
        };
        let input = &self.input;
        let output = &self.output;
        let n_out = self.config.output_dim as u64;
        let negatives = self.config.negatives;
        let seed = self.config.seed;
        let salt_base = self.adam_t << 20;
        let ks = KernelSet::resolve();
        let cursor = AtomicUsize::new(0);
        self.pool.run(&|worker| {
            // SAFETY: distinct worker ids.
            let scratch = unsafe { slots.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= indices.len() {
                    break;
                }
                let idx = indices[i] as usize;
                let x = data.features(idx);
                let labels = data.labels(idx);
                if labels.is_empty() {
                    continue;
                }
                input.forward(x, &mut scratch.h, &ks);

                // Active set: labels + uniform negatives (deduped).
                scratch.seen_gen = scratch.seen_gen.wrapping_add(1).max(1);
                if scratch.seen_gen == 1 {
                    scratch.seen.fill(0);
                }
                scratch.active.clear();
                for &l in labels {
                    if scratch.seen[l as usize] != scratch.seen_gen {
                        scratch.seen[l as usize] = scratch.seen_gen;
                        scratch.active.push(l);
                    }
                }
                let mut attempt = 0u64;
                while scratch.active.len() < labels.len() + negatives {
                    let r =
                        reduce(mix3(seed, salt_base | i as u64, attempt), n_out as usize) as u32;
                    attempt += 1;
                    if scratch.seen[r as usize] != scratch.seen_gen {
                        scratch.seen[r as usize] = scratch.seen_gen;
                        scratch.active.push(r);
                    }
                }

                scratch.logits.clear();
                scratch.logits.resize(scratch.active.len(), 0.0);
                // SAFETY: HOGWILD contract; fused multi-row scoring over
                // the sampled active set.
                unsafe {
                    output.score_rows_into(
                        &ks,
                        &scratch.active,
                        &scratch.h,
                        &mut scratch.gather,
                        &mut scratch.logits,
                    )
                };
                let log_z = softmax_into(&scratch.logits, &mut scratch.probs);
                let n_labels = labels.len().min(scratch.active.len());
                let t = 1.0 / n_labels as f32;
                let mut loss = 0.0;
                for j in 0..n_labels {
                    loss += t * (log_z - scratch.logits[j]);
                }
                scratch.loss.push(loss);

                scratch.dh.fill(0.0);
                for j in 0..n_labels {
                    scratch.probs[j] -= t;
                }
                // SAFETY: HOGWILD contract; the active list is
                // duplicate-free. One fused pass per row computes both the
                // hidden gradient and the weight-gradient accumulation.
                unsafe {
                    output.backward_rows_fused(
                        &ks,
                        &scratch.active,
                        &scratch.probs,
                        scale,
                        &scratch.h,
                        &mut scratch.dh,
                        &mut scratch.gather,
                    )
                };
                for (j, &r) in scratch.active.iter().enumerate() {
                    // SAFETY: HOGWILD contract.
                    unsafe { output.grad_bias_add(r as usize, scratch.probs[j] * scale) };
                    output.mark_active(r as usize, stamp, &mut scratch.touched_out);
                }
                relu_backward_mask(&scratch.h, &mut scratch.dh);
                let mut touched = std::mem::take(&mut scratch.touched_in);
                input.backward(x, &scratch.dh, scale, stamp, &mut touched, &ks);
                scratch.touched_in = touched;
            }
        });

        let step =
            AdamStep::bias_corrected(self.config.learning_rate, 0.9, 0.999, 1e-8, self.adam_t);
        self.touched_out.clear();
        self.touched_in.clear();
        for s in &mut self.scratches {
            self.touched_out.append(&mut s.touched_out);
            self.touched_in.append(&mut s.touched_in);
        }
        let rows_out = &self.touched_out;
        let out_params = &self.output;
        self.pool.parallel_for(rows_out.len(), 32, &|i| {
            let r = rows_out[i] as usize;
            // SAFETY: duplicate-free row list.
            unsafe {
                out_params.adam_row(r, step);
                out_params.adam_bias_at(r, step);
            }
        });
        let rows_in = &self.touched_in;
        let in_params = self.input.params();
        self.pool.parallel_for(rows_in.len(), 32, &|i| {
            // SAFETY: duplicate-free row list.
            unsafe { in_params.adam_row(rows_in[i] as usize, step) };
        });
        // SAFETY: workers parked.
        unsafe { in_params.adam_bias_full(step) };
    }

    /// Evaluate P@k with exact (full) scoring.
    pub fn evaluate(&mut self, data: &Dataset, k: usize, max_samples: Option<usize>) -> f64 {
        let n = max_samples.unwrap_or(usize::MAX).min(data.len());
        if n == 0 {
            return 0.0;
        }
        for s in &mut self.scratches {
            s.metric = MeanMetric::new();
        }
        let slots = Slots {
            base: self.scratches.as_mut_ptr(),
            len: self.scratches.len(),
        };
        let input = &self.input;
        let output = &self.output;
        let n_out = self.config.output_dim;
        let ks = KernelSet::resolve();
        let cursor = AtomicUsize::new(0);
        self.pool.run(&|worker| {
            // SAFETY: distinct worker ids.
            let scratch = unsafe { slots.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let labels = data.labels(i);
                if labels.is_empty() {
                    continue;
                }
                input.forward(data.features(i), &mut scratch.h, &ks);
                scratch.logits.clear();
                scratch.logits.resize(n_out, 0.0);
                // SAFETY: HOGWILD contract.
                unsafe {
                    output.score_all_into(&ks, &scratch.h, &mut scratch.gather, &mut scratch.logits)
                };
                let topk = top_k_indices(&scratch.logits, k);
                let p = if topk.len() < k {
                    0.0
                } else {
                    precision_at_k(&topk, labels, k)
                };
                scratch.metric.push(p);
            }
        });
        let mut metric = MeanMetric::new();
        for s in &self.scratches {
            metric.merge(s.metric);
        }
        metric.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_data::{generate_synthetic, SynthConfig};

    fn tiny() -> slide_data::SynthDataset {
        generate_synthetic(&SynthConfig {
            feature_dim: 128,
            label_dim: 64,
            n_train: 600,
            n_test: 150,
            proto_nnz: 10,
            keep_fraction: 0.8,
            noise_nnz: 2,
            labels_per_sample: 1,
            zipf_exponent: 0.4,
            seed: 5,
        })
    }

    #[test]
    fn learns_synthetic_task() {
        let data = tiny();
        let mut b = SampledSoftmaxBaseline::new(SampledSoftmaxConfig {
            input_dim: 128,
            hidden: 16,
            output_dim: 64,
            negatives: 16,
            batch_size: 64,
            learning_rate: 3e-3,
            threads: 2,
            seed: 1,
        });
        let before = b.evaluate(&data.test, 1, None);
        for epoch in 0..10 {
            b.train_epoch(&data.train, epoch);
        }
        let after = b.evaluate(&data.test, 1, None);
        assert!(
            after > before + 0.2,
            "sampled softmax: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn active_set_is_labels_plus_negatives() {
        // Indirect check: with negatives = 0... the loop still requires
        // labels; with small negatives the loss is finite and training works.
        let data = tiny();
        let mut b = SampledSoftmaxBaseline::new(SampledSoftmaxConfig {
            input_dim: 128,
            hidden: 8,
            output_dim: 64,
            negatives: 4,
            batch_size: 32,
            threads: 1,
            ..Default::default()
        });
        let (_, loss) = b.train_epoch(&data.train, 0);
        assert!(loss.is_finite() && loss > 0.0);
        assert!(b.total_train_seconds() > 0.0);
    }
}
