//! Dense full-softmax trainer — the TensorFlow-CPU baseline stand-in.
//!
//! The paper's "TF FullSoftmax" baselines (§5) train the identical
//! architecture but compute the *entire* output layer every sample: full
//! logits, full softmax, and a full `output_dim x hidden` gradient update.
//! This module reproduces that cost profile with the same SIMD substrate
//! SLIDE uses, so the measured SLIDE-vs-dense gap isolates the algorithmic
//! difference (LSH sampling) rather than framework overheads.

use slide_core::{
    relu_backward_mask, softmax_into, EvalMode, LayerParams, Precision, SparseInputLayer,
    ThreadPool,
};
use slide_data::{precision_at_k, top_k_indices, Dataset, EpochBatches, MeanMetric};
use slide_mem::ParamLayout;
use slide_simd::{AdamStep, KernelSet, RowGather};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Configuration for the dense baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseConfig {
    /// Sparse input dimensionality.
    pub input_dim: usize,
    /// Hidden width (single hidden layer, like the paper's architecture).
    pub hidden: usize,
    /// Output dimensionality.
    pub output_dim: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// ADAM base learning rate.
    pub learning_rate: f32,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for DenseConfig {
    fn default() -> Self {
        DenseConfig {
            input_dim: 1024,
            hidden: 128,
            output_dim: 1024,
            batch_size: 256,
            learning_rate: 1e-4,
            threads: 0,
            seed: 0xDE25E,
        }
    }
}

struct DenseScratch {
    h: Vec<f32>,
    dh: Vec<f32>,
    logits: Vec<f32>,
    probs: Vec<f32>,
    touched: Vec<u32>,
    gather: RowGather,
    loss: MeanMetric,
    metric: MeanMetric,
}

#[derive(Clone, Copy)]
struct Slots {
    base: *mut DenseScratch,
    len: usize,
}
unsafe impl Send for Slots {}
unsafe impl Sync for Slots {}

impl Slots {
    /// # Safety
    ///
    /// Each worker id must be used by one thread at a time.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut DenseScratch {
        assert!(i < self.len);
        &mut *self.base.add(i)
    }
}

/// The dense full-softmax baseline trainer.
///
/// # Examples
///
/// ```
/// use slide_baseline::{DenseBaseline, DenseConfig};
/// use slide_data::{generate_synthetic, SynthConfig};
///
/// let data = generate_synthetic(&SynthConfig {
///     feature_dim: 64, label_dim: 16, n_train: 128, n_test: 32, ..Default::default()
/// });
/// let mut baseline = DenseBaseline::new(DenseConfig {
///     input_dim: 64, hidden: 8, output_dim: 16, batch_size: 32, threads: 1,
///     ..Default::default()
/// });
/// let stats = baseline.train_epoch(&data.train, 0);
/// assert!(stats.0 > 0.0 && stats.1.is_finite());
/// ```
pub struct DenseBaseline {
    config: DenseConfig,
    input: SparseInputLayer,
    output: LayerParams,
    pool: ThreadPool,
    scratches: Vec<DenseScratch>,
    touched_in: Vec<u32>,
    adam_t: u64,
    batch_stamp: u32,
    total_train_seconds: f64,
}

impl DenseBaseline {
    /// Build the baseline network (same initialization scheme as SLIDE).
    pub fn new(config: DenseConfig) -> Self {
        let threads = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let input = SparseInputLayer::new(
            config.input_dim,
            config.hidden,
            ParamLayout::Coalesced,
            Precision::Fp32,
            config.seed,
        );
        let output = LayerParams::new(
            config.output_dim,
            config.hidden,
            config.output_dim,
            ParamLayout::Coalesced,
            Precision::Fp32,
            config.seed ^ 0x0707,
        );
        let scratches = (0..threads)
            .map(|_| DenseScratch {
                h: vec![0.0; config.hidden],
                dh: vec![0.0; config.hidden],
                logits: Vec::with_capacity(config.output_dim),
                probs: Vec::with_capacity(config.output_dim),
                touched: Vec::new(),
                gather: RowGather::default(),
                loss: MeanMetric::new(),
                metric: MeanMetric::new(),
            })
            .collect();
        DenseBaseline {
            config,
            input,
            output,
            pool: ThreadPool::new(threads),
            scratches,
            touched_in: Vec::new(),
            adam_t: 0,
            batch_stamp: 0,
            total_train_seconds: 0.0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DenseConfig {
        &self.config
    }

    /// Total learnable parameters.
    pub fn num_parameters(&self) -> u64 {
        self.input.params().num_parameters() + self.output.num_parameters()
    }

    /// Cumulative training seconds so far.
    pub fn total_train_seconds(&self) -> f64 {
        self.total_train_seconds
    }

    /// Train one shuffled epoch; returns `(seconds, mean_loss)`.
    pub fn train_epoch(&mut self, data: &Dataset, epoch: u64) -> (f64, f64) {
        assert_eq!(data.feature_dim(), self.config.input_dim);
        assert_eq!(data.label_dim(), self.config.output_dim);
        for s in &mut self.scratches {
            s.loss = MeanMetric::new();
        }
        let start = Instant::now();
        let plan = EpochBatches::new(data.len(), self.config.batch_size, epoch, 0x7EA1);
        for batch in plan.iter() {
            self.train_batch(data, batch);
        }
        let seconds = start.elapsed().as_secs_f64();
        self.total_train_seconds += seconds;
        let mut loss = MeanMetric::new();
        for s in &self.scratches {
            loss.merge(s.loss);
        }
        (seconds, loss.mean())
    }

    fn train_batch(&mut self, data: &Dataset, indices: &[u32]) {
        if indices.is_empty() {
            return;
        }
        self.adam_t += 1;
        self.batch_stamp = self.batch_stamp.wrapping_add(1).max(1);
        let stamp = self.batch_stamp;
        let scale = 1.0 / indices.len() as f32;
        let slots = Slots {
            base: self.scratches.as_mut_ptr(),
            len: self.scratches.len(),
        };
        let input = &self.input;
        let output = &self.output;
        let n_out = self.config.output_dim;
        let ks = KernelSet::resolve();
        let cursor = AtomicUsize::new(0);
        self.pool.run(&|worker| {
            // SAFETY: distinct worker ids.
            let scratch = unsafe { slots.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= indices.len() {
                    break;
                }
                let idx = indices[i] as usize;
                let x = data.features(idx);
                let labels = data.labels(idx);
                if labels.is_empty() {
                    continue;
                }
                input.forward(x, &mut scratch.h, &ks);

                // Full logits + softmax (the dense cost the paper avoids),
                // as one blocked gemv over the output arena.
                scratch.logits.clear();
                scratch.logits.resize(n_out, 0.0);
                // SAFETY: HOGWILD contract.
                unsafe {
                    output.score_all_into(&ks, &scratch.h, &mut scratch.gather, &mut scratch.logits)
                };
                let log_z = softmax_into(&scratch.logits, &mut scratch.probs);
                let t = 1.0 / labels.len() as f32;
                let mut loss = 0.0;
                for &l in labels {
                    loss += t * (log_z - scratch.logits[l as usize]);
                }
                scratch.loss.push(loss);

                // Full dense backward: softmax deltas in place, then the
                // fused multi-row pass (grad + dh per row read) over every
                // output row.
                for &l in labels {
                    scratch.probs[l as usize] -= t;
                }
                scratch.dh.fill(0.0);
                let mut all_rows = std::mem::take(&mut scratch.gather.rows);
                if all_rows.len() != n_out {
                    all_rows.clear();
                    all_rows.extend(0..n_out as u32);
                }
                // SAFETY: HOGWILD contract; 0..n_out is duplicate-free.
                unsafe {
                    output.backward_rows_fused(
                        &ks,
                        &all_rows,
                        &scratch.probs,
                        scale,
                        &scratch.h,
                        &mut scratch.dh,
                        &mut scratch.gather,
                    )
                };
                scratch.gather.rows = all_rows;
                for (r, &delta) in scratch.probs.iter().enumerate() {
                    // SAFETY: HOGWILD contract.
                    unsafe { output.grad_bias_add(r, delta * scale) };
                }
                relu_backward_mask(&scratch.h, &mut scratch.dh);
                let mut touched = std::mem::take(&mut scratch.touched);
                input.backward(x, &scratch.dh, scale, stamp, &mut touched, &ks);
                scratch.touched = touched;
            }
        });

        let step =
            AdamStep::bias_corrected(self.config.learning_rate, 0.9, 0.999, 1e-8, self.adam_t);
        // Full output update: every row, flat arena sweep in parallel chunks.
        let total = n_out * self.config.hidden;
        let chunk = 16 * 1024;
        let n_chunks = total.div_ceil(chunk);
        self.pool.parallel_for(n_chunks, 1, &|c| {
            let start = c * chunk;
            let len = chunk.min(total - start);
            // SAFETY: disjoint flat spans.
            unsafe { output.adam_flat_span(start, len, step) };
        });
        // SAFETY: workers parked.
        unsafe { output.adam_bias_full(step) };

        // Input layer: sparse rows seen this batch.
        self.touched_in.clear();
        for s in &mut self.scratches {
            self.touched_in.append(&mut s.touched);
        }
        let rows_in = &self.touched_in;
        let in_params = self.input.params();
        self.pool.parallel_for(rows_in.len(), 32, &|i| {
            // SAFETY: duplicate-free list, distinct rows.
            unsafe { in_params.adam_row(rows_in[i] as usize, step) };
        });
        // SAFETY: workers parked.
        unsafe { in_params.adam_bias_full(step) };
    }

    /// Evaluate P@k over (up to `max_samples` of) a dataset.
    pub fn evaluate(&mut self, data: &Dataset, k: usize, max_samples: Option<usize>) -> f64 {
        let n = max_samples.unwrap_or(usize::MAX).min(data.len());
        if n == 0 {
            return 0.0;
        }
        for s in &mut self.scratches {
            s.metric = MeanMetric::new();
        }
        let slots = Slots {
            base: self.scratches.as_mut_ptr(),
            len: self.scratches.len(),
        };
        let input = &self.input;
        let output = &self.output;
        let n_out = self.config.output_dim;
        let ks = KernelSet::resolve();
        let cursor = AtomicUsize::new(0);
        self.pool.run(&|worker| {
            // SAFETY: distinct worker ids.
            let scratch = unsafe { slots.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let labels = data.labels(i);
                if labels.is_empty() {
                    continue;
                }
                input.forward(data.features(i), &mut scratch.h, &ks);
                scratch.logits.clear();
                scratch.logits.resize(n_out, 0.0);
                // SAFETY: HOGWILD contract.
                unsafe {
                    output.score_all_into(&ks, &scratch.h, &mut scratch.gather, &mut scratch.logits)
                };
                let topk = top_k_indices(&scratch.logits, k);
                let p = if topk.len() < k {
                    0.0
                } else {
                    precision_at_k(&topk, labels, k)
                };
                scratch.metric.push(p);
            }
        });
        let mut metric = MeanMetric::new();
        for s in &self.scratches {
            metric.merge(s.metric);
        }
        metric.mean()
    }

    /// Train with per-epoch evaluation, returning a Figure 6-style curve.
    pub fn run_convergence(
        &mut self,
        train: &Dataset,
        test: &Dataset,
        epochs: u32,
        eval_samples: Option<usize>,
    ) -> slide_core::ConvergenceLog {
        let mut log = slide_core::ConvergenceLog::default();
        let mut elapsed = 0.0;
        for epoch in 0..epochs {
            let (seconds, mean_loss) = self.train_epoch(train, epoch as u64);
            elapsed += seconds;
            let p1 = self.evaluate(test, 1, eval_samples);
            log.points.push(slide_core::ConvergencePoint {
                epoch: epoch + 1,
                elapsed_seconds: elapsed,
                epoch_seconds: seconds,
                p_at_1: p1,
                mean_loss,
            });
        }
        log
    }
}

/// Marker so callers can speak about baseline eval symmetrically with
/// [`slide_core::EvalMode`]; the dense baseline is always exact.
pub const DENSE_EVAL_MODE: EvalMode = EvalMode::Exact;

#[cfg(test)]
mod tests {
    use super::*;
    use slide_data::{generate_synthetic, SynthConfig};

    fn tiny() -> slide_data::SynthDataset {
        generate_synthetic(&SynthConfig {
            feature_dim: 128,
            label_dim: 32,
            n_train: 400,
            n_test: 100,
            proto_nnz: 10,
            keep_fraction: 0.8,
            noise_nnz: 2,
            labels_per_sample: 1,
            zipf_exponent: 0.4,
            seed: 5,
        })
    }

    fn baseline(threads: usize) -> DenseBaseline {
        DenseBaseline::new(DenseConfig {
            input_dim: 128,
            hidden: 16,
            output_dim: 32,
            batch_size: 64,
            learning_rate: 2e-3,
            threads,
            seed: 1,
        })
    }

    #[test]
    fn learns_synthetic_task() {
        let data = tiny();
        let mut b = baseline(2);
        let before = b.evaluate(&data.test, 1, None);
        for epoch in 0..8 {
            b.train_epoch(&data.train, epoch);
        }
        let after = b.evaluate(&data.test, 1, None);
        assert!(
            after > before + 0.25,
            "dense baseline: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn parameter_count_matches_formula() {
        let b = baseline(1);
        assert_eq!(
            b.num_parameters(),
            slide_data::model_parameters(128, 16, 32)
        );
    }

    #[test]
    fn convergence_log_shape() {
        let data = tiny();
        let mut b = baseline(2);
        let log = b.run_convergence(&data.train, &data.test, 2, Some(50));
        assert_eq!(log.points.len(), 2);
        assert!(log.points[1].elapsed_seconds >= log.points[0].elapsed_seconds);
        assert!(b.total_train_seconds() > 0.0);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = tiny();
        let mut b = baseline(1);
        let (_, first) = b.train_epoch(&data.train, 0);
        let mut last = first;
        for epoch in 1..10 {
            let (_, l) = b.train_epoch(&data.train, epoch);
            last = l;
        }
        assert!(last < first * 0.9, "loss {first:.4} -> {last:.4}");
    }
}
