//! Property tests for the SLIDE engine: scratch-structure invariants,
//! softmax contracts, training-side-effect invariants, and checkpoint
//! robustness under corruption (failure injection).

use proptest::prelude::*;
use slide_core::{
    load_checkpoint, save_checkpoint, softmax_into, LshConfig, Network, NetworkConfig, StampSet,
};
use slide_mem::SparseVecRef;
use std::collections::HashSet;

fn tiny_network(seed: u64) -> Network {
    let mut cfg = NetworkConfig::standard(64, 12, 40);
    cfg.lsh = LshConfig {
        tables: 8,
        key_bits: 4,
        min_active: 12,
        ..Default::default()
    };
    cfg.seed = seed;
    Network::new(cfg).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stamp_set_matches_hashset_model(
        ops in prop::collection::vec((0u32..50, any::<bool>()), 0..200)
    ) {
        let mut stamps = StampSet::new(50);
        stamps.begin();
        let mut model: HashSet<u32> = HashSet::new();
        for (id, reset) in ops {
            if reset {
                stamps.begin();
                model.clear();
            } else {
                let fresh_stamp = stamps.insert(id);
                let fresh_model = model.insert(id);
                prop_assert_eq!(fresh_stamp, fresh_model, "id {}", id);
                prop_assert!(stamps.contains(id));
            }
        }
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-30.0f32..30.0, 1..64)) {
        let mut probs = Vec::new();
        let log_z = softmax_into(&logits, &mut probs);
        prop_assert_eq!(probs.len(), logits.len());
        let sum: f32 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {}", sum);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0001).contains(&p)));
        prop_assert!(log_z.is_finite());
        // Argmax of probs equals argmax of logits.
        let max_l = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let max_p = probs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let arg_l = logits.iter().position(|&v| v == max_l).unwrap();
        prop_assert!((probs[arg_l] - max_p).abs() < 1e-6);
    }

    #[test]
    fn zero_scale_training_probe_leaves_weights_unchanged(
        seed in any::<u64>(),
        label in 0u32..40,
        nnz in prop::collection::btree_set(0u32..64, 1..8),
    ) {
        // train_sample with scale == 0 must accumulate nothing into any
        // gradient and therefore (before any ADAM step) leave weights
        // bit-identical — the invariant the gradient-check tests rely on.
        let net = tiny_network(seed);
        let indices: Vec<u32> = nnz.into_iter().collect();
        let values: Vec<f32> = indices.iter().map(|&i| (i as f32) * 0.1 + 0.5).collect();
        let x = SparseVecRef::new(&indices, &values);
        let before: Vec<Vec<f32>> = (0..40).map(|r| net.output().params().row_f32(r)).collect();
        let in_before = net.input().params().row_f32(indices[0] as usize);
        let mut scratch = net.make_scratch();
        let loss = net.train_sample(x, &[label], &mut scratch, 0.0, 1, 0);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        for (r, row_before) in before.iter().enumerate() {
            prop_assert_eq!(&net.output().params().row_f32(r), row_before, "row {}", r);
        }
        prop_assert_eq!(net.input().params().row_f32(indices[0] as usize), in_before);
    }

    #[test]
    fn corrupted_checkpoints_error_instead_of_panicking(
        flip_at in any::<prop::sample::Index>(),
        truncate_to in any::<prop::sample::Index>(),
        mode in 0u8..3,
    ) {
        let net = tiny_network(1);
        let mut bytes = Vec::new();
        save_checkpoint(&net, &mut bytes).unwrap();
        match mode {
            0 => {
                // Bit flip somewhere.
                let i = flip_at.index(bytes.len());
                bytes[i] ^= 0x40;
            }
            1 => {
                // Truncation.
                let n = truncate_to.index(bytes.len());
                bytes.truncate(n);
            }
            _ => {
                // Garbage prefix.
                bytes[0] ^= 0xFF;
            }
        }
        let mut target = tiny_network(1);
        // Must never panic; flipped payload bytes may still load (weights
        // are arbitrary f32s), structural damage must error.
        let _ = load_checkpoint(&mut target, &bytes[..]);
    }

    #[test]
    fn prediction_topk_is_sorted_and_unique(
        seed in any::<u64>(),
        k in 1usize..10,
        nnz in prop::collection::btree_set(0u32..64, 1..8),
    ) {
        let net = tiny_network(seed);
        let indices: Vec<u32> = nnz.into_iter().collect();
        let values: Vec<f32> = indices.iter().map(|&i| 1.0 + (i as f32) * 0.01).collect();
        let mut scratch = net.make_scratch();
        let topk = net.predict(SparseVecRef::new(&indices, &values), k, &mut scratch, true, 0);
        prop_assert_eq!(topk.len(), k.min(40));
        let unique: HashSet<_> = topk.iter().collect();
        prop_assert_eq!(unique.len(), topk.len(), "duplicates in top-k");
        prop_assert!(topk.iter().all(|&t| (t as usize) < 40));
    }
}
