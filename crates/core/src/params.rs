//! Per-layer parameter block: weights (f32 or bf16), bias, gradient
//! accumulators, ADAM moments, and batch-activity stamps.
//!
//! This is where the paper's three optimization axes meet:
//!
//! * **memory layout** — weights/gradients/moments live in [`ParamStore`]s
//!   that are either contiguous arenas or per-neuron allocations (§4.1),
//! * **precision** — weights may be stored as bf16 with f32 moments (§4.4),
//! * **vectorized sparse ADAM** — only rows stamped active in the current
//!   batch are updated, each with one fused [`slide_simd::adam_step_f32`]
//!   sweep (§4.3.1), which realizes the paper's "only p² of weights updated".

use crate::config::Precision;
use slide_mem::{HogwildArray, ParamArenaBf16, ParamLayout, ParamStore};
use slide_simd::{AdamStep, KernelSet, RowGather};
use std::sync::atomic::{AtomicU32, Ordering};

/// Weight matrix storage: full-precision or brain-float16.
#[derive(Debug, Clone)]
pub enum WeightStorage {
    /// f32 weights in either memory layout.
    F32(ParamStore),
    /// bf16 weights (always a contiguous arena; see
    /// [`crate::NetworkConfig::validate`]).
    Bf16(ParamArenaBf16),
}

/// One layer's learnable state plus optimizer state.
///
/// `rows x cols` is the *storage* shape: row-major layers store one row per
/// output unit, the column-major sparse-input layer stores one row per input
/// feature (Lemma 1/2 of the paper — the transpose duality that keeps both
/// passes contiguous). `units` is the layer's output width, which owns the
/// bias vector.
#[derive(Debug)]
pub struct LayerParams {
    weights: WeightStorage,
    bias: HogwildArray<f32>,
    grad_w: ParamStore,
    grad_b: HogwildArray<f32>,
    m_w: ParamStore,
    v_w: ParamStore,
    m_b: HogwildArray<f32>,
    v_b: HogwildArray<f32>,
    stamps: Vec<AtomicU32>,
    rows: usize,
    cols: usize,
    units: usize,
}

impl LayerParams {
    /// Allocate and initialize a parameter block.
    ///
    /// Weights are drawn uniformly from `±1/sqrt(cols)` (the standard SLIDE
    /// initialization); biases start at zero.
    pub fn new(
        rows: usize,
        cols: usize,
        units: usize,
        layout: ParamLayout,
        precision: Precision,
        seed: u64,
    ) -> Self {
        let scale = 1.0 / (cols as f32).sqrt();
        let init = |r: usize, c: usize| {
            let h = slide_hash::mix::mix3(seed, r as u64, c as u64);
            ((h >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0) * scale
        };
        let weights = match precision {
            Precision::Bf16Both => {
                let mut arena = ParamArenaBf16::zeroed(rows, cols);
                let flat = arena.flat_mut();
                for r in 0..rows {
                    for c in 0..cols {
                        flat[r * cols + c] = slide_simd::Bf16::from_f32(init(r, c)).to_bits();
                    }
                }
                WeightStorage::Bf16(arena)
            }
            _ => WeightStorage::F32(ParamStore::from_fn(layout, rows, cols, init)),
        };
        LayerParams {
            weights,
            bias: HogwildArray::zeroed(units),
            grad_w: ParamStore::zeroed(layout, rows, cols),
            grad_b: HogwildArray::zeroed(units),
            m_w: ParamStore::zeroed(layout, rows, cols),
            v_w: ParamStore::zeroed(layout, rows, cols),
            m_b: HogwildArray::zeroed(units),
            v_b: HogwildArray::zeroed(units),
            stamps: (0..rows).map(|_| AtomicU32::new(0)).collect(),
            rows,
            cols,
            units,
        }
    }

    /// Storage rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Storage columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Output units (bias width).
    pub fn units(&self) -> usize {
        self.units
    }

    /// Whether weights are stored as bf16.
    pub fn is_bf16(&self) -> bool {
        matches!(self.weights, WeightStorage::Bf16(_))
    }

    /// Learnable parameter count (weights + bias).
    pub fn num_parameters(&self) -> u64 {
        self.rows as u64 * self.cols as u64 + self.units as u64
    }

    /// Bias value of unit `u` (shared read).
    #[inline]
    pub fn bias_at(&self, u: usize) -> f32 {
        self.bias.as_slice()[u]
    }

    /// Read-only view of the bias vector.
    pub fn bias_slice(&self) -> &[f32] {
        self.bias.as_slice()
    }

    /// Copy weight row `r` into an f32 buffer (widening bf16 if needed) —
    /// used by table rebuilds that hash weight vectors.
    pub fn widen_row_into(&self, r: usize, out: &mut [f32]) {
        match &self.weights {
            WeightStorage::F32(store) => out.copy_from_slice(store.row(r)),
            WeightStorage::Bf16(arena) => slide_simd::bf16::bf16_to_f32_slice(arena.row(r), out),
        }
    }

    /// Range-restricted snapshot: copy the gathered weight rows `rows` into
    /// `out` at `stride` elements per row (widening bf16), without ever
    /// materializing the rows in between. `stride >= cols` allows the
    /// cache-line row padding the frozen serving arenas use; padding
    /// elements are left untouched. This is the row-subset sibling of
    /// [`LayerParams::widen_row_into`], added so a sharded serving snapshot
    /// can build each shard's arena directly from the training layer
    /// instead of copying the whole layer first.
    ///
    /// # Panics
    ///
    /// Panics if `stride < self.cols()`, `out` is shorter than
    /// `rows.len() * stride`, or any row id is out of range.
    pub fn widen_rows_into(&self, rows: &[u32], stride: usize, out: &mut [f32]) {
        assert!(
            stride >= self.cols,
            "widen_rows_into: stride {stride} < cols {}",
            self.cols
        );
        assert!(
            out.len() >= rows.len() * stride,
            "widen_rows_into: out holds {} elements, need {}",
            out.len(),
            rows.len() * stride
        );
        for (i, &r) in rows.iter().enumerate() {
            self.widen_row_into(r as usize, &mut out[i * stride..i * stride + self.cols]);
        }
    }

    /// Range-restricted bias snapshot: `out[i] = bias[rows[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows.len()` or any row id is out of range.
    pub fn bias_gather_into(&self, rows: &[u32], out: &mut [f32]) {
        assert_eq!(out.len(), rows.len(), "bias_gather_into: out width");
        let bias = self.bias.as_slice();
        for (o, &r) in out.iter_mut().zip(rows) {
            *o = bias[r as usize];
        }
    }

    /// Inner product of weight row `r` with `x` — Algorithm 1's kernel.
    ///
    /// # Safety
    ///
    /// HOGWILD contract (see [`slide_mem::HogwildPtr`]): the layer must
    /// outlive the call; racing writers may make the result slightly stale.
    #[inline]
    pub unsafe fn w_dot(&self, r: usize, x: &[f32]) -> f32 {
        match &self.weights {
            WeightStorage::F32(store) => slide_simd::dot_f32(store.row_racy(r), x),
            WeightStorage::Bf16(arena) => {
                slide_simd::bf16::dot_bf16_f32(arena.ptr().row(r, self.cols), x)
            }
        }
    }

    /// `out += alpha * W[r]` — Algorithm 2's kernel and the backward
    /// `∇x = Wᵀ∇y` accumulation.
    ///
    /// # Safety
    ///
    /// HOGWILD contract, as [`LayerParams::w_dot`].
    #[inline]
    pub unsafe fn w_axpy_into(&self, r: usize, alpha: f32, out: &mut [f32]) {
        match &self.weights {
            WeightStorage::F32(store) => slide_simd::axpy_f32(alpha, store.row_racy(r), out),
            WeightStorage::Bf16(arena) => {
                slide_simd::bf16::axpy_bf16_f32(alpha, arena.ptr().row(r, self.cols), out)
            }
        }
    }

    /// `grad_w[r] += alpha * x` (gradient accumulation; always f32).
    ///
    /// # Safety
    ///
    /// HOGWILD contract: concurrent accumulation into the same row may lose
    /// an addend — SLIDE's benign-race design.
    #[inline]
    pub unsafe fn grad_axpy(&self, r: usize, alpha: f32, x: &[f32]) {
        slide_simd::axpy_f32(alpha, x, self.grad_w.row_racy(r));
    }

    /// `grad_b[u] += delta`.
    ///
    /// # Safety
    ///
    /// HOGWILD contract, as [`LayerParams::grad_axpy`].
    #[inline]
    pub unsafe fn grad_bias_add(&self, u: usize, delta: f32) {
        self.grad_b.ptr().add(u, delta);
    }

    /// `grad_b += dy` over the whole bias vector.
    ///
    /// # Safety
    ///
    /// HOGWILD contract, as [`LayerParams::grad_axpy`].
    #[inline]
    pub unsafe fn grad_bias_axpy(&self, dy: &[f32], scale: f32) {
        let gb = self.grad_b.ptr().slice_mut(0, self.units);
        slide_simd::axpy_f32(scale, dy, gb);
    }

    /// `out += alpha * W[r]` through a pre-resolved kernel table.
    ///
    /// # Safety
    ///
    /// HOGWILD contract, as [`LayerParams::w_axpy_into`].
    #[inline]
    pub unsafe fn w_axpy_into_ks(&self, ks: &KernelSet, r: usize, alpha: f32, out: &mut [f32]) {
        match &self.weights {
            WeightStorage::F32(store) => ks.axpy(alpha, store.row_racy(r), out),
            WeightStorage::Bf16(arena) => ks.axpy_bf16(alpha, arena.ptr().row(r, self.cols), out),
        }
    }

    /// `grad_w[r] += alpha * x` through a pre-resolved kernel table.
    ///
    /// # Safety
    ///
    /// HOGWILD contract, as [`LayerParams::grad_axpy`].
    #[inline]
    pub unsafe fn grad_axpy_ks(&self, ks: &KernelSet, r: usize, alpha: f32, x: &[f32]) {
        ks.axpy(alpha, x, self.grad_w.row_racy(r));
    }

    /// `grad_b += scale * dy` over the whole bias vector through a
    /// pre-resolved kernel table.
    ///
    /// # Safety
    ///
    /// HOGWILD contract, as [`LayerParams::grad_bias_axpy`].
    #[inline]
    pub unsafe fn grad_bias_axpy_ks(&self, ks: &KernelSet, dy: &[f32], scale: f32) {
        let gb = self.grad_b.ptr().slice_mut(0, self.units);
        ks.axpy(scale, dy, gb);
    }

    /// Score the gathered weight rows `rows` against `x` into `out`
    /// (`out[i] = W[rows[i]] · x + b[rows[i]]`) with one fused multi-row
    /// kernel call instead of a dispatched dot per row. Only meaningful for
    /// row-major layers, where storage rows are output units.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows.len()` or `x.len() != self.cols()`.
    ///
    /// # Safety
    ///
    /// HOGWILD contract: the layer must outlive the call; racing writers may
    /// make the scores slightly stale.
    pub unsafe fn score_rows_into(
        &self,
        ks: &KernelSet,
        rows: &[u32],
        x: &[f32],
        gather: &mut RowGather,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), rows.len(), "score_rows_into: out width");
        assert_eq!(x.len(), self.cols, "score_rows_into: x width");
        match &self.weights {
            WeightStorage::F32(store) => {
                gather.w_f32.clear();
                gather
                    .w_f32
                    .extend(rows.iter().map(|&r| store.row_racy(r as usize).as_ptr()));
                ks.score_rows_f32(&gather.w_f32, x, out);
            }
            WeightStorage::Bf16(arena) => {
                let p = arena.ptr();
                gather.w_bf16.clear();
                gather
                    .w_bf16
                    .extend(rows.iter().map(|&r| p.row(r as usize, self.cols).as_ptr()));
                ks.score_rows_bf16(&gather.w_bf16, x, out);
            }
        }
        let bias = self.bias.as_slice();
        for (o, &r) in out.iter_mut().zip(rows) {
            *o += bias[r as usize];
        }
    }

    /// Score *every* storage row against `x` into `out`
    /// (`out[r] = W[r] · x + b[r]`). Coalesced f32 storage takes the blocked
    /// strided-gemv fast path; fragmented/bf16 storage falls back to a full
    /// row gather.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.rows()` or `x.len() != self.cols()`.
    ///
    /// # Safety
    ///
    /// HOGWILD contract, as [`LayerParams::score_rows_into`].
    pub unsafe fn score_all_into(
        &self,
        ks: &KernelSet,
        x: &[f32],
        gather: &mut RowGather,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), self.rows, "score_all_into: out width");
        assert_eq!(x.len(), self.cols, "score_all_into: x width");
        if let WeightStorage::F32(ParamStore::Arena(a)) = &self.weights {
            let flat = a.ptr().slice(0, self.rows * self.cols);
            ks.gemv(flat, self.cols, x, self.bias.as_slice(), out);
            return;
        }
        match &self.weights {
            WeightStorage::F32(store) => {
                gather.w_f32.clear();
                gather
                    .w_f32
                    .extend((0..self.rows).map(|r| store.row_racy(r).as_ptr()));
                ks.score_rows_f32(&gather.w_f32, x, out);
            }
            WeightStorage::Bf16(arena) => {
                let p = arena.ptr();
                gather.w_bf16.clear();
                gather
                    .w_bf16
                    .extend((0..self.rows).map(|r| p.row(r, self.cols).as_ptr()));
                ks.score_rows_bf16(&gather.w_bf16, x, out);
            }
        }
        let bias = self.bias.as_slice();
        for (o, &b) in out.iter_mut().zip(bias) {
            *o += b;
        }
    }

    /// Fused backward over the gathered rows: for every `rows[i]`, one pass
    /// reading `W[rows[i]]` once computes both `dx += deltas[i] · W[rows[i]]`
    /// and `grad[rows[i]] += deltas[i] · scale · h` (previously two separate
    /// dispatched sweeps per row over disjoint arenas).
    ///
    /// # Panics
    ///
    /// Panics if `deltas.len() != rows.len()` or `h`/`dx` widths disagree
    /// with the layer.
    ///
    /// # Safety
    ///
    /// HOGWILD contract: concurrent accumulation into the same gradient row
    /// may lose an addend (the documented benign race); `rows` must be
    /// duplicate-free within the call.
    #[allow(clippy::too_many_arguments)] // mirrors the fused kernel's operand list
    pub unsafe fn backward_rows_fused(
        &self,
        ks: &KernelSet,
        rows: &[u32],
        deltas: &[f32],
        scale: f32,
        h: &[f32],
        dx: &mut [f32],
        gather: &mut RowGather,
    ) {
        assert_eq!(deltas.len(), rows.len(), "backward_rows_fused: deltas");
        assert_eq!(h.len(), self.cols, "backward_rows_fused: h width");
        assert_eq!(dx.len(), self.cols, "backward_rows_fused: dx width");
        gather.grad.clear();
        gather.grad.extend(
            rows.iter()
                .map(|&r| self.grad_w.row_racy(r as usize).as_mut_ptr()),
        );
        match &self.weights {
            WeightStorage::F32(store) => {
                gather.w_f32.clear();
                gather
                    .w_f32
                    .extend(rows.iter().map(|&r| store.row_racy(r as usize).as_ptr()));
                ks.backward_rows_f32(&gather.w_f32, &gather.grad, deltas, scale, h, dx);
            }
            WeightStorage::Bf16(arena) => {
                let p = arena.ptr();
                gather.w_bf16.clear();
                gather
                    .w_bf16
                    .extend(rows.iter().map(|&r| p.row(r as usize, self.cols).as_ptr()));
                ks.backward_rows_bf16(&gather.w_bf16, &gather.grad, deltas, scale, h, dx);
            }
        }
    }

    /// Mark row `r` active in batch `stamp`; pushes `r` to `touched` exactly
    /// once per batch across all threads (atomic swap dedup).
    #[inline]
    pub fn mark_active(&self, r: usize, stamp: u32, touched: &mut Vec<u32>) {
        if self.stamps[r].swap(stamp, Ordering::Relaxed) != stamp {
            touched.push(r as u32);
        }
    }

    /// Apply one fused ADAM step to weight row `r` and zero its gradient.
    ///
    /// # Safety
    ///
    /// Rows processed concurrently must be distinct (the trainer partitions
    /// the touched-row list across workers).
    pub unsafe fn adam_row(&self, r: usize, step: AdamStep) {
        let g = self.grad_w.row_racy(r);
        let m = self.m_w.row_racy(r);
        let v = self.v_w.row_racy(r);
        match &self.weights {
            WeightStorage::F32(store) => {
                slide_simd::adam_step_f32(store.row_racy(r), m, v, g, step);
            }
            WeightStorage::Bf16(arena) => {
                let w = arena.ptr().row_mut(r, self.cols);
                slide_simd::bf16::adam_step_bf16(w, m, v, g, step);
            }
        }
        g.fill(0.0);
    }

    /// Apply one scalar ADAM step to bias `u` and zero its gradient.
    ///
    /// # Safety
    ///
    /// Units processed concurrently must be distinct.
    pub unsafe fn adam_bias_at(&self, u: usize, step: AdamStep) {
        let g = self.grad_b.ptr();
        let m = self.m_b.ptr();
        let v = self.v_b.ptr();
        let b = self.bias.ptr();
        let gi = g.get(u);
        let mi = step.beta1 * m.get(u) + (1.0 - step.beta1) * gi;
        let vi = step.beta2 * v.get(u) + (1.0 - step.beta2) * gi * gi;
        m.set(u, mi);
        v.set(u, vi);
        b.set(u, b.get(u) - step.lr_t * mi / (vi.sqrt() + step.eps));
        g.set(u, 0.0);
    }

    /// ADAM over the whole bias vector (dense layers), vectorized.
    ///
    /// # Safety
    ///
    /// Must not race with other bias updates.
    pub unsafe fn adam_bias_full(&self, step: AdamStep) {
        let n = self.units;
        let b = self.bias.ptr().slice_mut(0, n);
        let m = self.m_b.ptr().slice_mut(0, n);
        let v = self.v_b.ptr().slice_mut(0, n);
        let g = self.grad_b.ptr().slice_mut(0, n);
        slide_simd::adam_step_f32(b, m, v, g, step);
        g.fill(0.0);
    }

    /// ADAM over a contiguous flat span of the weight arena (the paper's
    /// Figure 3 "2D -> 1D loop" fast path; only valid for coalesced f32
    /// storage). `range` is in flat element coordinates.
    ///
    /// # Safety
    ///
    /// Spans processed concurrently must be disjoint.
    pub unsafe fn adam_flat_span(&self, start: usize, len: usize, step: AdamStep) -> bool {
        let (
            WeightStorage::F32(ParamStore::Arena(w)),
            ParamStore::Arena(m),
            ParamStore::Arena(v),
            ParamStore::Arena(g),
        ) = (&self.weights, &self.m_w, &self.v_w, &self.grad_w)
        else {
            return false;
        };
        let ws = w.ptr().slice_mut(start, len);
        let ms = m.ptr().slice_mut(start, len);
        let vs = v.ptr().slice_mut(start, len);
        let gs = g.ptr().slice_mut(start, len);
        slide_simd::adam_step_f32(ws, ms, vs, gs, step);
        gs.fill(0.0);
        true
    }

    /// Whether [`LayerParams::adam_flat_span`] is available (coalesced f32).
    pub fn supports_flat_adam(&self) -> bool {
        matches!(
            (&self.weights, &self.grad_w),
            (
                WeightStorage::F32(ParamStore::Arena(_)),
                ParamStore::Arena(_)
            )
        )
    }

    /// Test/inspection access to a weight row widened to f32.
    pub fn row_f32(&self, r: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        self.widen_row_into(r, &mut out);
        out
    }

    /// Serialize weights, bias, and ADAM moments as little-endian f32 bytes
    /// (bf16 weights are widened; they re-quantize losslessly on import).
    pub fn export_into(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        let mut row_buf = vec![0.0_f32; self.cols];
        for r in 0..self.rows {
            self.widen_row_into(r, &mut row_buf);
            for &w in &row_buf {
                buf.put_f32_le(w);
            }
        }
        for &b in self.bias.as_slice() {
            buf.put_f32_le(b);
        }
        for store in [&self.m_w, &self.v_w] {
            for r in 0..self.rows {
                for &m in store.row(r) {
                    buf.put_f32_le(m);
                }
            }
        }
        for arr in [&self.m_b, &self.v_b] {
            for &m in arr.as_slice() {
                buf.put_f32_le(m);
            }
        }
    }

    /// Number of bytes [`LayerParams::export_into`] produces.
    pub fn export_len(&self) -> usize {
        (3 * self.rows * self.cols + 3 * self.units) * 4
    }

    /// Restore state written by [`LayerParams::export_into`].
    ///
    /// # Errors
    ///
    /// Returns a message if the buffer is too short.
    pub fn import_from(&mut self, buf: &mut impl bytes::Buf) -> Result<(), String> {
        if buf.remaining() < self.export_len() {
            return Err(format!(
                "checkpoint truncated: need {} bytes, have {}",
                self.export_len(),
                buf.remaining()
            ));
        }
        let mut row_buf = vec![0.0_f32; self.cols];
        for r in 0..self.rows {
            for w in row_buf.iter_mut() {
                *w = buf.get_f32_le();
            }
            match &mut self.weights {
                WeightStorage::F32(store) => store.row_mut(r).copy_from_slice(&row_buf),
                WeightStorage::Bf16(arena) => {
                    slide_simd::bf16::f32_to_bf16_slice(&row_buf, arena.row_mut(r))
                }
            }
        }
        for b in self.bias.as_mut_slice() {
            *b = buf.get_f32_le();
        }
        for store in [&mut self.m_w, &mut self.v_w] {
            for r in 0..self.rows {
                for m in store.row_mut(r) {
                    *m = buf.get_f32_le();
                }
            }
        }
        for arr in [&mut self.m_b, &mut self.v_b] {
            for m in arr.as_mut_slice() {
                *m = buf.get_f32_le();
            }
        }
        Ok(())
    }

    /// Raw accumulated-gradient readback (gradient-check support).
    #[doc(hidden)]
    pub fn grad_at(&self, r: usize, c: usize) -> f32 {
        self.grad_w.row(r)[c]
    }

    /// Add `delta` to weight `(r, c)` in place (gradient-check support).
    ///
    /// # Safety
    ///
    /// HOGWILD contract: must not race with conflicting writers.
    #[doc(hidden)]
    pub unsafe fn nudge_weight(&self, r: usize, c: usize, delta: f32) {
        match &self.weights {
            WeightStorage::F32(store) => store.row_racy(r)[c] += delta,
            WeightStorage::Bf16(arena) => {
                let p = arena.ptr();
                let i = r * self.cols + c;
                let w = slide_simd::Bf16::from_bits(p.get(i)).to_f32();
                p.set(i, slide_simd::Bf16::from_f32(w + delta).to_bits());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(precision: Precision, layout: ParamLayout) -> LayerParams {
        LayerParams::new(8, 32, 8, layout, precision, 42)
    }

    #[test]
    fn initialization_is_bounded_and_seeded() {
        let a = params(Precision::Fp32, ParamLayout::Coalesced);
        let b = params(Precision::Fp32, ParamLayout::Coalesced);
        let scale = 1.0 / 32f32.sqrt();
        for r in 0..8 {
            assert_eq!(a.row_f32(r), b.row_f32(r));
            assert!(a.row_f32(r).iter().all(|w| w.abs() <= scale));
        }
        assert!(a.bias_slice().iter().all(|&b| b == 0.0));
        assert_eq!(a.num_parameters(), 8 * 32 + 8);
    }

    #[test]
    fn layouts_share_initialization() {
        let a = params(Precision::Fp32, ParamLayout::Coalesced);
        let f = params(Precision::Fp32, ParamLayout::Fragmented);
        for r in 0..8 {
            assert_eq!(a.row_f32(r), f.row_f32(r));
        }
    }

    #[test]
    fn bf16_initialization_is_quantized_fp32() {
        let f = params(Precision::Fp32, ParamLayout::Coalesced);
        let q = params(Precision::Bf16Both, ParamLayout::Coalesced);
        assert!(q.is_bf16());
        for r in 0..8 {
            let fr = f.row_f32(r);
            let qr = q.row_f32(r);
            for c in 0..32 {
                assert_eq!(qr[c], slide_simd::Bf16::from_f32(fr[c]).to_f32());
            }
        }
    }

    #[test]
    fn widen_rows_into_matches_per_row_widen() {
        for precision in [Precision::Fp32, Precision::Bf16Both] {
            let p = params(precision, ParamLayout::Coalesced);
            let rows = [6u32, 0, 3];
            let stride = 48; // padded beyond cols = 32
            let mut out = vec![f32::NAN; rows.len() * stride];
            p.widen_rows_into(&rows, stride, &mut out);
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(
                    &out[i * stride..i * stride + 32],
                    p.row_f32(r as usize).as_slice(),
                    "{precision:?} row {r}"
                );
                // Padding untouched.
                assert!(out[i * stride + 32..(i + 1) * stride]
                    .iter()
                    .all(|v| v.is_nan()));
            }
            let mut bias = vec![0.0f32; rows.len()];
            p.bias_gather_into(&rows, &mut bias);
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(bias[i], p.bias_at(r as usize));
            }
        }
    }

    #[test]
    fn dot_and_axpy_consistent_across_storage() {
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        for precision in [Precision::Fp32, Precision::Bf16Both] {
            let p = params(precision, ParamLayout::Coalesced);
            let row = p.row_f32(3);
            let expect = slide_simd::dot_f32(&row, &x);
            let got = unsafe { p.w_dot(3, &x) };
            assert!((got - expect).abs() < 1e-4, "{precision:?}");

            let mut out = vec![0.0f32; 32];
            unsafe { p.w_axpy_into(3, 2.0, &mut out) };
            for c in 0..32 {
                assert!((out[c] - 2.0 * row[c]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn adam_row_moves_weights_against_gradient_and_clears() {
        for precision in [Precision::Fp32, Precision::Bf16Both] {
            let p = params(precision, ParamLayout::Coalesced);
            let before = p.row_f32(2);
            unsafe {
                p.grad_axpy(2, 1.0, &[1.0f32; 32]);
                p.adam_row(2, AdamStep::bias_corrected(0.01, 0.9, 0.999, 1e-8, 1));
            }
            let after = p.row_f32(2);
            // Positive gradient ⇒ weights decrease.
            let decreased = (0..32).filter(|&c| after[c] < before[c]).count();
            assert!(decreased >= 30, "{precision:?}: only {decreased} decreased");
            // Gradient cleared.
            unsafe {
                p.adam_row(2, AdamStep::bias_corrected(0.01, 0.9, 0.999, 1e-8, 2));
            }
        }
    }

    #[test]
    fn bias_adam_scalar_and_full_agree() {
        let a = params(Precision::Fp32, ParamLayout::Coalesced);
        let b = params(Precision::Fp32, ParamLayout::Coalesced);
        let step = AdamStep::bias_corrected(0.1, 0.9, 0.999, 1e-8, 1);
        unsafe {
            for u in 0..8 {
                a.grad_bias_add(u, 0.25);
                b.grad_bias_add(u, 0.25);
            }
            for u in 0..8 {
                a.adam_bias_at(u, step);
            }
            b.adam_bias_full(step);
        }
        for u in 0..8 {
            assert!((a.bias_at(u) - b.bias_at(u)).abs() < 1e-6);
        }
    }

    #[test]
    fn flat_adam_matches_row_adam() {
        let a = params(Precision::Fp32, ParamLayout::Coalesced);
        let b = params(Precision::Fp32, ParamLayout::Coalesced);
        assert!(a.supports_flat_adam());
        let step = AdamStep::bias_corrected(0.05, 0.9, 0.999, 1e-8, 3);
        unsafe {
            for r in 0..8 {
                let g: Vec<f32> = (0..32)
                    .map(|c| ((r * 32 + c) as f32 * 0.01) - 1.0)
                    .collect();
                a.grad_axpy(r, 1.0, &g);
                b.grad_axpy(r, 1.0, &g);
            }
            for r in 0..8 {
                a.adam_row(r, step);
            }
            assert!(b.adam_flat_span(0, 8 * 32, step));
        }
        for r in 0..8 {
            let ra = a.row_f32(r);
            let rb = b.row_f32(r);
            for c in 0..32 {
                assert!((ra[c] - rb[c]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fragmented_layout_rejects_flat_adam() {
        let p = params(Precision::Fp32, ParamLayout::Fragmented);
        assert!(!p.supports_flat_adam());
        assert!(!unsafe {
            p.adam_flat_span(0, 8, AdamStep::bias_corrected(0.1, 0.9, 0.999, 1e-8, 1))
        });
    }

    #[test]
    fn mark_active_dedups_within_batch() {
        let p = params(Precision::Fp32, ParamLayout::Coalesced);
        let mut touched = Vec::new();
        p.mark_active(3, 1, &mut touched);
        p.mark_active(3, 1, &mut touched);
        p.mark_active(5, 1, &mut touched);
        assert_eq!(touched, vec![3, 5]);
        // New batch stamp re-admits the row.
        p.mark_active(3, 2, &mut touched);
        assert_eq!(touched, vec![3, 5, 3]);
    }
}
