//! The three SLIDE layer kinds and their vectorized passes.
//!
//! Weight layout follows the paper's Lemmas 1–2 so that *every* matrix
//! traversal streams contiguous memory:
//!
//! * [`SparseInputLayer`] — column-major (one storage row per input
//!   feature). Forward is Algorithm 2: for each non-zero `(j, v)` of the
//!   sparse input, `h += v * W[j]` (a contiguous axpy).
//! * [`DenseLayer`] — row-major. Forward is Algorithm 1: one contiguous dot
//!   per output unit.
//! * [`SampledOutputLayer`] — row-major with LSH-sampled activity: the
//!   input's hash keys retrieve a tiny active set, logits are dots over just
//!   those rows (Algorithm 1 with sparse output), and the backward pass uses
//!   the same rows for `∇x = Wᵀ∇y` (Lemma 1: row-major `W` *is* column-major
//!   `Wᵀ`).

use crate::activation::{relu, softmax_into};
use crate::config::{HashFamilyKind, LshConfig, Precision};
use crate::params::LayerParams;
use crate::scratch::WorkerScratch;
use parking_lot::RwLock;
use slide_data::top_k_indices;
use slide_hash::{DwtaConfig, LshFamily, LshTables, SimHashConfig, TableStats};
use slide_mem::{ParamLayout, SparseVecRef};
use slide_simd::{KernelSet, RowGather};

// ---------------------------------------------------------------------------
// Sparse input layer (Algorithm 2)
// ---------------------------------------------------------------------------

/// Sparse-input → dense-hidden layer with column-major weights.
#[derive(Debug)]
pub struct SparseInputLayer {
    params: LayerParams,
}

impl SparseInputLayer {
    /// Create with `input_dim` feature rows of `hidden` weights each.
    pub fn new(
        input_dim: usize,
        hidden: usize,
        layout: ParamLayout,
        precision: Precision,
        seed: u64,
    ) -> Self {
        SparseInputLayer {
            params: LayerParams::new(input_dim, hidden, hidden, layout, precision, seed),
        }
    }

    /// The underlying parameter block.
    pub fn params(&self) -> &LayerParams {
        &self.params
    }

    /// Exclusive access to the parameter block (checkpoint restore).
    pub fn params_mut(&mut self) -> &mut LayerParams {
        &mut self.params
    }

    /// Forward pass: `out = relu(bias + Σ_j v_j · W[j])`. `ks` is the
    /// caller's pre-resolved kernel table (one per worker, refreshed per
    /// batch), so the per-nonzero axpy carries no policy load.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the hidden width or a feature
    /// index is out of range.
    pub fn forward(&self, x: SparseVecRef<'_>, out: &mut [f32], ks: &KernelSet) {
        assert_eq!(
            out.len(),
            self.params.units(),
            "SparseInputLayer: out width"
        );
        out.copy_from_slice(self.params.bias_slice());
        for (j, v) in x.iter() {
            // SAFETY: HOGWILD contract — the layer outlives the call.
            unsafe { self.params.w_axpy_into_ks(ks, j as usize, v, out) };
        }
        relu(out);
    }

    /// Backward pass: accumulate `∇W[j] += v_j · dy · scale` for each
    /// non-zero and `∇b += dy · scale`; stamps touched feature rows.
    ///
    /// `dy` must already be masked by the ReLU derivative.
    pub fn backward(
        &self,
        x: SparseVecRef<'_>,
        dy: &[f32],
        scale: f32,
        stamp: u32,
        touched: &mut Vec<u32>,
        ks: &KernelSet,
    ) {
        for (j, v) in x.iter() {
            // SAFETY: HOGWILD contract.
            unsafe { self.params.grad_axpy_ks(ks, j as usize, v * scale, dy) };
            self.params.mark_active(j as usize, stamp, touched);
        }
        // SAFETY: HOGWILD contract.
        unsafe { self.params.grad_bias_axpy_ks(ks, dy, scale) };
    }
}

// ---------------------------------------------------------------------------
// Dense hidden layer (Algorithm 1, dense output)
// ---------------------------------------------------------------------------

/// Dense → dense hidden layer with row-major weights.
#[derive(Debug)]
pub struct DenseLayer {
    params: LayerParams,
}

impl DenseLayer {
    /// Create with `units` rows of `in_dim` weights each.
    pub fn new(
        in_dim: usize,
        units: usize,
        layout: ParamLayout,
        precision: Precision,
        seed: u64,
    ) -> Self {
        DenseLayer {
            params: LayerParams::new(units, in_dim, units, layout, precision, seed),
        }
    }

    /// The underlying parameter block.
    pub fn params(&self) -> &LayerParams {
        &self.params
    }

    /// Exclusive access to the parameter block (checkpoint restore).
    pub fn params_mut(&mut self) -> &mut LayerParams {
        &mut self.params
    }

    /// Forward pass: `out_r = relu(W[r]·x + b_r)` for every unit, as one
    /// blocked gemv over the weight arena instead of a dispatched dot per
    /// unit.
    ///
    /// # Panics
    ///
    /// Panics if buffer widths disagree with the layer shape.
    pub fn forward(&self, x: &[f32], out: &mut [f32], ks: &KernelSet, gather: &mut RowGather) {
        assert_eq!(out.len(), self.params.units(), "DenseLayer: out width");
        assert_eq!(x.len(), self.params.cols(), "DenseLayer: in width");
        // SAFETY: HOGWILD contract.
        unsafe { self.params.score_all_into(ks, x, gather, out) };
        relu(out);
    }

    /// Backward pass: accumulate weight/bias gradients and, if `dx` is
    /// given, the upstream gradient `dx += Wᵀ dy` (unscaled). The non-zero
    /// deltas are staged in `gather` and handed to the fused multi-row
    /// kernel, so each weight row is read once.
    ///
    /// `dy` must already be masked by the ReLU derivative.
    pub fn backward(
        &self,
        x: &[f32],
        dy: &[f32],
        dx: Option<&mut [f32]>,
        scale: f32,
        ks: &KernelSet,
        gather: &mut RowGather,
    ) {
        if let Some(dx) = dx {
            let mut rows = std::mem::take(&mut gather.rows);
            let mut deltas = std::mem::take(&mut gather.deltas);
            rows.clear();
            deltas.clear();
            for (r, &d) in dy.iter().enumerate() {
                if d != 0.0 {
                    rows.push(r as u32);
                    deltas.push(d);
                }
            }
            // SAFETY: HOGWILD contract; the row list is duplicate-free.
            unsafe {
                self.params
                    .backward_rows_fused(ks, &rows, &deltas, scale, x, dx, gather)
            };
            gather.rows = rows;
            gather.deltas = deltas;
        } else {
            for (r, &d) in dy.iter().enumerate() {
                if d != 0.0 {
                    // SAFETY: HOGWILD contract.
                    unsafe { self.params.grad_axpy_ks(ks, r, d * scale, x) };
                }
            }
        }
        // SAFETY: HOGWILD contract.
        unsafe { self.params.grad_bias_axpy_ks(ks, dy, scale) };
    }
}

// ---------------------------------------------------------------------------
// LSH-sampled output layer
// ---------------------------------------------------------------------------

/// Softmax output layer whose active set is retrieved from LSH tables
/// (Figure 1 of the paper).
#[derive(Debug)]
pub struct SampledOutputLayer {
    params: LayerParams,
    family: LshFamily,
    tables: RwLock<LshTables>,
    /// Current table keys per neuron (`rows x L`), kept in sync with the
    /// tables so the incremental delete/re-add path (§2) knows which
    /// buckets a neuron currently occupies.
    key_cache: parking_lot::Mutex<Vec<u32>>,
    min_active: usize,
    max_active: Option<usize>,
    probes: usize,
    pad_seed: u64,
}

impl SampledOutputLayer {
    /// Create the layer and build its initial hash tables from the freshly
    /// initialized weights.
    pub fn new(
        hidden: usize,
        output_dim: usize,
        lsh: &LshConfig,
        layout: ParamLayout,
        precision: Precision,
        seed: u64,
    ) -> Self {
        let params = LayerParams::new(output_dim, hidden, output_dim, layout, precision, seed);
        let family = match lsh.family {
            HashFamilyKind::Dwta { bin_size } => LshFamily::dwta(DwtaConfig {
                dim: hidden,
                key_bits: lsh.key_bits,
                tables: lsh.tables,
                bin_size,
                seed: seed ^ 0xD1A7,
            }),
            HashFamilyKind::SimHash => LshFamily::simhash(SimHashConfig {
                dim: hidden,
                key_bits: lsh.key_bits,
                tables: lsh.tables,
                seed: seed ^ 0x51A7,
            }),
        };
        let tables = LshTables::new(
            lsh.tables,
            lsh.key_bits,
            lsh.bucket_cap,
            lsh.policy,
            seed ^ 0x7AB1,
        );
        let key_count = output_dim * lsh.tables;
        let layer = SampledOutputLayer {
            params,
            family,
            tables: RwLock::new(tables),
            key_cache: parking_lot::Mutex::new(vec![0; key_count]),
            min_active: lsh.min_active.min(output_dim),
            max_active: lsh.max_active,
            probes: lsh.probes.max(1),
            pad_seed: seed ^ 0x9AD5,
        };
        layer.rebuild_serial();
        layer
    }

    /// The underlying parameter block.
    pub fn params(&self) -> &LayerParams {
        &self.params
    }

    /// Exclusive access to the parameter block (checkpoint restore).
    pub fn params_mut(&mut self) -> &mut LayerParams {
        &mut self.params
    }

    /// The LSH family hashing this layer.
    pub fn family(&self) -> &LshFamily {
        &self.family
    }

    /// Current hash-table occupancy statistics.
    pub fn table_stats(&self) -> TableStats {
        self.tables.read().stats()
    }

    /// Number of output units.
    pub fn output_dim(&self) -> usize {
        self.params.rows()
    }

    /// Compute table keys for neuron `r`'s weight vector into `keys_out`.
    pub fn compute_row_keys(&self, r: usize, scratch: &mut WorkerScratch, keys_out: &mut [u32]) {
        self.params.widen_row_into(r, &mut scratch.widen);
        let widen = std::mem::take(&mut scratch.widen);
        self.family.keys_dense(&widen, &mut scratch.lsh, keys_out);
        scratch.widen = widen;
    }

    /// Single-threaded full rebuild (used at construction; the trainer uses
    /// the parallel two-phase path).
    pub fn rebuild_serial(&self) {
        let l = self.family.tables();
        let mut lsh_scratch = self.family.make_scratch();
        let mut widen = vec![0.0_f32; self.params.cols()];
        let mut keys = vec![0u32; l];
        let mut tables = self.tables.write();
        let mut cache = self.key_cache.lock();
        tables.clear();
        for r in 0..self.params.rows() {
            self.params.widen_row_into(r, &mut widen);
            self.family.keys_dense(&widen, &mut lsh_scratch, &mut keys);
            tables.insert(&keys, r as u32);
            cache[r * l..(r + 1) * l].copy_from_slice(&keys);
        }
    }

    /// Replace table contents from precomputed per-row keys
    /// (`all_keys[r*L..][..L]` are row `r`'s keys).
    ///
    /// # Panics
    ///
    /// Panics if `all_keys.len() != rows * L`.
    pub fn rebuild_from_keys(&self, all_keys: &[u32]) {
        let l = self.family.tables();
        assert_eq!(
            all_keys.len(),
            self.params.rows() * l,
            "rebuild_from_keys: wrong key buffer size"
        );
        let mut tables = self.tables.write();
        tables.clear();
        for r in 0..self.params.rows() {
            tables.insert(&all_keys[r * l..(r + 1) * l], r as u32);
        }
        self.key_cache.lock().copy_from_slice(all_keys);
    }

    /// Incremental maintenance (§2): re-hash exactly the given neurons; a
    /// neuron whose keys changed is deleted from its old buckets and
    /// re-added under the new keys. Far cheaper than a full rebuild when few
    /// neurons moved, at the cost of per-neuron bucket surgery.
    ///
    /// Returns how many neurons actually changed buckets.
    pub fn refresh_rows(&self, rows: &[u32], scratch: &mut WorkerScratch) -> usize {
        let l = self.family.tables();
        let mut new_keys = vec![0u32; l];
        let mut moved = 0usize;
        let mut cache = self.key_cache.lock();
        let mut tables = self.tables.write();
        for &r in rows {
            let r = r as usize;
            self.params.widen_row_into(r, &mut scratch.widen);
            let widen = std::mem::take(&mut scratch.widen);
            self.family
                .keys_dense(&widen, &mut scratch.lsh, &mut new_keys);
            scratch.widen = widen;
            let old = &mut cache[r * l..(r + 1) * l];
            if old != &new_keys[..] {
                // Plain reservoir insert: under bounded buckets the neuron
                // may not have been resident under its old keys (the
                // reservoir can reject), so delete/re-add must follow the
                // same admission rule; the periodic full rebuild restores
                // the uniform sample either way.
                tables.remove(old, r as u32);
                tables.insert(&new_keys, r as u32);
                old.copy_from_slice(&new_keys);
                moved += 1;
            }
        }
        moved
    }

    /// The cached table keys of neuron `r` (test/inspection hook).
    pub fn cached_keys(&self, r: usize) -> Vec<u32> {
        let l = self.family.tables();
        self.key_cache.lock()[r * l..(r + 1) * l].to_vec()
    }

    /// Build the active set for input `h` into `scratch.active`:
    /// forced labels first, then deduplicated table retrievals, then
    /// deterministic random padding up to `min_active` (capped at
    /// `max_active` when configured).
    pub fn select_active(&self, h: &[f32], labels: &[u32], scratch: &mut WorkerScratch, salt: u64) {
        self.family
            .keys_dense(h, &mut scratch.lsh, &mut scratch.keys);
        scratch.candidates.clear();
        {
            let tables = self.tables.read();
            if self.probes > 1 {
                tables.query_multiprobe_into(&scratch.keys, self.probes, &mut scratch.candidates);
            } else {
                tables.query_into(&scratch.keys, &mut scratch.candidates);
            }
        }

        scratch.dedup.begin();
        scratch.active.clear();
        for &l in labels {
            if scratch.dedup.insert(l) {
                scratch.active.push(l);
            }
        }
        let cap = self.max_active.unwrap_or(usize::MAX).max(labels.len());
        for i in 0..scratch.candidates.len() {
            if scratch.active.len() >= cap {
                break;
            }
            let c = scratch.candidates[i];
            if scratch.dedup.insert(c) {
                scratch.active.push(c);
            }
        }
        // Pad with pseudo-random neurons so early training (tables still
        // cold) keeps gradients flowing.
        let n = self.output_dim() as u64;
        let want = self.min_active.min(cap);
        let mut attempt = 0u64;
        while scratch.active.len() < want {
            let r = (slide_hash::mix::mix3(self.pad_seed, salt, attempt) % n) as u32;
            attempt += 1;
            if scratch.dedup.insert(r) {
                scratch.active.push(r);
            }
        }
    }

    /// Train on one sample: sampled softmax + cross-entropy over the active
    /// set, gradient accumulation into this layer, and the hidden gradient
    /// `dx += Wᵀδ` (unscaled — the upstream layer applies `scale` when it
    /// accumulates its own gradients).
    ///
    /// Returns the sample's cross-entropy loss. Samples with no labels
    /// return 0 and touch nothing.
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 2's full argument list
    pub fn train_sample(
        &self,
        h: &[f32],
        labels: &[u32],
        scratch: &mut WorkerScratch,
        scale: f32,
        stamp: u32,
        dx: &mut [f32],
        salt: u64,
    ) -> f32 {
        if labels.is_empty() {
            return 0.0;
        }
        let ks = scratch.kernels;
        self.select_active(h, labels, scratch, salt);
        let active_len = scratch.active.len();
        scratch.logits.clear();
        scratch.logits.resize(active_len, 0.0);
        // SAFETY: HOGWILD contract; one fused multi-row scoring call over
        // the gathered active set replaces a dispatched dot per row.
        unsafe {
            self.params.score_rows_into(
                &ks,
                &scratch.active,
                h,
                &mut scratch.gather,
                &mut scratch.logits,
            )
        };
        let log_z = softmax_into(&scratch.logits, &mut scratch.probs);

        // Labels occupy the first positions of the active set by
        // construction; the target distributes mass uniformly across them.
        let n_labels = labels.len().min(active_len);
        let t = 1.0 / n_labels as f32;
        let mut loss = 0.0_f32;
        for i in 0..n_labels {
            loss += t * (log_z - scratch.logits[i]);
        }

        // Turn the probabilities into softmax deltas in place, then run the
        // fused backward: one pass per row computes both `dx += δ·W[r]` and
        // `grad[r] += δ·scale·h`.
        for i in 0..n_labels {
            scratch.probs[i] -= t;
        }
        // SAFETY: HOGWILD contract; the active list is duplicate-free.
        unsafe {
            self.params.backward_rows_fused(
                &ks,
                &scratch.active,
                &scratch.probs,
                scale,
                h,
                dx,
                &mut scratch.gather,
            )
        };
        for i in 0..active_len {
            let r = scratch.active[i] as usize;
            // SAFETY: HOGWILD contract; rows marked for the sparse ADAM pass.
            unsafe { self.params.grad_bias_add(r, scratch.probs[i] * scale) };
            self.params.mark_active(r, stamp, &mut scratch.touched_out);
        }
        loss
    }

    /// Predict the top-`k` labels using LSH retrieval (SLIDE inference: only
    /// the active set is scored).
    pub fn predict_topk_sampled(
        &self,
        h: &[f32],
        k: usize,
        scratch: &mut WorkerScratch,
        salt: u64,
    ) -> Vec<u32> {
        let ks = scratch.kernels;
        self.select_active(h, &[], scratch, salt);
        scratch.logits.clear();
        scratch.logits.resize(scratch.active.len(), 0.0);
        // SAFETY: HOGWILD contract.
        unsafe {
            self.params.score_rows_into(
                &ks,
                &scratch.active,
                h,
                &mut scratch.gather,
                &mut scratch.logits,
            )
        };
        top_k_indices(&scratch.logits, k)
            .into_iter()
            .map(|i| scratch.active[i as usize])
            .collect()
    }

    /// Predict the top-`k` labels scoring *every* output unit (exact
    /// full-softmax argmax; used for accuracy parity checks and the dense
    /// baseline comparison).
    pub fn predict_topk_full(&self, h: &[f32], k: usize, scratch: &mut WorkerScratch) -> Vec<u32> {
        let ks = scratch.kernels;
        let n = self.output_dim();
        scratch.logits.clear();
        scratch.logits.resize(n, 0.0);
        // SAFETY: HOGWILD contract; coalesced f32 storage takes the blocked
        // strided-gemv fast path.
        unsafe {
            self.params
                .score_all_into(&ks, h, &mut scratch.gather, &mut scratch.logits)
        };
        top_k_indices(&scratch.logits, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LshConfig;

    fn scratch_for(hidden: usize, out: usize, layer: &SampledOutputLayer) -> WorkerScratch {
        WorkerScratch::new(&[hidden], out, layer.family())
    }

    #[test]
    fn sparse_input_forward_matches_manual() {
        let layer = SparseInputLayer::new(10, 4, ParamLayout::Coalesced, Precision::Fp32, 1);
        let ks = KernelSet::resolve();
        let idx = [2u32, 7];
        let val = [1.5f32, -0.5];
        let x = SparseVecRef::new(&idx, &val);
        let mut out = vec![0.0; 4];
        layer.forward(x, &mut out, &ks);
        let w2 = layer.params().row_f32(2);
        let w7 = layer.params().row_f32(7);
        for hcol in 0..4 {
            let pre = 1.5 * w2[hcol] - 0.5 * w7[hcol];
            assert!((out[hcol] - pre.max(0.0)).abs() < 1e-6, "h{hcol}");
        }
    }

    #[test]
    fn dense_forward_matches_manual() {
        let layer = DenseLayer::new(6, 3, ParamLayout::Coalesced, Precision::Fp32, 2);
        let ks = KernelSet::resolve();
        let mut gather = RowGather::default();
        let x: Vec<f32> = (0..6).map(|i| i as f32 * 0.2 - 0.5).collect();
        let mut out = vec![0.0; 3];
        layer.forward(&x, &mut out, &ks, &mut gather);
        for (r, &o) in out.iter().enumerate() {
            let w = layer.params().row_f32(r);
            let pre: f32 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((o - pre.max(0.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn dense_forward_fragmented_matches_coalesced() {
        // The fragmented layout takes the row-gather fallback instead of the
        // strided gemv; both must agree.
        let a = DenseLayer::new(10, 7, ParamLayout::Coalesced, Precision::Fp32, 21);
        let f = DenseLayer::new(10, 7, ParamLayout::Fragmented, Precision::Fp32, 21);
        let ks = KernelSet::resolve();
        let mut gather = RowGather::default();
        let x: Vec<f32> = (0..10).map(|i| (i as f32 * 0.31).sin()).collect();
        let (mut oa, mut of) = (vec![0.0; 7], vec![0.0; 7]);
        a.forward(&x, &mut oa, &ks, &mut gather);
        f.forward(&x, &mut of, &ks, &mut gather);
        for r in 0..7 {
            assert!((oa[r] - of[r]).abs() < 1e-5, "r={r}");
        }
    }

    #[test]
    fn train_sample_fused_matches_single_row_variant() {
        // The fused multi-row path and the pre-fusion single-row path must
        // produce the same loss, hidden gradient, and accumulated weight
        // gradients (up to float reassociation).
        let lsh = LshConfig {
            min_active: 24,
            ..Default::default()
        };
        let h: Vec<f32> = (0..16).map(|i| 0.05 * i as f32 - 0.3).collect();
        let labels = [3u32, 11];
        let run = |variant: slide_simd::KernelVariant| {
            let layer =
                SampledOutputLayer::new(16, 48, &lsh, ParamLayout::Coalesced, Precision::Fp32, 77);
            let mut scratch = scratch_for(16, 48, &layer);
            scratch.kernels = KernelSet::for_level_variant(slide_simd::detected_level(), variant);
            let mut dx = vec![0.0; 16];
            let loss = layer.train_sample(&h, &labels, &mut scratch, 0.5, 1, &mut dx, 9);
            let grads: Vec<f32> = scratch
                .touched_out
                .iter()
                .map(|&r| layer.params().grad_at(r as usize, 5))
                .collect();
            (loss, dx, scratch.touched_out.clone(), grads)
        };
        let (loss_f, dx_f, touched_f, grads_f) = run(slide_simd::KernelVariant::Fused);
        let (loss_s, dx_s, touched_s, grads_s) = run(slide_simd::KernelVariant::SingleRow);
        assert_eq!(touched_f, touched_s, "active sets must be identical");
        assert!((loss_f - loss_s).abs() < 1e-5, "{loss_f} vs {loss_s}");
        for i in 0..16 {
            assert!((dx_f[i] - dx_s[i]).abs() < 1e-4, "dx[{i}]");
        }
        for (i, (a, b)) in grads_f.iter().zip(&grads_s).enumerate() {
            assert!((a - b).abs() < 1e-5, "grad[{i}]");
        }
    }

    #[test]
    fn output_layer_retrieves_itself() {
        // A neuron queried with its own weight vector must appear in its
        // active set (same hash keys ⇒ same buckets).
        let lsh = LshConfig {
            tables: 8,
            key_bits: 5,
            min_active: 0,
            ..Default::default()
        };
        let layer =
            SampledOutputLayer::new(16, 100, &lsh, ParamLayout::Coalesced, Precision::Fp32, 3);
        let mut scratch = scratch_for(16, 100, &layer);
        for r in [0usize, 17, 99] {
            let w = layer.params().row_f32(r);
            layer.select_active(&w, &[], &mut scratch, 0);
            assert!(
                scratch.active.contains(&(r as u32)),
                "neuron {r} missing from its own active set"
            );
        }
    }

    #[test]
    fn labels_always_forced_into_active_set() {
        let lsh = LshConfig {
            min_active: 4,
            ..Default::default()
        };
        let layer =
            SampledOutputLayer::new(8, 50, &lsh, ParamLayout::Coalesced, Precision::Fp32, 4);
        let mut scratch = scratch_for(8, 50, &layer);
        let h = vec![0.1; 8];
        layer.select_active(&h, &[42, 7], &mut scratch, 1);
        assert_eq!(&scratch.active[..2], &[42, 7]);
        assert!(scratch.active.len() >= 4);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        assert!(scratch.active.iter().all(|&a| seen.insert(a)));
    }

    #[test]
    fn min_active_pads_cold_tables() {
        let lsh = LshConfig {
            min_active: 16,
            max_active: Some(20),
            ..Default::default()
        };
        let layer =
            SampledOutputLayer::new(8, 64, &lsh, ParamLayout::Coalesced, Precision::Fp32, 5);
        let mut scratch = scratch_for(8, 64, &layer);
        // Zero vector hashes somewhere; padding must still reach min_active.
        layer.select_active(&[0.0; 8], &[], &mut scratch, 9);
        assert!(scratch.active.len() >= 16);
        assert!(scratch.active.len() <= 64);
    }

    #[test]
    fn train_sample_reduces_loss_on_repeat() {
        let lsh = LshConfig {
            min_active: 16,
            ..Default::default()
        };
        let layer =
            SampledOutputLayer::new(8, 40, &lsh, ParamLayout::Coalesced, Precision::Fp32, 6);
        let mut scratch = scratch_for(8, 40, &layer);
        let h: Vec<f32> = (0..8).map(|i| 0.3 + i as f32 * 0.1).collect();
        let labels = [5u32];
        let mut dx = vec![0.0; 8];
        let first = layer.train_sample(&h, &labels, &mut scratch, 1.0, 1, &mut dx, 0);
        // Apply the accumulated gradients.
        let step = slide_simd::AdamStep::bias_corrected(0.05, 0.9, 0.999, 1e-8, 1);
        for &r in scratch.touched_out.clone().iter() {
            unsafe {
                layer.params().adam_row(r as usize, step);
                layer.params().adam_bias_at(r as usize, step);
            }
        }
        let mut dx2 = vec![0.0; 8];
        let second = layer.train_sample(&h, &labels, &mut scratch, 1.0, 2, &mut dx2, 0);
        assert!(
            second < first,
            "loss should drop after an update: {first} -> {second}"
        );
        assert!(dx.iter().any(|&v| v != 0.0), "hidden gradient flowed");
    }

    #[test]
    fn empty_labels_are_skipped() {
        let layer = SampledOutputLayer::new(
            4,
            10,
            &LshConfig::default(),
            ParamLayout::Coalesced,
            Precision::Fp32,
            7,
        );
        let mut scratch = scratch_for(4, 10, &layer);
        let mut dx = vec![0.0; 4];
        let loss = layer.train_sample(&[1.0; 4], &[], &mut scratch, 1.0, 1, &mut dx, 0);
        assert_eq!(loss, 0.0);
        assert!(scratch.touched_out.is_empty());
        assert!(dx.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn full_and_sampled_prediction_agree_when_tables_cover() {
        // With enough tables and padding the sampled prediction matches the
        // exact top-1 most of the time; check on the trivially separable
        // case of querying a neuron's own weights.
        let lsh = LshConfig {
            tables: 12,
            key_bits: 4,
            min_active: 32,
            ..Default::default()
        };
        let layer =
            SampledOutputLayer::new(12, 64, &lsh, ParamLayout::Coalesced, Precision::Fp32, 8);
        let mut scratch = scratch_for(12, 64, &layer);
        let mut agree = 0;
        for r in 0..32usize {
            let w = layer.params().row_f32(r);
            let full = layer.predict_topk_full(&w, 1, &mut scratch);
            let sampled = layer.predict_topk_sampled(&w, 1, &mut scratch, r as u64);
            if full == sampled {
                agree += 1;
            }
        }
        assert!(agree >= 24, "only {agree}/32 agreements");
    }

    #[test]
    fn rebuild_from_keys_matches_serial() {
        let lsh = LshConfig {
            tables: 6,
            key_bits: 5,
            ..Default::default()
        };
        let layer =
            SampledOutputLayer::new(8, 30, &lsh, ParamLayout::Coalesced, Precision::Fp32, 9);
        let mut scratch = scratch_for(8, 30, &layer);
        let l = layer.family().tables();
        let mut all_keys = vec![0u32; 30 * l];
        for r in 0..30 {
            let mut keys = vec![0u32; l];
            layer.compute_row_keys(r, &mut scratch, &mut keys);
            all_keys[r * l..(r + 1) * l].copy_from_slice(&keys);
        }
        let before = layer.table_stats();
        layer.rebuild_from_keys(&all_keys);
        let after = layer.table_stats();
        assert_eq!(before.stored, after.stored);
        assert_eq!(before.occupied_buckets, after.occupied_buckets);
    }

    #[test]
    fn bf16_layer_trains() {
        let lsh = LshConfig {
            min_active: 8,
            ..Default::default()
        };
        let layer =
            SampledOutputLayer::new(8, 20, &lsh, ParamLayout::Coalesced, Precision::Bf16Both, 10);
        assert!(layer.params().is_bf16());
        let mut scratch = scratch_for(8, 20, &layer);
        let mut dx = vec![0.0; 8];
        let loss = layer.train_sample(&[0.5; 8], &[3], &mut scratch, 1.0, 1, &mut dx, 0);
        assert!(loss.is_finite() && loss > 0.0);
    }
}
