//! Binary model checkpointing.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic  u32 = 0x511D_E5CB
//! version u32 = 1
//! n_layers u32
//! per layer: rows u64, cols u64, units u64
//! per layer: the LayerParams::export_into payload (weights, bias, moments)
//! ```
//!
//! The checkpoint stores weights widened to f32 regardless of the runtime
//! precision mode — bf16 → f32 → bf16 is lossless — so a model trained in
//! one precision mode can be reloaded into another for comparison.

use crate::network::Network;
use bytes::{Buf, BufMut};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: u32 = 0x511D_E5CB;
const VERSION: u32 = 1;

/// Error restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural mismatch (bad magic, wrong shapes, truncation).
    Format(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error on checkpoint: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialize a network's learnable + optimizer state.
///
/// A mutable reference works too (`save_checkpoint(&net, &mut writer)`).
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn save_checkpoint<W: Write>(network: &Network, mut writer: W) -> io::Result<()> {
    let params: Vec<_> = layer_params(network);
    let mut buf =
        Vec::with_capacity(16 + params.iter().map(|p| p.export_len() + 24).sum::<usize>());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(params.len() as u32);
    for p in &params {
        buf.put_u64_le(p.rows() as u64);
        buf.put_u64_le(p.cols() as u64);
        buf.put_u64_le(p.units() as u64);
    }
    for p in &params {
        p.export_into(&mut buf);
    }
    writer.write_all(&buf)
}

/// Restore a network's state from a checkpoint written by
/// [`save_checkpoint`]. The network must have the same architecture; hash
/// tables are rebuilt from the restored weights.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] on a shape/magic mismatch and
/// [`CheckpointError::Io`] on read failure.
pub fn load_checkpoint<R: Read>(
    network: &mut Network,
    mut reader: R,
) -> Result<(), CheckpointError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    if buf.remaining() < 12 {
        return Err(CheckpointError::Format("header truncated".into()));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let n_layers = buf.get_u32_le() as usize;
    {
        let params = layer_params(network);
        if n_layers != params.len() {
            return Err(CheckpointError::Format(format!(
                "layer count mismatch: checkpoint {n_layers}, network {}",
                params.len()
            )));
        }
        if buf.remaining() < n_layers * 24 {
            return Err(CheckpointError::Format("shape table truncated".into()));
        }
        let mut shapes = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            shapes.push((
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
            ));
        }
        for (p, &(rows, cols, units)) in params.iter().zip(&shapes) {
            if p.rows() != rows || p.cols() != cols || p.units() != units {
                return Err(CheckpointError::Format(format!(
                    "shape mismatch: checkpoint {rows}x{cols}/{units}, network {}x{}/{}",
                    p.rows(),
                    p.cols(),
                    p.units()
                )));
            }
        }
    }
    for p in layer_params_mut(network) {
        p.import_from(&mut buf).map_err(CheckpointError::Format)?;
    }
    network.output().rebuild_serial();
    Ok(())
}

fn layer_params(network: &Network) -> Vec<&crate::params::LayerParams> {
    let mut v = vec![network.input().params()];
    v.extend(network.hidden_layers().iter().map(|l| l.params()));
    v.push(network.output().params());
    v
}

fn layer_params_mut(network: &mut Network) -> Vec<&mut crate::params::LayerParams> {
    let (input, hidden, output) = network.layers_mut();
    let mut v = vec![input.params_mut()];
    v.extend(hidden.iter_mut().map(|l| l.params_mut()));
    v.push(output.params_mut());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LshConfig, NetworkConfig, Precision};
    use slide_mem::SparseVecRef;

    fn config() -> NetworkConfig {
        let mut cfg = NetworkConfig::standard(64, 12, 32);
        cfg.hidden_dims = vec![12, 8];
        cfg.lsh = LshConfig {
            tables: 6,
            key_bits: 4,
            min_active: 8,
            ..Default::default()
        };
        cfg
    }

    fn perturb(net: &Network) {
        // Make the state distinctive before saving.
        let mut scratch = net.make_scratch();
        let idx = [1u32, 30];
        let val = [1.0f32, -2.0];
        for t in 1..10 {
            net.train_sample(SparseVecRef::new(&idx, &val), &[3], &mut scratch, 1.0, t, 0);
        }
    }

    #[test]
    fn roundtrip_restores_predictions() {
        let net = Network::new(config()).unwrap();
        perturb(&net);
        let mut bytes = Vec::new();
        save_checkpoint(&net, &mut bytes).unwrap();

        let mut restored = Network::new(config()).unwrap();
        load_checkpoint(&mut restored, &bytes[..]).unwrap();

        let mut s1 = net.make_scratch();
        let mut s2 = restored.make_scratch();
        let idx = [5u32, 20];
        let val = [0.5f32, 1.5];
        let x = SparseVecRef::new(&idx, &val);
        assert_eq!(
            net.predict(x, 5, &mut s1, true, 0),
            restored.predict(x, 5, &mut s2, true, 0)
        );
        // Weights bit-identical.
        for r in 0..32 {
            assert_eq!(
                net.output().params().row_f32(r),
                restored.output().params().row_f32(r)
            );
        }
    }

    #[test]
    fn bf16_checkpoint_roundtrips_into_fp32_network() {
        let mut cfg = config();
        cfg.precision = Precision::Bf16Both;
        let net = Network::new(cfg).unwrap();
        perturb(&net);
        let mut bytes = Vec::new();
        save_checkpoint(&net, &mut bytes).unwrap();

        let mut fp32 = Network::new(config()).unwrap();
        load_checkpoint(&mut fp32, &bytes[..]).unwrap();
        for r in 0..32 {
            assert_eq!(
                net.output().params().row_f32(r),
                fp32.output().params().row_f32(r)
            );
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let net = Network::new(config()).unwrap();
        let mut bytes = Vec::new();
        save_checkpoint(&net, &mut bytes).unwrap();
        let mut other_cfg = config();
        other_cfg.output_dim = 33;
        let mut other = Network::new(other_cfg).unwrap();
        match load_checkpoint(&mut other, &bytes[..]) {
            Err(CheckpointError::Format(msg)) => assert!(msg.contains("mismatch"), "{msg}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut net = Network::new(config()).unwrap();
        let err = load_checkpoint(&mut net, &b"nope"[..]).unwrap_err();
        assert!(err.to_string().contains("invalid checkpoint"));
    }

    #[test]
    fn truncated_payload_rejected() {
        let net = Network::new(config()).unwrap();
        let mut bytes = Vec::new();
        save_checkpoint(&net, &mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        let mut other = Network::new(config()).unwrap();
        assert!(load_checkpoint(&mut other, &bytes[..]).is_err());
    }
}
