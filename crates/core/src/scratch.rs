//! Per-worker scratch state: every allocation a HOGWILD worker needs is made
//! once and reused across batches, so the steady-state training loop is
//! allocation-free (a §4.1 requirement — allocator churn would re-fragment
//! the memory the batch/arena layouts just coalesced).

use slide_data::MeanMetric;
use slide_hash::LshScratch;
use slide_simd::{KernelSet, RowGather};

/// O(1)-reset membership filter over `0..n` using generation stamps.
///
/// # Examples
///
/// ```
/// use slide_core::StampSet;
/// let mut set = StampSet::new(10);
/// set.begin();
/// assert!(set.insert(3));
/// assert!(!set.insert(3));
/// set.begin(); // new generation: everything forgotten in O(1)
/// assert!(set.insert(3));
/// ```
#[derive(Debug, Clone)]
pub struct StampSet {
    stamp: Vec<u32>,
    gen: u32,
}

impl StampSet {
    /// Create a filter over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        StampSet {
            stamp: vec![0; n],
            gen: 0,
        }
    }

    /// Start a new (empty) generation.
    pub fn begin(&mut self) {
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Insert `id`; returns `true` if it was not yet present this generation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let slot = &mut self.stamp[id as usize];
        if *slot == self.gen {
            false
        } else {
            *slot = self.gen;
            true
        }
    }

    /// Whether `id` is present this generation.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.gen
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.stamp.len()
    }
}

/// All mutable state one worker thread owns during training/evaluation.
#[derive(Debug)]
pub struct WorkerScratch {
    /// Activation buffer per hidden layer (sized to that layer's width).
    pub acts: Vec<Vec<f32>>,
    /// Gradient buffer per hidden layer activation.
    pub grads: Vec<Vec<f32>>,
    /// LSH scratch for the output layer's family.
    pub lsh: LshScratch,
    /// Table keys buffer (`L` entries).
    pub keys: Vec<u32>,
    /// Raw candidates from table queries (with duplicates).
    pub candidates: Vec<u32>,
    /// Deduplicated active set for the current sample.
    pub active: Vec<u32>,
    /// Active-set dedup filter over output neurons.
    pub dedup: StampSet,
    /// Logits over the active set.
    pub logits: Vec<f32>,
    /// Softmax probabilities over the active set.
    pub probs: Vec<f32>,
    /// Output rows this worker first-touched in the current batch.
    pub touched_out: Vec<u32>,
    /// Input-feature rows this worker first-touched in the current batch.
    pub touched_in: Vec<u32>,
    /// Per-worker loss accumulator for the current epoch.
    pub loss: MeanMetric,
    /// Per-worker metric accumulator for evaluation.
    pub metric: MeanMetric,
    /// Scratch for widening bf16 rows during table rebuilds.
    pub widen: Vec<f32>,
    /// Row-gather pointer lists for the multi-row fused kernels.
    pub gather: RowGather,
    /// The kernel dispatch table this worker calls through. Resolved at
    /// construction and refreshed by the trainer once per batch (and per
    /// evaluation pass), so the per-active-row policy load is gone from the
    /// hot loops while policy changes still take effect at batch boundaries.
    pub kernels: KernelSet,
}

impl WorkerScratch {
    /// Allocate scratch for a network with the given hidden widths, output
    /// size, and LSH family.
    pub fn new(hidden_dims: &[usize], output_dim: usize, family: &slide_hash::LshFamily) -> Self {
        WorkerScratch {
            acts: hidden_dims.iter().map(|&d| vec![0.0; d]).collect(),
            grads: hidden_dims.iter().map(|&d| vec![0.0; d]).collect(),
            lsh: family.make_scratch(),
            keys: vec![0; family.tables()],
            candidates: Vec::with_capacity(1024),
            active: Vec::with_capacity(1024),
            dedup: StampSet::new(output_dim),
            logits: Vec::with_capacity(1024),
            probs: Vec::with_capacity(1024),
            touched_out: Vec::with_capacity(1024),
            touched_in: Vec::with_capacity(1024),
            loss: MeanMetric::new(),
            metric: MeanMetric::new(),
            widen: vec![0.0; hidden_dims.last().copied().unwrap_or(0)],
            gather: RowGather::default(),
            kernels: KernelSet::resolve(),
        }
    }
}

/// Sendable pointer to a slice of worker scratches; each worker dereferences
/// only its own index, so access is disjoint.
#[derive(Clone, Copy)]
pub(crate) struct ScratchSlots {
    base: *mut WorkerScratch,
    len: usize,
}

unsafe impl Send for ScratchSlots {}
unsafe impl Sync for ScratchSlots {}

impl ScratchSlots {
    pub(crate) fn new(scratches: &mut [WorkerScratch]) -> Self {
        ScratchSlots {
            base: scratches.as_mut_ptr(),
            len: scratches.len(),
        }
    }

    /// Exclusive access to worker `i`'s scratch.
    ///
    /// # Safety
    ///
    /// Each index must be used by at most one thread at a time (the pool
    /// hands every worker a distinct id), and the backing slice must outlive
    /// the parallel section.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self, i: usize) -> &mut WorkerScratch {
        assert!(i < self.len, "ScratchSlots: worker index out of range");
        &mut *self.base.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_hash::{DwtaConfig, LshFamily};

    #[test]
    fn stamp_set_semantics() {
        let mut s = StampSet::new(5);
        s.begin();
        assert!(s.insert(0));
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert!(!s.insert(0));
        s.begin();
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert_eq!(s.universe(), 5);
    }

    #[test]
    fn stamp_set_generation_wrap_resets() {
        let mut s = StampSet::new(3);
        s.gen = u32::MAX - 1;
        s.begin(); // gen == MAX
        assert!(s.insert(1));
        s.begin(); // wrap path
        assert!(!s.contains(1));
        assert!(s.insert(1));
    }

    #[test]
    fn scratch_sizes_follow_network_shape() {
        let family = LshFamily::dwta(DwtaConfig {
            dim: 16,
            key_bits: 5,
            tables: 7,
            bin_size: 8,
            seed: 1,
        });
        let s = WorkerScratch::new(&[32, 16], 1000, &family);
        assert_eq!(s.acts.len(), 2);
        assert_eq!(s.acts[0].len(), 32);
        assert_eq!(s.grads[1].len(), 16);
        assert_eq!(s.keys.len(), 7);
        assert_eq!(s.dedup.universe(), 1000);
        assert_eq!(s.widen.len(), 16);
    }
}
