//! Activation functions and the sampled-softmax loss pieces.

/// In-place ReLU.
#[inline]
pub fn relu(x: &mut [f32]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Zero the gradient entries whose forward activation was clamped by ReLU.
/// `act` is the *post*-activation vector (zero exactly where clamped).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn relu_backward_mask(act: &[f32], grad: &mut [f32]) {
    assert_eq!(act.len(), grad.len(), "relu_backward_mask: length mismatch");
    for i in 0..act.len() {
        if act[i] <= 0.0 {
            grad[i] = 0.0;
        }
    }
}

/// Numerically stable softmax: writes probabilities for `logits` into
/// `probs` and returns the log-partition `log Σ exp(z - max) + max` (used to
/// compute cross-entropy without a second pass).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn softmax_into(logits: &[f32], probs: &mut Vec<f32>) -> f32 {
    assert!(!logits.is_empty(), "softmax_into: empty logits");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    probs.clear();
    probs.reserve(logits.len());
    let mut sum = 0.0_f32;
    for &z in logits {
        let e = (z - max).exp();
        sum += e;
        probs.push(e);
    }
    let inv = 1.0 / sum;
    for p in probs.iter_mut() {
        *p *= inv;
    }
    sum.ln() + max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut x = vec![-1.0, 0.0, 2.5];
        relu(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_mask_zeroes_clamped_grads() {
        let act = vec![0.0, 3.0, 0.0, 1.0];
        let mut grad = vec![9.0, 9.0, 9.0, 9.0];
        relu_backward_mask(&act, &mut grad);
        assert_eq!(grad, vec![0.0, 9.0, 0.0, 9.0]);
    }

    #[test]
    fn softmax_probabilities_sum_to_one() {
        let logits = vec![1.0, 2.0, 3.0];
        let mut probs = Vec::new();
        softmax_into(&logits, &mut probs);
        let total: f32 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(probs[2] > probs[1] && probs[1] > probs[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        softmax_into(&[1.0, 2.0], &mut a);
        softmax_into(&[1001.0, 1002.0], &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        // Huge logits do not overflow.
        let mut c = Vec::new();
        softmax_into(&[1e30, 1e30], &mut c);
        assert!((c[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_partition_gives_cross_entropy() {
        // CE of class i = logZ - z_i.
        let logits = vec![0.5, 1.5, -0.5];
        let mut probs = Vec::new();
        let log_z = softmax_into(&logits, &mut probs);
        for i in 0..3 {
            let ce = log_z - logits[i];
            assert!(
                (ce + probs[i].ln() - 0.0).abs() < 1e-5 || (ce - (-probs[i].ln())).abs() < 1e-5
            );
        }
    }
}
