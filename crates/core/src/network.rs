//! The SLIDE network: sparse input layer → dense hidden stack → LSH-sampled
//! softmax output, with per-sample forward/backward passes designed to be
//! driven by many HOGWILD workers concurrently (all methods take `&self`;
//! parameter mutation goes through the documented racy kernels).

use crate::activation::relu_backward_mask;
use crate::config::{NetworkConfig, Precision};
use crate::layer::{DenseLayer, SampledOutputLayer, SparseInputLayer};
use crate::scratch::WorkerScratch;
use slide_mem::SparseVecRef;

/// A complete SLIDE model.
///
/// # Examples
///
/// ```
/// use slide_core::{Network, NetworkConfig};
///
/// let net = Network::new(NetworkConfig::standard(1000, 32, 500)).unwrap();
/// assert_eq!(net.num_parameters(), 1000 * 32 + 32 + 32 * 500 + 500);
/// let mut scratch = net.make_scratch();
/// let idx = [1u32, 17];
/// let val = [1.0f32, 0.5];
/// let x = slide_mem::SparseVecRef::new(&idx, &val);
/// let topk = net.predict(x, 5, &mut scratch, /*exact=*/true, 0);
/// assert_eq!(topk.len(), 5);
/// ```
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    input: SparseInputLayer,
    hidden: Vec<DenseLayer>,
    output: SampledOutputLayer,
}

impl Network {
    /// Build and initialize a network (weights seeded from
    /// `config.seed`, hash tables built from the initial weights).
    ///
    /// # Errors
    ///
    /// Returns the message from [`NetworkConfig::validate`] on an invalid
    /// configuration.
    pub fn new(config: NetworkConfig) -> Result<Self, String> {
        config.validate()?;
        let layout = config.memory.param_layout();
        let input = SparseInputLayer::new(
            config.input_dim,
            config.hidden_dims[0],
            layout,
            config.precision,
            config.seed,
        );
        let mut hidden = Vec::new();
        for w in config.hidden_dims.windows(2) {
            hidden.push(DenseLayer::new(
                w[0],
                w[1],
                layout,
                config.precision,
                config.seed ^ (0xD5 + hidden.len() as u64),
            ));
        }
        let last_hidden = *config.hidden_dims.last().expect("validated non-empty");
        let output = SampledOutputLayer::new(
            last_hidden,
            config.output_dim,
            &config.lsh,
            layout,
            config.precision,
            config.seed ^ 0x0707,
        );
        Ok(Network {
            config,
            input,
            hidden,
            output,
        })
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The sparse input layer.
    pub fn input(&self) -> &SparseInputLayer {
        &self.input
    }

    /// The dense hidden layers between input and output (empty for the
    /// paper's standard one-hidden-layer architecture).
    pub fn hidden_layers(&self) -> &[DenseLayer] {
        &self.hidden
    }

    /// The LSH-sampled output layer.
    pub fn output(&self) -> &SampledOutputLayer {
        &self.output
    }

    /// Exclusive access to all layers (checkpoint restore).
    pub(crate) fn layers_mut(
        &mut self,
    ) -> (
        &mut SparseInputLayer,
        &mut [DenseLayer],
        &mut SampledOutputLayer,
    ) {
        (&mut self.input, &mut self.hidden, &mut self.output)
    }

    /// Total learnable parameters (Table 1's "# Model Parameters").
    pub fn num_parameters(&self) -> u64 {
        self.input.params().num_parameters()
            + self
                .hidden
                .iter()
                .map(|l| l.params().num_parameters())
                .sum::<u64>()
            + self.output.params().num_parameters()
    }

    /// Allocate a worker scratch sized for this network.
    pub fn make_scratch(&self) -> WorkerScratch {
        WorkerScratch::new(
            &self.config.hidden_dims,
            self.config.output_dim,
            self.output.family(),
        )
    }

    /// Run the input + hidden stack, filling `scratch.acts`. Applies bf16
    /// activation quantization per the configured precision (§4.4).
    pub fn forward_hidden(&self, x: SparseVecRef<'_>, scratch: &mut WorkerScratch) {
        let ks = scratch.kernels;
        let mut acts = std::mem::take(&mut scratch.acts);
        self.input.forward(x, &mut acts[0], &ks);
        if self.config.precision != Precision::Fp32 {
            slide_simd::bf16::quantize_f32_slice(&mut acts[0]);
        }
        for (i, layer) in self.hidden.iter().enumerate() {
            let (src, dst) = acts.split_at_mut(i + 1);
            layer.forward(&src[i], &mut dst[0], &ks, &mut scratch.gather);
            if self.config.precision != Precision::Fp32 {
                slide_simd::bf16::quantize_f32_slice(&mut dst[0]);
            }
        }
        scratch.acts = acts;
    }

    /// Full forward + backward for one training sample. `scale` is the
    /// inverse batch size (gradients accumulate batch means); `stamp`
    /// identifies the batch for sparse-row marking; `salt` decorrelates
    /// active-set padding across samples.
    ///
    /// Returns the sample's cross-entropy loss.
    pub fn train_sample(
        &self,
        x: SparseVecRef<'_>,
        labels: &[u32],
        scratch: &mut WorkerScratch,
        scale: f32,
        stamp: u32,
        salt: u64,
    ) -> f32 {
        self.forward_hidden(x, scratch);
        let last = self.config.hidden_dims.len() - 1;

        // Temporarily detach the buffers so the output layer can borrow the
        // scratch mutably alongside them.
        let mut grads = std::mem::take(&mut scratch.grads);
        let acts = std::mem::take(&mut scratch.acts);

        grads[last].fill(0.0);
        let loss = self.output.train_sample(
            &acts[last],
            labels,
            scratch,
            scale,
            stamp,
            &mut grads[last],
            salt,
        );

        if loss != 0.0 {
            let ks = scratch.kernels;
            relu_backward_mask(&acts[last], &mut grads[last]);
            for i in (0..self.hidden.len()).rev() {
                let (lo, hi) = grads.split_at_mut(i + 1);
                let dy = &hi[0];
                let dx = &mut lo[i];
                dx.fill(0.0);
                self.hidden[i].backward(&acts[i], dy, Some(dx), scale, &ks, &mut scratch.gather);
                relu_backward_mask(&acts[i], dx);
            }
            self.input
                .backward(x, &grads[0], scale, stamp, &mut scratch.touched_in, &ks);
        }

        scratch.grads = grads;
        scratch.acts = acts;
        loss
    }

    /// Predict the top-`k` labels for one input. `exact` scores every output
    /// unit (full softmax argmax); otherwise only the LSH-retrieved active
    /// set is scored (SLIDE inference).
    pub fn predict(
        &self,
        x: SparseVecRef<'_>,
        k: usize,
        scratch: &mut WorkerScratch,
        exact: bool,
        salt: u64,
    ) -> Vec<u32> {
        self.forward_hidden(x, scratch);
        let last = self.config.hidden_dims.len() - 1;
        let acts = std::mem::take(&mut scratch.acts);
        let result = if exact {
            self.output.predict_topk_full(&acts[last], k, scratch)
        } else {
            self.output
                .predict_topk_sampled(&acts[last], k, scratch, salt)
        };
        scratch.acts = acts;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LshConfig;

    fn tiny_config() -> NetworkConfig {
        let mut cfg = NetworkConfig::standard(64, 16, 32);
        cfg.lsh = LshConfig {
            tables: 8,
            key_bits: 4,
            min_active: 8,
            ..Default::default()
        };
        cfg
    }

    #[test]
    fn construction_and_parameter_count() {
        let net = Network::new(tiny_config()).unwrap();
        assert_eq!(net.num_parameters(), 64 * 16 + 16 + 16 * 32 + 32);
        assert!(net.hidden_layers().is_empty());
    }

    #[test]
    fn deep_network_builds_and_runs() {
        let mut cfg = tiny_config();
        cfg.hidden_dims = vec![16, 12, 8];
        let net = Network::new(cfg).unwrap();
        assert_eq!(net.hidden_layers().len(), 2);
        let mut scratch = net.make_scratch();
        let idx = [3u32, 40];
        let val = [1.0f32, -0.5];
        let x = SparseVecRef::new(&idx, &val);
        let loss = net.train_sample(x, &[5], &mut scratch, 1.0, 1, 0);
        assert!(loss.is_finite() && loss > 0.0);
        let topk = net.predict(x, 3, &mut scratch, true, 0);
        assert_eq!(topk.len(), 3);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = tiny_config();
        cfg.output_dim = 0;
        assert!(Network::new(cfg).is_err());
    }

    #[test]
    fn training_reduces_loss_single_sample() {
        let net = Network::new(tiny_config()).unwrap();
        let mut scratch = net.make_scratch();
        let idx = [1u32, 5, 20];
        let val = [1.0f32, 0.5, 0.25];
        let x = SparseVecRef::new(&idx, &val);
        let step = slide_simd::AdamStep::bias_corrected(0.05, 0.9, 0.999, 1e-8, 1);
        let mut losses = Vec::new();
        for t in 1..=20u32 {
            let loss = net.train_sample(x, &[7], &mut scratch, 1.0, t, 0);
            losses.push(loss);
            // Apply updates for touched rows.
            for &r in scratch.touched_out.clone().iter() {
                unsafe {
                    net.output().params().adam_row(r as usize, step);
                    net.output().params().adam_bias_at(r as usize, step);
                }
            }
            for &r in scratch.touched_in.clone().iter() {
                unsafe { net.input().params().adam_row(r as usize, step) };
            }
            unsafe { net.input().params().adam_bias_full(step) };
            scratch.touched_out.clear();
            scratch.touched_in.clear();
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: {losses:?}"
        );
    }

    #[test]
    fn gradient_check_output_layer() {
        // Finite-difference check of dL/dW for an output row on the active
        // path: perturb one weight, compare loss delta to the accumulated
        // gradient. Uses min_active == output_dim so the softmax is exact.
        let mut cfg = tiny_config();
        cfg.lsh.min_active = 32; // full softmax
        let net = Network::new(cfg).unwrap();
        let mut scratch = net.make_scratch();
        let idx = [2u32, 9];
        let val = [0.8f32, -0.3];
        let x = SparseVecRef::new(&idx, &val);
        let labels = [4u32];

        // Analytic gradient: train_sample with scale 1 accumulates dL/dW.
        let _ = net.train_sample(x, &labels, &mut scratch, 1.0, 1, 0);
        // Read the accumulated gradient for (row 4, col 0) — the label row.
        let g_analytic = net.output().params().grad_at(4, 0);

        // Numeric gradient via central differences on the same loss
        // (scale 0 so the probes accumulate nothing).
        let eps = 1e-3;
        let loss_with = |delta: f32| {
            unsafe { net.output().params().nudge_weight(4, 0, delta) };
            let mut s = net.make_scratch();
            // min_active == output_dim ⇒ deterministic full active set.
            let l = net.train_sample(x, &labels, &mut s, 0.0, 2, 0);
            unsafe { net.output().params().nudge_weight(4, 0, -delta) };
            l
        };
        let lp = loss_with(eps);
        let lm = loss_with(-eps);
        let g_numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (g_analytic - g_numeric).abs() <= 2e-2 * g_numeric.abs().max(1e-2),
            "analytic {g_analytic} vs numeric {g_numeric}"
        );
    }
}
