//! The training loop: HOGWILD batch parallelism, vectorized sparse ADAM,
//! and the exponential hash-table rebuild schedule (§2, §4.1.1, §4.3.1).
//!
//! Per batch:
//!
//! 1. the batch's sparse instances are copied into one coalesced buffer
//!    (or per-instance allocations in the naive-layout ablation, §4.1),
//! 2. workers pull samples off a shared cursor and run the full
//!    forward/backward per sample, accumulating gradients racily,
//! 3. the rows stamped active (the paper's `p²` fraction) get one fused
//!    ADAM step each, partitioned across workers; dense hidden layers use
//!    the flat 1-D arena sweep of Figure 3,
//! 4. periodically the output layer's hash tables are rebuilt from the
//!    current weights, with the interval growing exponentially.

use crate::config::{RebuildMode, TrainerConfig};
use crate::network::Network;
use crate::pool::ThreadPool;
use crate::scratch::{ScratchSlots, StampSet, WorkerScratch};
use slide_data::{precision_at_k, Dataset, EpochBatches, MeanMetric};
use slide_mem::{BatchStore, FragmentedBatch, SparseBatch};
use slide_simd::AdamStep;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Where an epoch's wall-clock time went — the breakdown behind the paper's
/// §5.5–§5.7 attribution of the overall speedup to individual optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Copying the batch into its (coalesced or fragmented) store.
    pub batch_build: f64,
    /// HOGWILD forward/backward over all samples (hashing, active sets,
    /// kernels, gradient accumulation).
    pub forward_backward: f64,
    /// The sparse/dense ADAM phase.
    pub optimizer: f64,
    /// Hash-table rebuild / incremental refresh.
    pub rebuild: f64,
}

impl PhaseBreakdown {
    fn add(&mut self, other: PhaseBreakdown) {
        self.batch_build += other.batch_build;
        self.forward_backward += other.forward_backward;
        self.optimizer += other.optimizer;
        self.rebuild += other.rebuild;
    }

    /// Total accounted seconds.
    pub fn total(&self) -> f64 {
        self.batch_build + self.forward_backward + self.optimizer + self.rebuild
    }
}

/// Timing/loss summary of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Wall-clock seconds for the epoch (training only).
    pub seconds: f64,
    /// Mean per-sample cross-entropy.
    pub mean_loss: f64,
    /// Batches executed.
    pub batches: u32,
    /// Samples seen.
    pub samples: usize,
    /// Per-phase time attribution.
    pub phases: PhaseBreakdown,
}

/// One point of a Figure 6 convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvergencePoint {
    /// Epoch index (1-based after the epoch completes).
    pub epoch: u32,
    /// Cumulative training seconds (x-axis of Figure 6 top row).
    pub elapsed_seconds: f64,
    /// Seconds spent in this epoch alone.
    pub epoch_seconds: f64,
    /// Test P@1 after this epoch (y-axis of Figure 6).
    pub p_at_1: f64,
    /// Mean training loss during this epoch.
    pub mean_loss: f64,
}

/// A whole convergence curve: the series plotted in Figure 6.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvergenceLog {
    /// Curve points in epoch order.
    pub points: Vec<ConvergencePoint>,
}

impl ConvergenceLog {
    /// Render as CSV (`epoch,elapsed_seconds,epoch_seconds,p_at_1,mean_loss`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,elapsed_seconds,epoch_seconds,p_at_1,mean_loss\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.5},{:.5}\n",
                p.epoch, p.elapsed_seconds, p.epoch_seconds, p.p_at_1, p.mean_loss
            ));
        }
        out
    }

    /// Average epoch seconds across the curve (Figure 6 bottom row / Table 2).
    pub fn avg_epoch_seconds(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.epoch_seconds).sum::<f64>() / self.points.len() as f64
    }

    /// Final P@1 (Figure 6 bottom row's accuracy line).
    pub fn final_p_at_1(&self) -> f64 {
        self.points.last().map(|p| p.p_at_1).unwrap_or(0.0)
    }
}

/// How [`Trainer::evaluate`] scores predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Score every output unit (exact argmax).
    Exact,
    /// Score only the LSH-retrieved active set (SLIDE inference).
    Sampled,
}

/// Sendable raw pointer for disjoint chunked writes from pool workers.
/// Accessed only through [`SendMutPtr::slice_at`] so closures capture the
/// wrapper (which is `Sync`) rather than the raw field.
#[derive(Clone, Copy)]
struct SendMutPtr(*mut u32);
unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}

impl SendMutPtr {
    /// Mutable slice at `offset` of length `len`.
    ///
    /// # Safety
    ///
    /// Slices handed to concurrent workers must be disjoint and in-bounds.
    unsafe fn slice_at<'a>(self, offset: usize, len: usize) -> &'a mut [u32] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

/// Drives training of a [`Network`] on a worker pool.
pub struct Trainer {
    network: Network,
    config: TrainerConfig,
    pool: ThreadPool,
    scratches: Vec<WorkerScratch>,
    adam_t: u64,
    batch_stamp: u32,
    batches_until_rebuild: u32,
    rebuild_period: f32,
    touched_out: Vec<u32>,
    touched_in: Vec<u32>,
    rebuild_keys: Vec<u32>,
    /// Rows awaiting an incremental refresh (RebuildMode::Incremental).
    pending_refresh: Vec<u32>,
    pending_stamp: StampSet,
    ticks_since_full: u32,
    epoch_phases: PhaseBreakdown,
    current_lr: f32,
    total_train_seconds: f64,
}

impl Trainer {
    /// Create a trainer (spawns the worker pool and per-worker scratch).
    ///
    /// # Errors
    ///
    /// Returns the message from [`TrainerConfig::validate`] on an invalid
    /// configuration.
    pub fn new(network: Network, config: TrainerConfig) -> Result<Self, String> {
        config.validate()?;
        let threads = config.effective_threads();
        let scratches = (0..threads).map(|_| network.make_scratch()).collect();
        let mut pending_stamp = StampSet::new(network.config().output_dim);
        pending_stamp.begin();
        Ok(Trainer {
            pool: ThreadPool::new(threads),
            scratches,
            adam_t: 0,
            batch_stamp: 0,
            batches_until_rebuild: config.rebuild.initial_period,
            rebuild_period: config.rebuild.initial_period as f32,
            touched_out: Vec::new(),
            touched_in: Vec::new(),
            rebuild_keys: Vec::new(),
            pending_refresh: Vec::new(),
            pending_stamp,
            ticks_since_full: 0,
            epoch_phases: PhaseBreakdown::default(),
            current_lr: config.learning_rate,
            total_train_seconds: 0.0,
            network,
            config,
        })
    }

    /// The trained network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Consume the trainer, returning the network.
    pub fn into_network(self) -> Network {
        self.network
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Worker threads in use.
    pub fn threads(&self) -> usize {
        self.pool.workers()
    }

    /// Cumulative training wall-clock seconds so far.
    pub fn total_train_seconds(&self) -> f64 {
        self.total_train_seconds
    }

    /// ADAM steps (batches) applied so far. Together with
    /// [`Trainer::set_adam_steps`] this lets a resumed-from-checkpoint
    /// trainer continue bit-identically: the step count drives both the
    /// ADAM bias correction and the per-batch active-set padding salt, so a
    /// fresh trainer that restores a [`crate::load_checkpoint`] snapshot
    /// must also restore the step count to reproduce an uninterrupted run.
    pub fn adam_steps(&self) -> u64 {
        self.adam_t
    }

    /// Resume the optimizer clock at `t` applied batches (see
    /// [`Trainer::adam_steps`]).
    pub fn set_adam_steps(&mut self, t: u64) {
        self.adam_t = t;
    }

    /// Train one epoch (shuffled batches) and return its stats.
    ///
    /// # Panics
    ///
    /// Panics if `data`'s dimensions disagree with the network's.
    pub fn train_epoch(&mut self, data: &Dataset, epoch: u64) -> EpochStats {
        assert_eq!(
            data.feature_dim(),
            self.network.config().input_dim,
            "Trainer: dataset feature_dim mismatch"
        );
        assert_eq!(
            data.label_dim(),
            self.network.config().output_dim,
            "Trainer: dataset label_dim mismatch"
        );
        for s in &mut self.scratches {
            s.loss = MeanMetric::new();
        }
        self.epoch_phases = PhaseBreakdown::default();
        self.current_lr = self
            .config
            .lr_schedule
            .lr_at(self.config.learning_rate, epoch);
        let start = Instant::now();
        let plan = EpochBatches::new(
            data.len(),
            self.config.batch_size,
            epoch,
            self.config.shuffle_seed,
        );
        let mut batches = 0u32;
        for batch in plan.iter() {
            self.train_batch(data, batch);
            batches += 1;
        }
        let seconds = start.elapsed().as_secs_f64();
        self.total_train_seconds += seconds;
        let mut loss = MeanMetric::new();
        for s in &self.scratches {
            loss.merge(s.loss);
        }
        EpochStats {
            seconds,
            mean_loss: loss.mean(),
            batches,
            samples: data.len(),
            phases: self.epoch_phases,
        }
    }

    /// Train on one explicit batch of sample indices.
    pub fn train_batch(&mut self, data: &Dataset, indices: &[u32]) {
        if indices.is_empty() {
            return;
        }
        self.adam_t += 1;
        self.batch_stamp = self.batch_stamp.wrapping_add(1);
        if self.batch_stamp == 0 {
            self.batch_stamp = 1;
        }
        let stamp = self.batch_stamp;
        let scale = 1.0 / indices.len() as f32;
        let mut phases = PhaseBreakdown::default();

        // Resolve the kernel dispatch table once per batch and hand a copy
        // to every worker: the forward/backward hot loops then run with zero
        // policy loads, while `set_policy`/`set_kernel_variant` changes
        // still take effect at the next batch boundary.
        let kernels = slide_simd::KernelSet::resolve();
        for s in &mut self.scratches {
            s.kernels = kernels;
        }

        // Copy the batch into the configured data layout (§4.1: this copy
        // *is* the optimization — one contiguous buffer all threads share).
        let t0 = Instant::now();
        let store = build_store(data, indices, self.network.config().memory.coalesced_data);
        phases.batch_build = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let slots = ScratchSlots::new(&mut self.scratches);
        let net = &self.network;
        let cursor = AtomicUsize::new(0);
        let salt_base = self.adam_t << 20;
        self.pool.run(&|worker| {
            // SAFETY: worker ids are distinct; slots outlive `run`.
            let scratch = unsafe { slots.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= indices.len() {
                    break;
                }
                let x = store.get(i);
                let labels = data.labels(indices[i] as usize);
                let loss = net.train_sample(x, labels, scratch, scale, stamp, salt_base | i as u64);
                scratch.loss.push(loss);
            }
        });

        phases.forward_backward = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let step = AdamStep::bias_corrected(
            self.current_lr,
            self.config.beta1,
            self.config.beta2,
            self.config.eps,
            self.adam_t,
        );
        self.apply_updates(step);
        phases.optimizer = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        if self.config.rebuild.mode == RebuildMode::Incremental {
            for i in 0..self.touched_out.len() {
                let r = self.touched_out[i];
                if self.pending_stamp.insert(r) {
                    self.pending_refresh.push(r);
                }
            }
        }
        self.batches_until_rebuild = self.batches_until_rebuild.saturating_sub(1);
        if self.batches_until_rebuild == 0 {
            match self.config.rebuild.mode {
                RebuildMode::Full => self.rebuild_tables(),
                RebuildMode::Incremental => {
                    self.ticks_since_full += 1;
                    if self.ticks_since_full >= self.config.rebuild.full_rebuild_every.max(1) {
                        // Rebalance: surgery-only maintenance biases bucket
                        // membership toward recently-moved neurons.
                        self.rebuild_tables();
                        self.ticks_since_full = 0;
                        self.pending_refresh.clear();
                    } else {
                        let pending = std::mem::take(&mut self.pending_refresh);
                        self.network
                            .output()
                            .refresh_rows(&pending, &mut self.scratches[0]);
                    }
                    self.pending_stamp.begin();
                }
            }
            self.rebuild_period = (self.rebuild_period * self.config.rebuild.growth)
                .min(self.config.rebuild.max_period as f32);
            self.batches_until_rebuild = self.rebuild_period.round().max(1.0) as u32;
        }
        phases.rebuild = t0.elapsed().as_secs_f64();
        self.epoch_phases.add(phases);
    }

    /// Apply the sparse/dense ADAM phase for all layers.
    fn apply_updates(&mut self, step: AdamStep) {
        self.touched_out.clear();
        self.touched_in.clear();
        for s in &mut self.scratches {
            self.touched_out.append(&mut s.touched_out);
            self.touched_in.append(&mut s.touched_in);
        }
        let net = &self.network;

        // Output layer: only the batch-active rows (the p² update).
        let rows = &self.touched_out;
        let out_params = net.output().params();
        self.pool.parallel_for(rows.len(), 32, &|i| {
            let r = rows[i] as usize;
            // SAFETY: the touched list is duplicate-free (atomic stamp swap),
            // so concurrent rows are distinct.
            unsafe {
                out_params.adam_row(r, step);
                out_params.adam_bias_at(r, step);
            }
        });

        // Input layer: rows are features seen in the batch; bias is the
        // hidden vector, updated densely.
        let rows_in = &self.touched_in;
        let in_params = net.input().params();
        self.pool.parallel_for(rows_in.len(), 32, &|i| {
            // SAFETY: as above.
            unsafe { in_params.adam_row(rows_in[i] as usize, step) };
        });
        // SAFETY: single caller; workers are parked.
        unsafe { in_params.adam_bias_full(step) };

        // Dense hidden layers: every row is active; use the flat 1-D arena
        // sweep when the layout allows (Figure 3), else row-by-row.
        for layer in net.hidden_layers() {
            let p = layer.params();
            let total = p.rows() * p.cols();
            if p.supports_flat_adam() {
                let chunk = 16 * 1024;
                let n_chunks = total.div_ceil(chunk);
                self.pool.parallel_for(n_chunks, 1, &|c| {
                    let start = c * chunk;
                    let len = chunk.min(total - start);
                    // SAFETY: chunks are disjoint flat spans.
                    unsafe { p.adam_flat_span(start, len, step) };
                });
            } else {
                self.pool.parallel_for(p.rows(), 8, &|r| {
                    // SAFETY: rows are distinct.
                    unsafe { p.adam_row(r, step) };
                });
            }
            // SAFETY: single caller; workers are parked.
            unsafe { p.adam_bias_full(step) };
        }
    }

    /// Parallel two-phase hash-table rebuild: compute every neuron's keys
    /// (parallel, disjoint output chunks), then repopulate the tables.
    pub fn rebuild_tables(&mut self) {
        let out = self.network.output();
        let l = out.family().tables();
        let rows = out.output_dim();
        self.rebuild_keys.resize(rows * l, 0);
        let keys_ptr = SendMutPtr(self.rebuild_keys.as_mut_ptr());
        let slots = ScratchSlots::new(&mut self.scratches);
        let net = &self.network;
        let cursor = AtomicUsize::new(0);
        const CHUNK: usize = 64;
        self.pool.run(&|worker| {
            // SAFETY: distinct worker ids; rows chunks are disjoint.
            let scratch = unsafe { slots.get(worker) };
            loop {
                let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= rows {
                    break;
                }
                let end = (start + CHUNK).min(rows);
                for r in start..end {
                    let keys = unsafe { keys_ptr.slice_at(r * l, l) };
                    net.output().compute_row_keys(r, scratch, keys);
                }
            }
        });
        out.rebuild_from_keys(&self.rebuild_keys);
    }

    /// Evaluate P@k over (up to `max_samples` of) a dataset, in parallel.
    pub fn evaluate(
        &mut self,
        data: &Dataset,
        k: usize,
        mode: EvalMode,
        max_samples: Option<usize>,
    ) -> f64 {
        let n = max_samples.unwrap_or(usize::MAX).min(data.len());
        if n == 0 {
            return 0.0;
        }
        // One dispatch-table resolution per evaluation pass (see
        // `train_batch`).
        let kernels = slide_simd::KernelSet::resolve();
        for s in &mut self.scratches {
            s.metric = MeanMetric::new();
            s.kernels = kernels;
        }
        let slots = ScratchSlots::new(&mut self.scratches);
        let net = &self.network;
        let cursor = AtomicUsize::new(0);
        let exact = mode == EvalMode::Exact;
        self.pool.run(&|worker| {
            // SAFETY: distinct worker ids.
            let scratch = unsafe { slots.get(worker) };
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let labels = data.labels(i);
                if labels.is_empty() {
                    continue;
                }
                let topk = net.predict(data.features(i), k, scratch, exact, i as u64);
                let p = if topk.len() < k {
                    0.0
                } else {
                    precision_at_k(&topk, labels, k)
                };
                scratch.metric.push(p);
            }
        });
        let mut metric = MeanMetric::new();
        for s in &self.scratches {
            metric.merge(s.metric);
        }
        metric.mean()
    }

    /// Train `epochs` epochs, evaluating P@1 after each, and return the
    /// Figure 6-style convergence curve. `eval_samples` caps evaluation cost
    /// (None = whole test set); evaluation time is *not* counted in the
    /// curve's wall-clock axis, matching the paper's "training time" metric.
    pub fn run_convergence(
        &mut self,
        train: &Dataset,
        test: &Dataset,
        epochs: u32,
        eval_mode: EvalMode,
        eval_samples: Option<usize>,
    ) -> ConvergenceLog {
        let mut log = ConvergenceLog::default();
        let mut elapsed = 0.0;
        for epoch in 0..epochs {
            let stats = self.train_epoch(train, epoch as u64);
            elapsed += stats.seconds;
            let p1 = self.evaluate(test, 1, eval_mode, eval_samples);
            log.points.push(ConvergencePoint {
                epoch: epoch + 1,
                elapsed_seconds: elapsed,
                epoch_seconds: stats.seconds,
                p_at_1: p1,
                mean_loss: stats.mean_loss,
            });
        }
        log
    }
}

fn build_store(data: &Dataset, indices: &[u32], coalesced: bool) -> BatchStore {
    if coalesced {
        let mut batch = SparseBatch::with_capacity(indices.len(), indices.len() * 8);
        for &i in indices {
            let x = data.features(i as usize);
            batch.push(x.indices, x.values);
        }
        BatchStore::Coalesced(batch)
    } else {
        let mut batch = FragmentedBatch::new();
        for &i in indices {
            let x = data.features(i as usize);
            batch.push(x.indices, x.values);
        }
        BatchStore::Fragmented(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LshConfig, NetworkConfig, Precision};
    use slide_data::{generate_synthetic, SynthConfig};

    fn tiny_data() -> slide_data::SynthDataset {
        generate_synthetic(&SynthConfig {
            feature_dim: 256,
            label_dim: 64,
            n_train: 600,
            n_test: 150,
            proto_nnz: 12,
            keep_fraction: 0.8,
            noise_nnz: 2,
            labels_per_sample: 1,
            zipf_exponent: 0.4,
            seed: 11,
        })
    }

    fn tiny_network() -> Network {
        let mut cfg = NetworkConfig::standard(256, 24, 64);
        cfg.lsh = LshConfig {
            tables: 12,
            key_bits: 5,
            min_active: 16,
            ..Default::default()
        };
        Network::new(cfg).unwrap()
    }

    fn trainer(threads: usize) -> Trainer {
        let mut tc = TrainerConfig {
            batch_size: 64,
            learning_rate: 2e-3,
            threads,
            ..Default::default()
        };
        tc.rebuild.initial_period = 5;
        Trainer::new(tiny_network(), tc).unwrap()
    }

    #[test]
    fn single_thread_training_learns_synthetic_task() {
        let data = tiny_data();
        let mut t = trainer(1);
        let before = t.evaluate(&data.test, 1, EvalMode::Exact, None);
        let mut last_loss = f64::INFINITY;
        for epoch in 0..8 {
            let stats = t.train_epoch(&data.train, epoch);
            assert!(stats.mean_loss.is_finite());
            last_loss = stats.mean_loss;
        }
        let after = t.evaluate(&data.test, 1, EvalMode::Exact, None);
        assert!(
            after > before + 0.2,
            "P@1 should climb well above chance: {before:.3} -> {after:.3} (loss {last_loss:.3})"
        );
    }

    #[test]
    fn multi_thread_training_learns_too() {
        let data = tiny_data();
        let mut t = trainer(4);
        for epoch in 0..8 {
            t.train_epoch(&data.train, epoch);
        }
        let p1 = t.evaluate(&data.test, 1, EvalMode::Exact, None);
        assert!(p1 > 0.3, "multi-thread P@1 {p1:.3}");
    }

    #[test]
    fn sampled_eval_tracks_exact_eval() {
        let data = tiny_data();
        let mut t = trainer(2);
        for epoch in 0..6 {
            t.train_epoch(&data.train, epoch);
        }
        let exact = t.evaluate(&data.test, 1, EvalMode::Exact, None);
        let sampled = t.evaluate(&data.test, 1, EvalMode::Sampled, None);
        // LSH inference can only miss retrievals; it should stay in the same
        // ballpark once tables are warm.
        assert!(
            sampled > exact * 0.5,
            "sampled {sampled:.3} vs exact {exact:.3}"
        );
    }

    #[test]
    fn convergence_log_is_monotone_in_time() {
        let data = tiny_data();
        let mut t = trainer(2);
        let log = t.run_convergence(&data.train, &data.test, 3, EvalMode::Exact, Some(50));
        assert_eq!(log.points.len(), 3);
        assert!(log
            .points
            .windows(2)
            .all(|w| w[1].elapsed_seconds >= w[0].elapsed_seconds));
        assert!(log.avg_epoch_seconds() > 0.0);
        let csv = log.to_csv();
        assert!(csv.lines().count() == 4 && csv.starts_with("epoch,"));
    }

    #[test]
    fn deterministic_across_runs_single_thread() {
        let data = tiny_data();
        let run = || {
            let mut t = trainer(1);
            for epoch in 0..2 {
                t.train_epoch(&data.train, epoch);
            }
            t.evaluate(&data.test, 1, EvalMode::Exact, None)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fragmented_memory_mode_trains() {
        let data = tiny_data();
        let mut cfg = NetworkConfig::standard(256, 24, 64);
        cfg.lsh.min_active = 16;
        cfg.lsh.tables = 12;
        cfg.lsh.key_bits = 5;
        cfg.memory.coalesced_params = false;
        cfg.memory.coalesced_data = false;
        let mut tc = TrainerConfig {
            batch_size: 64,
            learning_rate: 2e-3,
            threads: 2,
            ..Default::default()
        };
        tc.rebuild.initial_period = 5;
        let mut t = Trainer::new(Network::new(cfg).unwrap(), tc).unwrap();
        for epoch in 0..6 {
            t.train_epoch(&data.train, epoch);
        }
        let p1 = t.evaluate(&data.test, 1, EvalMode::Exact, None);
        assert!(p1 > 0.3, "fragmented-mode P@1 {p1:.3}");
    }

    #[test]
    fn bf16_modes_train() {
        let data = tiny_data();
        for precision in [Precision::Bf16Activations, Precision::Bf16Both] {
            let mut cfg = NetworkConfig::standard(256, 24, 64);
            cfg.lsh.min_active = 16;
            cfg.lsh.tables = 12;
            cfg.lsh.key_bits = 5;
            cfg.precision = precision;
            let mut tc = TrainerConfig {
                batch_size: 64,
                learning_rate: 2e-3,
                threads: 2,
                ..Default::default()
            };
            tc.rebuild.initial_period = 5;
            let mut t = Trainer::new(Network::new(cfg).unwrap(), tc).unwrap();
            for epoch in 0..6 {
                t.train_epoch(&data.train, epoch);
            }
            let p1 = t.evaluate(&data.test, 1, EvalMode::Exact, None);
            assert!(p1 > 0.25, "{precision:?} P@1 {p1:.3}");
        }
    }

    #[test]
    fn rebuild_keeps_tables_consistent() {
        let data = tiny_data();
        let mut t = trainer(2);
        t.train_epoch(&data.train, 0);
        let stats_before = t.network().output().table_stats();
        t.rebuild_tables();
        let stats_after = t.network().output().table_stats();
        // Every neuron is inserted into every table both times.
        assert_eq!(stats_before.stored, stats_after.stored);
        assert_eq!(stats_after.stored, 64 * 12);
    }

    #[test]
    fn lr_schedule_is_applied_per_epoch() {
        let data = tiny_data();
        let mut tc = TrainerConfig {
            batch_size: 64,
            learning_rate: 2e-3,
            threads: 1,
            ..Default::default()
        };
        tc.lr_schedule = crate::config::LrSchedule::StepDecay {
            every_epochs: 1,
            factor: 1e-6, // effectively freezes training after epoch 0
        };
        let mut t = Trainer::new(tiny_network(), tc).unwrap();
        t.train_epoch(&data.train, 0);
        let p_after_first = t.evaluate(&data.test, 1, EvalMode::Exact, None);
        for epoch in 1..4 {
            t.train_epoch(&data.train, epoch);
        }
        let p_after_frozen = t.evaluate(&data.test, 1, EvalMode::Exact, None);
        assert!(
            (p_after_first - p_after_frozen).abs() < 0.06,
            "decayed lr should freeze accuracy: {p_after_first:.3} vs {p_after_frozen:.3}"
        );
    }

    #[test]
    fn incremental_rebuild_trains_as_well_as_full() {
        let data = tiny_data();
        let score = |mode: crate::config::RebuildMode| {
            let mut tc = TrainerConfig {
                batch_size: 64,
                learning_rate: 2e-3,
                threads: 2,
                ..Default::default()
            };
            tc.rebuild.initial_period = 5;
            tc.rebuild.mode = mode;
            let mut t = Trainer::new(tiny_network(), tc).unwrap();
            for epoch in 0..8 {
                t.train_epoch(&data.train, epoch);
            }
            t.evaluate(&data.test, 1, EvalMode::Exact, None)
        };
        let full = score(crate::config::RebuildMode::Full);
        let incr = score(crate::config::RebuildMode::Incremental);
        assert!(full > 0.35, "full {full:.3}");
        assert!(incr > 0.35, "incremental {incr:.3}");
    }

    #[test]
    fn incremental_refresh_moves_changed_neurons() {
        let data = tiny_data();
        let mut t = trainer(1);
        t.train_epoch(&data.train, 0);
        let net = t.network();
        // Change one neuron's weights drastically; its keys must change and
        // querying with the NEW weight vector must retrieve it post-refresh.
        let r = 7usize;
        unsafe {
            for c in 0..net.output().params().cols() {
                net.output()
                    .params()
                    .nudge_weight(r, c, ((c % 5) as f32) * 3.0 - 6.0);
            }
        }
        let mut scratch = net.make_scratch();
        let old_keys = net.output().cached_keys(r);
        let moved = net.output().refresh_rows(&[r as u32], &mut scratch);
        assert_eq!(moved, 1, "drastic weight change should move buckets");
        let new_keys = net.output().cached_keys(r);
        assert_ne!(old_keys, new_keys);
        // The neuron is findable under its own (new) weight vector.
        let w = net.output().params().row_f32(r);
        net.output().select_active(&w, &[], &mut scratch, 0);
        assert!(scratch.active.contains(&(r as u32)));
    }

    #[test]
    fn phase_breakdown_accounts_for_epoch() {
        let data = tiny_data();
        let mut t = trainer(2);
        let stats = t.train_epoch(&data.train, 0);
        let p = stats.phases;
        assert!(p.forward_backward > 0.0);
        assert!(p.optimizer > 0.0);
        assert!(p.batch_build >= 0.0);
        // The phases should account for the bulk of the epoch.
        assert!(
            p.total() <= stats.seconds * 1.05,
            "phases {:.4} vs epoch {:.4}",
            p.total(),
            stats.seconds
        );
        assert!(
            p.total() >= stats.seconds * 0.5,
            "phases {:.4} unaccounted vs epoch {:.4}",
            p.total(),
            stats.seconds
        );
    }

    #[test]
    fn empty_batch_is_ignored() {
        let data = tiny_data();
        let mut t = trainer(1);
        t.train_batch(&data.train, &[]);
        assert_eq!(t.total_train_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "feature_dim mismatch")]
    fn dimension_mismatch_panics() {
        let mut t = trainer(1);
        let wrong = slide_data::Dataset::new(99, 64);
        t.train_epoch(&wrong, 0);
    }
}
