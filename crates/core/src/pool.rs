//! A persistent worker pool — the OpenMP-parallel-for stand-in.
//!
//! The paper's implementation relies on OpenMP's long-lived worker threads
//! (§2, §4.1.1); spawning fresh threads per batch would bury SLIDE's
//! sub-millisecond per-batch compute in thread start-up latency. This pool
//! keeps `n` workers parked on a condition variable and runs *borrowed*
//! closures: `run` does not return until every worker has finished, which is
//! what makes handing the closure to the workers by raw pointer sound.

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

type Job = *const (dyn Fn(usize) + Sync + 'static);

struct PoolShared {
    /// Current job pointer + generation; guarded by `lock`.
    job: Mutex<(Option<Job>, u64)>,
    start: Condvar,
    done_lock: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
    shutdown: AtomicBool,
}

// SAFETY: the raw job pointer is only dereferenced while `run` blocks, so the
// referent outlives every use (see `run`).
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

/// A fixed-size pool of parked worker threads executing borrowed closures.
///
/// # Examples
///
/// ```
/// use slide_core::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(&|worker_id| {
///     assert!(worker_id < 4);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl ThreadPool {
    /// Spawn `workers` parked threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            job: Mutex::new((None, 0)),
            start: Condvar::new(),
            done_lock: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slide-worker-{id}"))
                    .spawn(move || worker_loop(id, &shared))
                    .expect("spawn slide worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `f(worker_id)` once on every worker concurrently, blocking
    /// until all calls return.
    ///
    /// # Panics
    ///
    /// Re-panics on the caller if any worker's closure panicked.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        // Publish the job. The pointer stays valid because we do not return
        // until every worker reports done; the lifetime erasure below is
        // sound for the same reason.
        let ptr: *const (dyn Fn(usize) + Sync) = f;
        // SAFETY: same-layout fat-pointer transmute, erasing the borrow
        // lifetime; the referent outlives all uses (we block below).
        let job: Job = unsafe { std::mem::transmute(ptr) };
        {
            let mut guard = self.shared.job.lock();
            // Reset the panic flag for this generation while holding the job
            // lock (no worker can be running a closure here: the previous
            // `run` drained the done counter before returning), so a stale
            // flag from an earlier generation can never leak into this one.
            self.shared.panicked.store(false, Ordering::SeqCst);
            guard.0 = Some(job);
            guard.1 = guard.1.wrapping_add(1);
            self.shared.start.notify_all();
        }
        // Wait for all workers.
        let mut done = self.shared.done_lock.lock();
        while *done < self.workers {
            self.shared.done.wait(&mut done);
        }
        *done = 0;
        drop(done);
        // Clear the job pointer so nothing dangles between runs.
        self.shared.job.lock().0 = None;
        // Re-raise after full cleanup; the flag is also reset at the next
        // job publication, so the pool stays reusable either way.
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("ThreadPool: a worker closure panicked");
        }
    }

    /// Parallel loop over `0..n`: workers pull `grain`-sized index chunks
    /// from a shared counter (dynamic load balancing, like OpenMP's
    /// `schedule(dynamic)` which SLIDE uses for its skewed workloads).
    ///
    /// # Panics
    ///
    /// Panics if `grain == 0`, and re-panics if `f` panics on any worker.
    pub fn parallel_for(&self, n: usize, grain: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(
            grain > 0,
            "ThreadPool::parallel_for: grain must be positive"
        );
        if n == 0 {
            return;
        }
        let cursor = AtomicUsize::new(0);
        self.run(&|_worker| loop {
            let start = cursor.fetch_add(grain, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + grain).min(n);
            for i in start..end {
                f(i);
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake everyone so they observe shutdown.
        {
            let mut job = self.shared.job.lock();
            job.1 = job.1.wrapping_add(1);
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(worker_id: usize, shared: &PoolShared) {
    let mut seen_gen = 0u64;
    loop {
        let job: Option<Job> = {
            let mut guard = shared.job.lock();
            while guard.1 == seen_gen && !shared.shutdown.load(Ordering::SeqCst) {
                shared.start.wait(&mut guard);
            }
            seen_gen = guard.1;
            guard.0
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(job) = job {
            // SAFETY: `run` blocks until all workers signal done, so the
            // closure behind `job` is alive for the duration of this call.
            let f = unsafe { &*job };
            if catch_unwind(AssertUnwindSafe(|| f(worker_id))).is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
            }
            let mut done = shared.done_lock.lock();
            *done += 1;
            if *done >= 1 {
                shared.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_worker_runs_once() {
        let pool = ThreadPool::new(6);
        let mask = AtomicU64::new(0);
        pool.run(&|id| {
            mask.fetch_or(1 << id, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b111111);
    }

    #[test]
    fn reusable_across_many_runs() {
        let pool = ThreadPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn parallel_for_covers_all_indices() {
        let pool = ThreadPool::new(4);
        let n = 10_007;
        let flags: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, 64, &|i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(0, 8, &|_| panic!("should not run"));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|id| {
                if id == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let counter = AtomicUsize::new(0);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn panic_flag_resets_per_generation() {
        // Regression test: a caught worker panic must not leave `panicked`
        // sticky — every later generation starts clean, succeeds cleanly,
        // and a *second* panic still propagates.
        let pool = ThreadPool::new(3);
        for round in 0..3 {
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.run(&|id| {
                    if id == round % 3 {
                        panic!("boom {round}");
                    }
                });
            }));
            assert!(result.is_err(), "round {round} should re-raise");
            // The very next run must NOT spuriously panic.
            let counter = AtomicUsize::new(0);
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 3, "round {round}");
        }
    }

    #[test]
    fn parallel_for_panic_leaves_pool_reusable() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, 8, &|i| {
                if i == 57 {
                    panic!("item boom");
                }
            });
        }));
        assert!(result.is_err());
        let flags: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(64, 4, &|i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.workers(), 1);
        let counter = AtomicUsize::new(0);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
