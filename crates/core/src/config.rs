//! Configuration surface for the SLIDE engine: every optimization axis the
//! paper studies (AVX level, bf16 mode, memory layout, LSH parameters,
//! rebuild schedule) is a field here, so the benchmark harness can flip one
//! switch per ablation.

use slide_hash::BucketPolicy;
use slide_mem::ParamLayout;

/// Numeric precision mode — the three columns of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Precision {
    /// Everything in f32 ("Without BF16").
    #[default]
    Fp32,
    /// Activations rounded through bf16, parameters updated in f32
    /// (paper mode 2: "BF16 only for activations").
    Bf16Activations,
    /// Weights stored in bf16 *and* activations rounded through bf16
    /// (paper mode 1: "BF16 for both activations and weights").
    Bf16Both,
}

/// Which LSH family samples the output layer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HashFamilyKind {
    /// Densified winner-take-all (used for Amazon-670K / WikiLSH-325K),
    /// with the given WTA bin width (power of two).
    Dwta {
        /// Slots per WTA bin.
        bin_size: usize,
    },
    /// SimHash / signed random projection (used for Text8).
    SimHash,
}

/// LSH sampling parameters for the output layer (paper §5.3: `K`, `L`, and
/// per-dataset family choice).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LshConfig {
    /// Hash family.
    pub family: HashFamilyKind,
    /// Bits per table key; each table has `2^K` buckets.
    pub key_bits: u32,
    /// Number of tables `L`.
    pub tables: usize,
    /// Max neuron ids per bucket.
    pub bucket_cap: usize,
    /// Full-bucket insertion policy.
    pub policy: BucketPolicy,
    /// Minimum active-set size; if the query retrieves fewer, random neurons
    /// pad the set (keeps gradients flowing early in training).
    pub min_active: usize,
    /// Optional hard cap on the active-set size.
    pub max_active: Option<usize>,
    /// Buckets probed per table (1 = the paper's plain query; >1 adds
    /// hamming-1 neighbour buckets — multiprobe LSH, an extension knob).
    pub probes: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            family: HashFamilyKind::Dwta { bin_size: 16 },
            key_bits: 6,
            tables: 16,
            bucket_cap: 128,
            policy: BucketPolicy::Reservoir,
            min_active: 64,
            max_active: None,
            probes: 1,
        }
    }
}

/// How hash tables are brought back in sync with drifted weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RebuildMode {
    /// Clear every table and re-insert every neuron (parallel two-phase).
    #[default]
    Full,
    /// The paper's §2 delete/re-add path: at each scheduled tick only
    /// neurons whose weights changed since the last refresh are re-hashed
    /// and moved between buckets. Because bounded buckets evict a victim on
    /// every forced re-insert, pure surgery slowly biases bucket membership
    /// toward recently-moved neurons; a full rebuild is therefore interposed
    /// every [`RebuildSchedule::full_rebuild_every`] ticks to restore the
    /// uniform reservoir sample (this hybrid is what the original SLIDE
    /// implementation does in practice).
    Incremental,
}

/// Hash-table rebuild schedule (§2: tables are refreshed as weights drift;
/// SLIDE grows the interval exponentially because early weights change fast
/// and late weights change slowly).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RebuildSchedule {
    /// Batches before the first rebuild.
    pub initial_period: u32,
    /// Multiplier applied to the period after every rebuild.
    pub growth: f32,
    /// Ceiling for the period.
    pub max_period: u32,
    /// Full rebuild vs incremental delete/re-add.
    pub mode: RebuildMode,
    /// In [`RebuildMode::Incremental`], run a full rebuild every this many
    /// ticks to rebalance bucket membership (ignored in `Full` mode).
    pub full_rebuild_every: u32,
}

impl Default for RebuildSchedule {
    fn default() -> Self {
        RebuildSchedule {
            initial_period: 50,
            growth: 1.05,
            max_period: 1000,
            mode: RebuildMode::Full,
            full_rebuild_every: 8,
        }
    }
}

/// Memory-layout switches — the §4.1 / §5.7 optimization axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryConfig {
    /// Contiguous per-layer parameter arenas vs per-neuron allocations.
    pub coalesced_params: bool,
    /// Contiguous batch buffers vs per-instance allocations.
    pub coalesced_data: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            coalesced_params: true,
            coalesced_data: true,
        }
    }
}

impl MemoryConfig {
    /// The [`ParamLayout`] implied by `coalesced_params`.
    pub fn param_layout(&self) -> ParamLayout {
        if self.coalesced_params {
            ParamLayout::Coalesced
        } else {
            ParamLayout::Fragmented
        }
    }
}

/// Full architecture + engineering configuration of a SLIDE network.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkConfig {
    /// Sparse input dimensionality (feature space).
    pub input_dim: usize,
    /// Hidden widths, in order (paper: `[128]` for the XC datasets, `[200]`
    /// for Text8).
    pub hidden_dims: Vec<usize>,
    /// Output dimensionality (label space).
    pub output_dim: usize,
    /// Output-layer LSH sampling parameters.
    pub lsh: LshConfig,
    /// Numeric precision mode (Table 3).
    pub precision: Precision,
    /// Memory layout switches (§5.7).
    pub memory: MemoryConfig,
    /// Weight-initialization / hashing seed.
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's standard architecture for a workload:
    /// `input -> hidden -> output` with LSH on the output layer.
    pub fn standard(input_dim: usize, hidden: usize, output_dim: usize) -> Self {
        NetworkConfig {
            input_dim,
            hidden_dims: vec![hidden],
            output_dim,
            lsh: LshConfig::default(),
            precision: Precision::Fp32,
            memory: MemoryConfig::default(),
            seed: 0x511D_E001,
        }
    }

    /// Validate invariants shared by the whole engine.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if dimensions are zero, the LSH
    /// parameters are out of range, or an unsupported combination is chosen
    /// (bf16 weights require coalesced parameter arenas).
    pub fn validate(&self) -> Result<(), String> {
        if self.input_dim == 0 || self.output_dim == 0 {
            return Err("input_dim and output_dim must be positive".into());
        }
        if self.hidden_dims.is_empty() || self.hidden_dims.contains(&0) {
            return Err("hidden_dims must be non-empty and positive".into());
        }
        if self.lsh.key_bits == 0 || self.lsh.key_bits > 24 {
            return Err("lsh.key_bits must be in 1..=24".into());
        }
        if self.lsh.tables == 0 {
            return Err("lsh.tables must be positive".into());
        }
        if self.lsh.bucket_cap == 0 {
            return Err("lsh.bucket_cap must be positive".into());
        }
        if self.lsh.probes == 0 {
            return Err("lsh.probes must be positive (1 = plain query)".into());
        }
        if let HashFamilyKind::Dwta { bin_size } = self.lsh.family {
            if !bin_size.is_power_of_two() || bin_size < 2 {
                return Err("dwta bin_size must be a power of two >= 2".into());
            }
        }
        if self.precision == Precision::Bf16Both && !self.memory.coalesced_params {
            return Err("bf16 weight storage requires coalesced parameter arenas \
                 (the naive fragmented layout is an fp32-era configuration)"
                .into());
        }
        Ok(())
    }
}

/// Learning-rate schedule applied on top of the base rate (the paper trains
/// at a constant 1e-4; schedules are an extension for downstream users).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LrSchedule {
    /// Constant base rate (the paper's setting).
    #[default]
    Constant,
    /// Multiply the rate by `factor` every `every_epochs` epochs.
    StepDecay {
        /// Epochs between decays.
        every_epochs: u32,
        /// Multiplier applied at each decay (0 < factor <= 1).
        factor: f32,
    },
    /// Cosine annealing from the base rate down to `base * min_factor`
    /// over `total_epochs`.
    Cosine {
        /// Horizon of the anneal.
        total_epochs: u32,
        /// Floor as a fraction of the base rate.
        min_factor: f32,
    },
}

impl LrSchedule {
    /// The effective learning rate for `epoch` (0-based).
    pub fn lr_at(&self, base: f32, epoch: u64) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay {
                every_epochs,
                factor,
            } => {
                let steps = epoch / every_epochs.max(1) as u64;
                base * factor.powi(steps.min(1_000) as i32)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_factor,
            } => {
                let t = (epoch as f32 / total_epochs.max(1) as f32).min(1.0);
                let floor = base * min_factor;
                floor + 0.5 * (base - floor) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }

    /// Validate schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns a message on out-of-range factors or zero horizons.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            LrSchedule::Constant => Ok(()),
            LrSchedule::StepDecay {
                every_epochs,
                factor,
            } => {
                if every_epochs == 0 {
                    return Err("lr_schedule: every_epochs must be positive".into());
                }
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err("lr_schedule: factor must be in (0, 1]".into());
                }
                Ok(())
            }
            LrSchedule::Cosine {
                total_epochs,
                min_factor,
            } => {
                if total_epochs == 0 {
                    return Err("lr_schedule: total_epochs must be positive".into());
                }
                if !(0.0..=1.0).contains(&min_factor) {
                    return Err("lr_schedule: min_factor must be in [0, 1]".into());
                }
                Ok(())
            }
        }
    }
}

/// Optimizer + loop parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainerConfig {
    /// Mini-batch size (paper: 1024 / 256 / 512 per dataset).
    pub batch_size: usize,
    /// ADAM base learning rate (paper: 1e-4).
    pub learning_rate: f32,
    /// Schedule applied on top of the base rate.
    pub lr_schedule: LrSchedule,
    /// ADAM β₁.
    pub beta1: f32,
    /// ADAM β₂.
    pub beta2: f32,
    /// ADAM ε.
    pub eps: f32,
    /// HOGWILD worker threads (0 = all available cores).
    pub threads: usize,
    /// Hash-table rebuild schedule.
    pub rebuild: RebuildSchedule,
    /// Seed for epoch shuffling and active-set padding.
    pub shuffle_seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch_size: 256,
            learning_rate: 1e-4,
            lr_schedule: LrSchedule::Constant,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            threads: 0,
            rebuild: RebuildSchedule::default(),
            shuffle_seed: 0x7EA1,
        }
    }
}

impl TrainerConfig {
    /// Resolve `threads == 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Validate loop parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if the batch size is zero or the optimizer
    /// constants are outside their valid ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err("learning_rate must be positive".into());
        }
        self.lr_schedule.validate()?;
        if !(0.0..1.0).contains(&self.beta1) || !(0.0..1.0).contains(&self.beta2) {
            return Err("beta1/beta2 must be in [0, 1)".into());
        }
        if self.rebuild.initial_period == 0 {
            return Err("rebuild.initial_period must be positive".into());
        }
        if self.rebuild.growth < 1.0 {
            return Err("rebuild.growth must be >= 1.0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_validates() {
        let cfg = NetworkConfig::standard(1000, 128, 5000);
        assert!(cfg.validate().is_ok());
        assert!(TrainerConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_dims_rejected() {
        let mut cfg = NetworkConfig::standard(1000, 128, 5000);
        cfg.hidden_dims = vec![];
        assert!(cfg.validate().is_err());
        cfg.hidden_dims = vec![0];
        assert!(cfg.validate().is_err());
        let mut cfg = NetworkConfig::standard(0, 128, 10);
        assert!(cfg.validate().is_err());
        cfg.input_dim = 10;
        cfg.lsh.key_bits = 30;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bf16_weights_need_arena_layout() {
        let mut cfg = NetworkConfig::standard(100, 16, 100);
        cfg.precision = Precision::Bf16Both;
        cfg.memory.coalesced_params = false;
        assert!(cfg.validate().is_err());
        cfg.memory.coalesced_params = true;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn trainer_validation_catches_bad_optimizer() {
        let mut t = TrainerConfig {
            batch_size: 0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        t = TrainerConfig {
            beta1: 1.0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        t = TrainerConfig::default();
        t.rebuild.growth = 0.5;
        assert!(t.validate().is_err());
    }

    #[test]
    fn effective_threads_resolves_zero() {
        let mut t = TrainerConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(t.effective_threads(), 3);
        t.threads = 0;
        assert!(t.effective_threads() >= 1);
    }

    #[test]
    fn lr_schedules_compute_expected_rates() {
        let base = 1.0_f32;
        assert_eq!(LrSchedule::Constant.lr_at(base, 100), 1.0);

        let step = LrSchedule::StepDecay {
            every_epochs: 2,
            factor: 0.5,
        };
        assert_eq!(step.lr_at(base, 0), 1.0);
        assert_eq!(step.lr_at(base, 1), 1.0);
        assert_eq!(step.lr_at(base, 2), 0.5);
        assert_eq!(step.lr_at(base, 5), 0.25);

        let cosine = LrSchedule::Cosine {
            total_epochs: 10,
            min_factor: 0.1,
        };
        assert!((cosine.lr_at(base, 0) - 1.0).abs() < 1e-6);
        assert!((cosine.lr_at(base, 10) - 0.1).abs() < 1e-6);
        assert!(
            (cosine.lr_at(base, 20) - 0.1).abs() < 1e-6,
            "clamped past horizon"
        );
        let mid = cosine.lr_at(base, 5);
        assert!((0.5..0.6).contains(&mid), "midpoint {mid}");
    }

    #[test]
    fn lr_schedule_validation() {
        assert!(LrSchedule::Constant.validate().is_ok());
        assert!(LrSchedule::StepDecay {
            every_epochs: 0,
            factor: 0.5
        }
        .validate()
        .is_err());
        assert!(LrSchedule::StepDecay {
            every_epochs: 1,
            factor: 1.5
        }
        .validate()
        .is_err());
        assert!(LrSchedule::Cosine {
            total_epochs: 0,
            min_factor: 0.5
        }
        .validate()
        .is_err());
        assert!(LrSchedule::Cosine {
            total_epochs: 5,
            min_factor: 2.0
        }
        .validate()
        .is_err());
        let tc = TrainerConfig {
            lr_schedule: LrSchedule::StepDecay {
                every_epochs: 0,
                factor: 0.5,
            },
            ..Default::default()
        };
        assert!(tc.validate().is_err());
    }

    #[test]
    fn dwta_bin_size_must_be_power_of_two() {
        let mut cfg = NetworkConfig::standard(10, 4, 10);
        cfg.lsh.family = HashFamilyKind::Dwta { bin_size: 12 };
        assert!(cfg.validate().is_err());
    }
}
