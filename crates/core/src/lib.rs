//! The SLIDE engine — the primary contribution of "Accelerating SLIDE Deep
//! Learning on Modern CPUs: Vectorization, Quantizations, Memory
//! Optimizations, and More" (MLSys 2021), reimplemented in Rust.
//!
//! SLIDE trains networks with enormous softmax output layers by replacing
//! the dense output computation with LSH-sampled *active sets*: each input
//! retrieves a few hundred likely-high-activation neurons from hash tables,
//! computes softmax/cross-entropy over just those, and backpropagates
//! through just those — roughly `p²` of the weights are touched per update.
//! Batches are processed by HOGWILD workers sharing the parameters without
//! locks. This crate layers the paper's CPU optimizations on top:
//!
//! * **Vectorization (§4.2–4.3)** — all dense kernels run on AVX-512 when
//!   available (via [`slide_simd`]), with the Algorithm 1/2 row/column-major
//!   duality keeping every pass on contiguous memory.
//! * **Memory coalescing (§4.1)** — batch data and layer parameters live in
//!   contiguous arenas ([`slide_mem`]); the naive fragmented layouts remain
//!   available behind [`MemoryConfig`] for the §5.7 ablation.
//! * **BF16 quantization (§4.4)** — [`Precision`] selects fp32, bf16
//!   activations, or bf16 weights + activations (Table 3's three modes).
//!
//! # Quickstart
//!
//! ```
//! use slide_core::{EvalMode, Network, NetworkConfig, Trainer, TrainerConfig};
//! use slide_data::{generate_synthetic, SynthConfig};
//!
//! // A small learnable extreme-classification task.
//! let data = generate_synthetic(&SynthConfig {
//!     feature_dim: 128, label_dim: 32, n_train: 256, n_test: 64,
//!     ..Default::default()
//! });
//!
//! let mut cfg = NetworkConfig::standard(128, 16, 32);
//! cfg.lsh.tables = 8;
//! cfg.lsh.key_bits = 4;
//! let network = Network::new(cfg).unwrap();
//!
//! let mut trainer = Trainer::new(network, TrainerConfig {
//!     batch_size: 64,
//!     threads: 2,
//!     learning_rate: 1e-3,
//!     ..Default::default()
//! }).unwrap();
//!
//! let stats = trainer.train_epoch(&data.train, 0);
//! assert!(stats.mean_loss.is_finite());
//! let p1 = trainer.evaluate(&data.test, 1, EvalMode::Exact, None);
//! assert!(p1 >= 0.0);
//! ```

mod activation;
mod checkpoint;
mod config;
mod layer;
mod network;
mod params;
mod pool;
mod scratch;
mod trainer;

pub use activation::{relu, relu_backward_mask, softmax_into};
pub use checkpoint::{load_checkpoint, save_checkpoint, CheckpointError};
pub use config::{
    HashFamilyKind, LrSchedule, LshConfig, MemoryConfig, NetworkConfig, Precision, RebuildMode,
    RebuildSchedule, TrainerConfig,
};
pub use layer::{DenseLayer, SampledOutputLayer, SparseInputLayer};
pub use network::Network;
pub use params::{LayerParams, WeightStorage};
pub use pool::ThreadPool;
pub use scratch::{StampSet, WorkerScratch};
pub use trainer::{
    ConvergenceLog, ConvergencePoint, EpochStats, EvalMode, PhaseBreakdown, Trainer,
};
