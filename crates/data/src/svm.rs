//! Extreme-classification dataset file format (the XMLRepository / libsvm
//! dialect used by Amazon-670K and WikiLSHTC-325K).
//!
//! Header line: `num_samples num_features num_labels`.
//! Sample lines: `l1,l2,...  idx:val idx:val ...` — comma-separated label
//! ids, then whitespace-separated `feature:value` pairs.
//!
//! With these routines the real datasets from Bhatia et al.'s repository
//! drop into the benchmark harness unchanged; the synthetic generators cover
//! the offline case.

use crate::dataset::Dataset;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error parsing an XC-format dataset.
#[derive(Debug)]
pub enum ParseDatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with 1-based line number and explanation.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ParseDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDatasetError::Io(e) => write!(f, "i/o error reading dataset: {e}"),
            ParseDatasetError::Malformed { line, reason } => {
                write!(f, "malformed dataset at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseDatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseDatasetError::Io(e) => Some(e),
            ParseDatasetError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseDatasetError {
    fn from(e: io::Error) -> Self {
        ParseDatasetError::Io(e)
    }
}

fn malformed(line: usize, reason: impl Into<String>) -> ParseDatasetError {
    ParseDatasetError::Malformed {
        line,
        reason: reason.into(),
    }
}

/// Parse an XC-format dataset from a buffered reader.
///
/// A mutable reference works too (`parse_xc(&mut reader)`).
///
/// # Errors
///
/// Returns [`ParseDatasetError`] on I/O failure, a bad header, out-of-range
/// indices, or malformed `idx:val` pairs. Samples with no labels are kept
/// (they occur in the real datasets); empty feature lists are kept too.
///
/// # Examples
///
/// ```
/// let text = "2 10 4\n1,3 0:1.0 5:2.5\n2 7:0.5\n";
/// let ds = slide_data::parse_xc(text.as_bytes()).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.labels(0), &[1, 3]);
/// assert_eq!(ds.features(1).indices, &[7]);
/// ```
pub fn parse_xc<R: BufRead>(reader: R) -> Result<Dataset, ParseDatasetError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed(1, "missing header line"))??;
    let mut parts = header.split_whitespace();
    let mut next_dim = |name: &str| -> Result<usize, ParseDatasetError> {
        parts
            .next()
            .ok_or_else(|| malformed(1, format!("header missing {name}")))?
            .parse::<usize>()
            .map_err(|_| malformed(1, format!("header {name} is not an integer")))
    };
    let n_samples = next_dim("num_samples")?;
    let feature_dim = next_dim("num_features")?;
    let label_dim = next_dim("num_labels")?;
    if feature_dim == 0 || label_dim == 0 {
        return Err(malformed(1, "zero feature or label dimension"));
    }

    let mut ds = Dataset::new(feature_dim, label_dim);
    let mut labels: Vec<u32> = Vec::new();
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        labels.clear();
        indices.clear();
        values.clear();
        let mut fields = trimmed.split_whitespace();
        let first = fields.next().expect("non-empty line has a field");
        // The first field is the label list unless it contains ':' (no-label
        // sample whose first field is already a feature).
        let feature_fields: Box<dyn Iterator<Item = &str>> = if first.contains(':') {
            Box::new(std::iter::once(first).chain(fields))
        } else {
            for tok in first.split(',').filter(|t| !t.is_empty()) {
                let l: u32 = tok
                    .parse()
                    .map_err(|_| malformed(line_no, format!("bad label '{tok}'")))?;
                if l as usize >= label_dim {
                    return Err(malformed(line_no, format!("label {l} >= {label_dim}")));
                }
                labels.push(l);
            }
            Box::new(fields)
        };
        for pair in feature_fields {
            let (idx, val) = pair
                .split_once(':')
                .ok_or_else(|| malformed(line_no, format!("expected idx:val, got '{pair}'")))?;
            let idx: u32 = idx
                .parse()
                .map_err(|_| malformed(line_no, format!("bad feature index '{idx}'")))?;
            if idx as usize >= feature_dim {
                return Err(malformed(
                    line_no,
                    format!("feature index {idx} >= {feature_dim}"),
                ));
            }
            let val: f32 = val
                .parse()
                .map_err(|_| malformed(line_no, format!("bad feature value '{val}'")))?;
            indices.push(idx);
            values.push(val);
        }
        labels.sort_unstable();
        labels.dedup();
        ds.push(&indices, &values, &labels);
    }
    if ds.len() != n_samples {
        return Err(malformed(
            1,
            format!("header promised {n_samples} samples, found {}", ds.len()),
        ));
    }
    Ok(ds)
}

/// Write a dataset in XC format.
///
/// A mutable reference works too (`write_xc(&mut writer, &ds)`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_xc<W: Write>(mut writer: W, ds: &Dataset) -> io::Result<()> {
    writeln!(
        writer,
        "{} {} {}",
        ds.len(),
        ds.feature_dim(),
        ds.label_dim()
    )?;
    for i in 0..ds.len() {
        let labels: Vec<String> = ds.labels(i).iter().map(|l| l.to_string()).collect();
        write!(writer, "{}", labels.join(","))?;
        for (idx, val) in ds.features(i).iter() {
            write!(writer, " {idx}:{val}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let text = "3 100 50\n1,2 5:1.5 10:2.0\n0 3:0.5\n7,7,3 \n";
        let ds = parse_xc(text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.labels(0), &[1, 2]);
        assert_eq!(ds.features(0).indices, &[5, 10]);
        assert_eq!(ds.features(0).values, &[1.5, 2.0]);
        assert_eq!(ds.labels(1), &[0]);
        // Duplicate labels deduped, empty feature list kept.
        assert_eq!(ds.labels(2), &[3, 7]);
        assert_eq!(ds.features(2).nnz(), 0);
    }

    #[test]
    fn roundtrip_write_parse() {
        let mut ds = Dataset::new(64, 16);
        ds.push(&[1, 8], &[0.25, 4.0], &[2, 9]);
        ds.push(&[], &[], &[0]);
        let mut buf = Vec::new();
        write_xc(&mut buf, &ds).unwrap();
        let back = parse_xc(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.labels(0), ds.labels(0));
        assert_eq!(back.features(0).indices, ds.features(0).indices);
        assert_eq!(back.features(0).values, ds.features(0).values);
    }

    #[test]
    fn header_errors() {
        assert!(matches!(
            parse_xc("".as_bytes()),
            Err(ParseDatasetError::Malformed { line: 1, .. })
        ));
        assert!(parse_xc("2 x 5\n".as_bytes()).is_err());
        assert!(parse_xc("1 0 5\n".as_bytes()).is_err());
        // Wrong sample count.
        assert!(parse_xc("2 10 5\n0 1:1.0\n".as_bytes()).is_err());
    }

    #[test]
    fn line_errors_carry_line_numbers() {
        let res = parse_xc("1 10 5\n0 bad_pair\n".as_bytes());
        match res {
            Err(ParseDatasetError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(parse_xc("1 10 5\n0 10:1.0\n".as_bytes()).is_err());
        assert!(parse_xc("1 10 5\n5 1:1.0\n".as_bytes()).is_err());
    }

    #[test]
    fn no_label_lines_starting_with_feature() {
        let ds = parse_xc("1 10 5\n3:0.5 4:0.25\n".as_bytes()).unwrap();
        assert_eq!(ds.labels(0), &[] as &[u32]);
        assert_eq!(ds.features(0).indices, &[3, 4]);
    }

    #[test]
    fn blank_lines_skipped() {
        let ds = parse_xc("1 10 5\n\n0 1:1.0\n\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let err = parse_xc("1 10 5\n0 z:1\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }
}
