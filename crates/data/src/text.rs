//! Synthetic skip-gram language-modeling workload — the Text8 stand-in
//! (see DESIGN.md, substitution table).
//!
//! The paper trains a word2vec skip-gram model on Text8 (§5.1): given a
//! one-hot center word, predict the words inside a +-`window` context
//! (window = 2 in the paper), through a hidden layer of 200 units and a
//! vocabulary-sized softmax. We regenerate that *shape* with a synthetic
//! corpus: Zipf-distributed unigrams (natural-language frequency profile)
//! with planted first-order co-occurrence structure (each word has a small
//! set of "collocates" it attracts), so skip-gram training has real signal
//! to learn and P@1 climbs as in Figure 6.

use crate::dataset::Dataset;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use slide_hash::mix::{mix3, reduce};

/// Configuration for the synthetic skip-gram corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TextConfig {
    /// Vocabulary size (Text8: 253,855).
    pub vocab: usize,
    /// Tokens in the generated corpus.
    pub corpus_len: usize,
    /// Context window on each side (the paper uses 2).
    pub window: usize,
    /// Number of collocates planted per word.
    pub collocates: usize,
    /// Probability that the next token is a collocate of the previous one
    /// (the learnable signal; the rest are Zipf draws).
    pub cohesion: f64,
    /// Zipf exponent of the unigram distribution.
    pub zipf_exponent: f64,
    /// Fraction of skip-gram samples diverted to the test split.
    pub test_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            vocab: 4096,
            corpus_len: 50_000,
            window: 2,
            collocates: 6,
            cohesion: 0.55,
            zipf_exponent: 1.0,
            test_fraction: 0.2,
            seed: 0x7E87,
        }
    }
}

impl TextConfig {
    /// A scaled-down Text8-shaped workload.
    pub fn text8_scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        TextConfig {
            vocab: 4096 * scale,
            corpus_len: 60_000 * scale,
            ..Default::default()
        }
    }
}

/// A generated skip-gram dataset: one-hot center-word features, multi-hot
/// context-word labels (the word2vec architecture of §5.1/§5.3).
#[derive(Debug, Clone)]
pub struct TextDataset {
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// The raw token stream the samples were extracted from.
    pub corpus: Vec<u32>,
    /// The configuration that produced it.
    pub config: TextConfig,
}

/// The `j`-th planted collocate of `word`.
pub fn collocate(config: &TextConfig, word: u32, j: u32) -> u32 {
    reduce(
        mix3(config.seed ^ 0xC011, word as u64, j as u64),
        config.vocab,
    ) as u32
}

/// Generate the synthetic corpus and extract skip-gram training pairs.
///
/// Deterministic: the same config always yields the same dataset.
///
/// # Examples
///
/// ```
/// use slide_data::{generate_text, TextConfig};
///
/// let cfg = TextConfig { vocab: 100, corpus_len: 2000, ..Default::default() };
/// let ds = generate_text(&cfg);
/// assert!(ds.train.len() > 1000);
/// // One-hot input, up to 2*window labels.
/// assert_eq!(ds.train.features(0).nnz(), 1);
/// assert!(ds.train.labels(0).len() <= 4);
/// ```
pub fn generate_text(config: &TextConfig) -> TextDataset {
    assert!(config.vocab > 1, "TextConfig: vocab must exceed 1");
    assert!(config.window > 0, "TextConfig: window must be positive");
    assert!(
        (0.0..1.0).contains(&config.test_fraction),
        "TextConfig: test_fraction in [0,1)"
    );
    let zipf = Zipf::new(config.vocab, config.zipf_exponent);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Corpus: Zipf unigrams with planted bigram cohesion.
    let mut corpus = Vec::with_capacity(config.corpus_len);
    let mut prev = zipf.sample(&mut rng) as u32;
    corpus.push(prev);
    for _ in 1..config.corpus_len {
        let next = if config.collocates > 0 && rng.gen_bool(config.cohesion) {
            collocate(config, prev, rng.gen_range(0..config.collocates as u32))
        } else {
            zipf.sample(&mut rng) as u32
        };
        corpus.push(next);
        prev = next;
    }

    // Skip-gram extraction: center word -> multi-hot context labels.
    let mut train = Dataset::new(config.vocab, config.vocab);
    let mut test = Dataset::new(config.vocab, config.vocab);
    let mut labels = Vec::with_capacity(2 * config.window);
    for (pos, &center) in corpus.iter().enumerate() {
        labels.clear();
        let lo = pos.saturating_sub(config.window);
        let hi = (pos + config.window + 1).min(corpus.len());
        for (ctx_pos, &ctx) in corpus[lo..hi].iter().enumerate() {
            if lo + ctx_pos != pos && !labels.contains(&ctx) {
                labels.push(ctx);
            }
        }
        if labels.is_empty() {
            continue;
        }
        labels.sort_unstable();
        let split = if rng.gen_bool(config.test_fraction) {
            &mut test
        } else {
            &mut train
        };
        split.push(&[center], &[1.0], &labels);
    }
    TextDataset {
        train,
        test,
        corpus,
        config: *config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TextConfig {
        TextConfig {
            vocab: 200,
            corpus_len: 5_000,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_text(&small_config());
        let b = generate_text(&small_config());
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.train.len(), b.train.len());
    }

    #[test]
    fn skip_gram_shape() {
        let ds = generate_text(&small_config());
        for i in 0..ds.train.len().min(500) {
            let x = ds.train.features(i);
            assert_eq!(x.nnz(), 1, "one-hot input");
            assert_eq!(x.values, &[1.0]);
            let labels = ds.train.labels(i);
            assert!(!labels.is_empty() && labels.len() <= 4);
            // Labels are the neighbours of this center occurrence; all in vocab.
            assert!(labels.iter().all(|&l| (l as usize) < 200));
        }
    }

    #[test]
    fn split_fractions_roughly_honoured() {
        let cfg = TextConfig {
            test_fraction: 0.25,
            ..small_config()
        };
        let ds = generate_text(&cfg);
        let total = (ds.train.len() + ds.test.len()) as f64;
        let frac = ds.test.len() as f64 / total;
        assert!((0.18..0.32).contains(&frac), "test fraction {frac}");
    }

    #[test]
    fn corpus_is_zipf_skewed() {
        let ds = generate_text(&small_config());
        let mut counts = vec![0usize; 200];
        for &w in &ds.corpus {
            counts[w as usize] += 1;
        }
        let head: usize = counts[..5].iter().sum();
        let tail: usize = counts[100..105].iter().sum();
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn cohesion_plants_cooccurrence() {
        // With high cohesion, a word's collocates follow it far more often
        // than chance.
        let cfg = TextConfig {
            cohesion: 0.9,
            corpus_len: 20_000,
            ..small_config()
        };
        let ds = generate_text(&cfg);
        let mut followed_by_collocate = 0usize;
        let mut total = 0usize;
        for w in ds.corpus.windows(2) {
            let colls: Vec<u32> = (0..cfg.collocates as u32)
                .map(|j| collocate(&cfg, w[0], j))
                .collect();
            total += 1;
            if colls.contains(&w[1]) {
                followed_by_collocate += 1;
            }
        }
        let rate = followed_by_collocate as f64 / total as f64;
        assert!(rate > 0.5, "collocate follow rate {rate}");
    }
}
