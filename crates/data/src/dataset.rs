//! The in-memory dataset container shared by every workload: coalesced
//! sparse features plus multi-hot label sets, in the §4.1 optimized layout.

use slide_mem::{IndexBatch, SparseBatch, SparseVecRef};

/// A supervised sparse dataset: one sparse feature vector and one label set
/// per sample, stored coalesced.
///
/// # Examples
///
/// ```
/// use slide_data::Dataset;
///
/// let mut ds = Dataset::new(100, 10);
/// ds.push(&[3, 7], &[1.0, 2.0], &[4]);
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.features(0).indices, &[3, 7]);
/// assert_eq!(ds.labels(0), &[4]);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    features: SparseBatch,
    labels: IndexBatch,
    feature_dim: usize,
    label_dim: usize,
}

impl Dataset {
    /// Create an empty dataset over the given feature/label spaces.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(feature_dim: usize, label_dim: usize) -> Self {
        assert!(feature_dim > 0, "Dataset: feature_dim must be positive");
        assert!(label_dim > 0, "Dataset: label_dim must be positive");
        Dataset {
            features: SparseBatch::new(),
            labels: IndexBatch::new(),
            feature_dim,
            label_dim,
        }
    }

    /// Append one sample.
    ///
    /// # Panics
    ///
    /// Panics if indices/values lengths differ, or any feature index is
    /// `>= feature_dim`, or any label is `>= label_dim`.
    pub fn push(&mut self, indices: &[u32], values: &[f32], labels: &[u32]) {
        assert!(
            indices.iter().all(|&i| (i as usize) < self.feature_dim),
            "Dataset: feature index out of range"
        );
        assert!(
            labels.iter().all(|&l| (l as usize) < self.label_dim),
            "Dataset: label out of range"
        );
        self.features.push(indices, values);
        self.labels.push(labels);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature-space dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Label-space dimensionality (number of classes).
    pub fn label_dim(&self) -> usize {
        self.label_dim
    }

    /// Sparse feature view of sample `i`.
    pub fn features(&self, i: usize) -> SparseVecRef<'_> {
        self.features.get(i)
    }

    /// Label set of sample `i`.
    pub fn labels(&self, i: usize) -> &[u32] {
        self.labels.get(i)
    }

    /// The underlying coalesced feature batch.
    pub fn feature_batch(&self) -> &SparseBatch {
        &self.features
    }

    /// The underlying coalesced label batch.
    pub fn label_batch(&self) -> &IndexBatch {
        &self.labels
    }

    /// Mean non-zeros per sample.
    pub fn avg_nnz(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.features.total_nnz() as f64 / self.len() as f64
        }
    }

    /// Fraction of the feature space a sample touches on average
    /// (Table 1's "Feature Sparsity" column).
    pub fn feature_sparsity(&self) -> f64 {
        self.avg_nnz() / self.feature_dim as f64
    }

    /// Mean labels per sample.
    pub fn avg_labels(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.labels.total_len() as f64 / self.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut ds = Dataset::new(50, 5);
        ds.push(&[1, 2], &[0.1, 0.2], &[0, 3]);
        ds.push(&[49], &[1.0], &[4]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.features(1).indices, &[49]);
        assert_eq!(ds.labels(0), &[0, 3]);
        assert_eq!(ds.feature_dim(), 50);
        assert_eq!(ds.label_dim(), 5);
    }

    #[test]
    fn statistics() {
        let mut ds = Dataset::new(100, 10);
        ds.push(&[0, 1, 2, 3], &[1.0; 4], &[1]);
        ds.push(&[4, 5], &[1.0; 2], &[2, 3]);
        assert!((ds.avg_nnz() - 3.0).abs() < 1e-12);
        assert!((ds.feature_sparsity() - 0.03).abs() < 1e-12);
        assert!((ds.avg_labels() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feature index out of range")]
    fn feature_bounds_checked() {
        Dataset::new(10, 10).push(&[10], &[1.0], &[0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_bounds_checked() {
        Dataset::new(10, 10).push(&[0], &[1.0], &[10]);
    }

    #[test]
    fn empty_dataset_stats_are_zero() {
        let ds = Dataset::new(10, 10);
        assert_eq!(ds.avg_nnz(), 0.0);
        assert_eq!(ds.avg_labels(), 0.0);
        assert!(ds.is_empty());
    }
}
