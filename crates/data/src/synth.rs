//! Synthetic extreme-classification workloads — the stand-in for
//! Amazon-670K and WikiLSHTC-325K (see DESIGN.md, substitution table).
//!
//! The generator plants one sparse *prototype* feature pattern per label and
//! emits samples whose features are noisy subsets of their labels'
//! prototypes. This preserves the properties SLIDE's speedup and accuracy
//! depend on:
//!
//! * huge, Zipf-skewed label space (a few head labels, a long tail),
//! * extremely sparse features over a large feature space,
//! * multi-label targets,
//! * a learnable feature→label mapping, so P@1 climbs as in Figure 6.

use crate::dataset::Dataset;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use slide_hash::mix::{mix3, reduce};

/// Configuration for the planted-prototype extreme-classification generator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthConfig {
    /// Feature-space dimensionality (Amazon-670K: 135,909).
    pub feature_dim: usize,
    /// Label-space dimensionality (Amazon-670K: 670,091).
    pub label_dim: usize,
    /// Training samples to generate.
    pub n_train: usize,
    /// Test samples to generate.
    pub n_test: usize,
    /// Non-zero features in each label's planted prototype.
    pub proto_nnz: usize,
    /// Fraction of a prototype's features each sample keeps.
    pub keep_fraction: f64,
    /// Random extra non-zeros per sample (noise).
    pub noise_nnz: usize,
    /// Labels per sample (multi-label targets).
    pub labels_per_sample: usize,
    /// Zipf exponent of the label frequency distribution.
    pub zipf_exponent: f64,
    /// Master seed; the same seed regenerates identical train/test sets.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            feature_dim: 4096,
            label_dim: 8192,
            n_train: 10_000,
            n_test: 2_000,
            proto_nnz: 24,
            keep_fraction: 0.7,
            noise_nnz: 6,
            labels_per_sample: 3,
            zipf_exponent: 0.7,
            seed: 0xA33A_2070,
        }
    }
}

impl SynthConfig {
    /// A scaled-down Amazon-670K-shaped recommendation workload
    /// (multi-hot in, multi-hot out; dense-ish features, huge label space).
    pub fn amazon_670k_scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        SynthConfig {
            feature_dim: 2048 * scale,
            label_dim: 8192 * scale,
            n_train: 6_000 * scale,
            n_test: 1_200 * scale,
            proto_nnz: 28,
            keep_fraction: 0.7,
            noise_nnz: 8,
            labels_per_sample: 3,
            zipf_exponent: 0.7,
            seed: 670,
        }
    }

    /// A scaled-down WikiLSHTC-325K-shaped workload: sparser features over a
    /// wider feature space, more training data relative to the label count.
    pub fn wiki_lsh_325k_scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        SynthConfig {
            feature_dim: 16_384 * scale,
            label_dim: 4096 * scale,
            n_train: 12_000 * scale,
            n_test: 2_400 * scale,
            proto_nnz: 12,
            keep_fraction: 0.8,
            noise_nnz: 2,
            labels_per_sample: 2,
            zipf_exponent: 0.8,
            seed: 325,
        }
    }
}

/// A generated train/test pair drawn from the same planted prototypes.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// Training split.
    pub train: Dataset,
    /// Test split (same label prototypes, fresh noise).
    pub test: Dataset,
    /// The configuration that produced it.
    pub config: SynthConfig,
}

/// Generate a synthetic extreme-classification dataset.
///
/// Deterministic: the same config always yields the same bytes.
///
/// # Examples
///
/// ```
/// use slide_data::{generate_synthetic, SynthConfig};
///
/// let cfg = SynthConfig { n_train: 100, n_test: 20, label_dim: 64, feature_dim: 256, ..Default::default() };
/// let ds = generate_synthetic(&cfg);
/// assert_eq!(ds.train.len(), 100);
/// assert_eq!(ds.test.len(), 20);
/// assert!(ds.train.avg_nnz() > 1.0);
/// ```
pub fn generate_synthetic(config: &SynthConfig) -> SynthDataset {
    assert!(
        config.proto_nnz > 0,
        "SynthConfig: proto_nnz must be positive"
    );
    assert!(
        (0.0..=1.0).contains(&config.keep_fraction),
        "SynthConfig: keep_fraction in [0,1]"
    );
    assert!(
        config.labels_per_sample > 0,
        "SynthConfig: labels_per_sample must be positive"
    );
    let zipf = Zipf::new(config.label_dim, config.zipf_exponent);
    let train = generate_split(config, &zipf, config.n_train, 0x7121);
    let test = generate_split(config, &zipf, config.n_test, 0x7e57);
    SynthDataset {
        train,
        test,
        config: *config,
    }
}

fn generate_split(config: &SynthConfig, zipf: &Zipf, n: usize, salt: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ salt);
    let mut ds = Dataset::new(config.feature_dim, config.label_dim);
    let mut idx_buf: Vec<u32> = Vec::new();
    let mut label_buf: Vec<u32> = Vec::new();
    for _ in 0..n {
        label_buf.clear();
        for _ in 0..config.labels_per_sample {
            let l = zipf.sample(&mut rng) as u32;
            if !label_buf.contains(&l) {
                label_buf.push(l);
            }
        }
        label_buf.sort_unstable();

        idx_buf.clear();
        for &label in &label_buf {
            for j in 0..config.proto_nnz {
                if rng.gen_bool(config.keep_fraction) {
                    idx_buf.push(prototype_feature(config, label, j as u32));
                }
            }
        }
        for _ in 0..config.noise_nnz {
            idx_buf.push(rng.gen_range(0..config.feature_dim as u32));
        }
        idx_buf.sort_unstable();
        idx_buf.dedup();
        let values: Vec<f32> = idx_buf.iter().map(|_| 0.5 + rng.gen::<f32>()).collect();
        ds.push(&idx_buf, &values, &label_buf);
    }
    ds
}

/// The `j`-th prototype feature of `label` (deterministic in the config
/// seed, shared by train and test).
pub fn prototype_feature(config: &SynthConfig, label: u32, j: u32) -> u32 {
    reduce(
        mix3(config.seed ^ 0x9E0F, label as u64, j as u64),
        config.feature_dim,
    ) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthConfig {
        SynthConfig {
            feature_dim: 512,
            label_dim: 128,
            n_train: 400,
            n_test: 100,
            proto_nnz: 16,
            keep_fraction: 0.75,
            noise_nnz: 4,
            labels_per_sample: 2,
            zipf_exponent: 0.6,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = generate_synthetic(&cfg);
        let b = generate_synthetic(&cfg);
        assert_eq!(a.train.len(), b.train.len());
        for i in 0..a.train.len() {
            assert_eq!(a.train.features(i).indices, b.train.features(i).indices);
            assert_eq!(a.train.features(i).values, b.train.features(i).values);
            assert_eq!(a.train.labels(i), b.train.labels(i));
        }
    }

    #[test]
    fn dims_and_counts_match_config() {
        let cfg = small_config();
        let ds = generate_synthetic(&cfg);
        assert_eq!(ds.train.len(), 400);
        assert_eq!(ds.test.len(), 100);
        assert_eq!(ds.train.feature_dim(), 512);
        assert_eq!(ds.train.label_dim(), 128);
        // Every sample has at least one label and some features.
        for i in 0..ds.train.len() {
            assert!(!ds.train.labels(i).is_empty());
            assert!(ds.train.features(i).nnz() > 0);
            assert!(ds.train.features(i).is_sorted());
        }
    }

    #[test]
    fn labels_are_zipf_skewed() {
        let cfg = SynthConfig {
            zipf_exponent: 1.1,
            n_train: 4000,
            ..small_config()
        };
        let ds = generate_synthetic(&cfg);
        let mut counts = vec![0usize; cfg.label_dim];
        for i in 0..ds.train.len() {
            for &l in ds.train.labels(i) {
                counts[l as usize] += 1;
            }
        }
        let head: usize = counts[..8].iter().sum();
        let tail: usize = counts[64..72].iter().sum();
        assert!(head > tail * 3, "head {head} vs tail {tail}");
    }

    #[test]
    fn samples_share_prototype_features_with_same_label() {
        // Two samples with the same label should overlap in features far
        // more than two samples with different labels — that's the planted
        // signal the network learns.
        let cfg = small_config();
        let ds = generate_synthetic(&cfg);
        // BTreeMap: iteration order must be deterministic so the test always
        // examines the same label (HashMap order varies per process).
        let mut by_label: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
        for i in 0..ds.train.len() {
            for &l in ds.train.labels(i) {
                by_label.entry(l).or_default().push(i);
            }
        }
        let overlap = |a: usize, b: usize| {
            let fa: std::collections::HashSet<u32> =
                ds.train.features(a).indices.iter().copied().collect();
            ds.train
                .features(b)
                .indices
                .iter()
                .filter(|i| fa.contains(i))
                .count()
        };
        // The planted signal is statistical (noise can swamp any one pair),
        // so compare aggregate overlap across every label with >= 2 samples.
        let mut same_total = 0usize;
        let mut diff_total = 0usize;
        let mut pairs = 0usize;
        for (label, samples) in by_label.iter().filter(|(_, v)| v.len() >= 2) {
            let other = (0..ds.train.len())
                .find(|&i| !ds.train.labels(i).contains(label))
                .unwrap();
            same_total += overlap(samples[0], samples[1]);
            diff_total += overlap(samples[0], other);
            pairs += 1;
        }
        assert!(pairs >= 10, "expected many repeated labels, got {pairs}");
        assert!(
            same_total > 2 * diff_total,
            "same-label overlap {same_total} should dominate cross-label {diff_total} over {pairs} pairs"
        );
    }

    #[test]
    fn scaled_presets_shapes() {
        let amazon = SynthConfig::amazon_670k_scaled(1);
        assert!(amazon.label_dim > amazon.feature_dim);
        let wiki = SynthConfig::wiki_lsh_325k_scaled(1);
        assert!(wiki.feature_dim > wiki.label_dim);
        // Wiki stand-in is sparser relative to its feature space.
        assert!(wiki.proto_nnz < amazon.proto_nnz);
    }
}
