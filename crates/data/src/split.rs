//! Dataset splitting utilities: seeded train/validation carving and
//! subsampling. The real XC files ship fixed train/test splits; downstream
//! users still need validation folds and fast-iteration subsets.

use crate::dataset::Dataset;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn copy_samples(ds: &Dataset, indices: &[u32]) -> Dataset {
    let mut out = Dataset::new(ds.feature_dim(), ds.label_dim());
    for &i in indices {
        let x = ds.features(i as usize);
        out.push(x.indices, x.values, ds.labels(i as usize));
    }
    out
}

/// Split a dataset into `(train, holdout)` with `holdout_fraction` of the
/// samples (rounded down, at least 1 when the fraction is positive and the
/// dataset non-empty) going to the holdout, shuffled under `seed`.
///
/// # Panics
///
/// Panics if `holdout_fraction` is outside `[0, 1)`.
///
/// # Examples
///
/// ```
/// use slide_data::{generate_synthetic, train_holdout_split, SynthConfig};
/// let data = generate_synthetic(&SynthConfig { n_train: 100, n_test: 10, ..Default::default() });
/// let (train, val) = train_holdout_split(&data.train, 0.2, 7);
/// assert_eq!(train.len() + val.len(), 100);
/// assert_eq!(val.len(), 20);
/// ```
pub fn train_holdout_split(ds: &Dataset, holdout_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&holdout_fraction),
        "train_holdout_split: holdout_fraction in [0, 1)"
    );
    let mut order: Vec<u32> = (0..ds.len() as u32).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));
    let mut n_holdout = (ds.len() as f64 * holdout_fraction) as usize;
    if holdout_fraction > 0.0 && n_holdout == 0 && !ds.is_empty() {
        n_holdout = 1;
    }
    let (holdout_idx, train_idx) = order.split_at(n_holdout);
    (copy_samples(ds, train_idx), copy_samples(ds, holdout_idx))
}

/// Uniformly subsample `n` samples (all of them if `n >= len`), shuffled
/// under `seed` — for quick experiments against large files.
pub fn subsample(ds: &Dataset, n: usize, seed: u64) -> Dataset {
    let mut order: Vec<u32> = (0..ds.len() as u32).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));
    order.truncate(n);
    copy_samples(ds, &order)
}

/// `k`-fold partition: returns `k` (train, validation) pairs covering every
/// sample exactly once as validation.
///
/// # Panics
///
/// Panics if `k < 2` or `k > ds.len()`.
pub fn k_folds(ds: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k_folds: k must be at least 2");
    assert!(k <= ds.len(), "k_folds: k exceeds dataset size");
    let mut order: Vec<u32> = (0..ds.len() as u32).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));
    let fold_size = ds.len().div_ceil(k);
    let mut out = Vec::with_capacity(k);
    for f in 0..k {
        let start = f * fold_size;
        let end = ((f + 1) * fold_size).min(ds.len());
        let val_idx = &order[start..end];
        let train_idx: Vec<u32> = order[..start]
            .iter()
            .chain(&order[end..])
            .copied()
            .collect();
        out.push((copy_samples(ds, &train_idx), copy_samples(ds, val_idx)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::new(100, 10);
        for i in 0..n {
            ds.push(&[i as u32 % 100], &[i as f32], &[(i % 10) as u32]);
        }
        ds
    }

    #[test]
    fn holdout_split_partitions_exactly() {
        let ds = toy(50);
        let (train, val) = train_holdout_split(&ds, 0.3, 3);
        assert_eq!(train.len(), 35);
        assert_eq!(val.len(), 15);
        // Every sample appears exactly once across the two splits (values
        // are unique per sample in `toy`).
        let mut seen: Vec<f32> = Vec::new();
        for ds in [&train, &val] {
            for i in 0..ds.len() {
                seen.push(ds.features(i).values[0]);
            }
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f32> = (0..50).map(|i| i as f32).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn holdout_split_is_seeded() {
        let ds = toy(30);
        let (a, _) = train_holdout_split(&ds, 0.5, 9);
        let (b, _) = train_holdout_split(&ds, 0.5, 9);
        let (c, _) = train_holdout_split(&ds, 0.5, 10);
        let sig = |d: &Dataset| {
            (0..d.len())
                .map(|i| d.features(i).values[0])
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&a), sig(&b));
        assert_ne!(sig(&a), sig(&c));
    }

    #[test]
    fn tiny_positive_fraction_still_holds_out_one() {
        let ds = toy(5);
        let (train, val) = train_holdout_split(&ds, 0.01, 1);
        assert_eq!(val.len(), 1);
        assert_eq!(train.len(), 4);
        let (train, val) = train_holdout_split(&ds, 0.0, 1);
        assert_eq!(val.len(), 0);
        assert_eq!(train.len(), 5);
    }

    #[test]
    fn subsample_bounds() {
        let ds = toy(20);
        assert_eq!(subsample(&ds, 7, 1).len(), 7);
        assert_eq!(subsample(&ds, 100, 1).len(), 20);
        assert_eq!(subsample(&ds, 0, 1).len(), 0);
    }

    #[test]
    fn k_folds_cover_everything_once() {
        let ds = toy(23);
        let folds = k_folds(&ds, 4, 5);
        assert_eq!(folds.len(), 4);
        let mut vals: Vec<f32> = Vec::new();
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            for i in 0..val.len() {
                vals.push(val.features(i).values[0]);
            }
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, (0..23).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn k_folds_rejects_k1() {
        k_folds(&toy(10), 1, 0);
    }
}
