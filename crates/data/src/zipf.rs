//! Zipf (power-law) sampling — the frequency profile of both extreme-
//! classification label spaces and natural-language vocabularies, which is
//! what makes the paper's workloads "extreme": a few head classes dominate
//! while a long tail stays rare.

use rand::Rng;

/// A Zipf distribution over `{0, 1, ..., n-1}` with exponent `s`:
/// `P(k) ∝ 1 / (k+1)^s`. Sampling is O(log n) via binary search on a
/// precomputed CDF.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use slide_data::Zipf;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let draw = zipf.sample(&mut rng);
/// assert!(draw < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` outcomes with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf: n must be positive");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf: exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0_f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        let norm = total;
        for c in cdf.iter_mut() {
            *c /= norm;
        }
        Zipf { cdf }
    }

    /// Number of outcomes.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of outcome `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.n()`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range_and_head_heavy() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50]);
        // Head should dominate heavily at s=1.2.
        assert!(
            counts[0] as f64 / 20_000.0 > 0.15,
            "head mass {}",
            counts[0]
        );
    }

    #[test]
    fn uniform_when_s_zero() {
        let zipf = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((zipf.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let zipf = Zipf::new(57, 0.8);
        let total: f64 = (0..57).map(|k| zipf.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let zipf = Zipf::new(1000, 1.0);
        let a: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_outcome() {
        let zipf = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(zipf.sample(&mut rng), 0);
        assert!((zipf.pmf(0) - 1.0).abs() < 1e-12);
    }
}
